"""One experiment per table and figure of the paper.

Every experiment is a function ``run(scenario) -> ExperimentResult`` with a
rendered text report (the same rows/series the paper prints) and a
structured ``data`` dict for programmatic checks.  The registry maps
experiment ids (``table1`` … ``fig22``) to runners; the CLI and the
benchmark suite both go through it.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    experiment_ids,
    run_experiment,
)

__all__ = ["EXPERIMENTS", "ExperimentResult", "experiment_ids", "run_experiment"]
