"""Experiment registry: id → runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.datasets.scenario import Scenario
from repro.errors import ExperimentError

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "experiment_ids"]


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _load_runners() -> dict[str, Callable[[Scenario], ExperimentResult]]:
    # Imported lazily to avoid a costly import cycle at package import.
    from repro.experiments import (
        table1,
        table2,
        table3,
        fig3,
        fig4,
        fig5,
        fig6,
        fig7,
        fig9,
        fig10,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        fig17,
        fig18,
        fig19,
        fig20,
        fig21,
        fig22,
    )

    modules = (
        table1,
        table2,
        table3,
        fig3,
        fig4,
        fig5,
        fig6,
        fig7,
        fig9,
        fig10,
        fig11,
        fig12,
        fig13,
        fig14,
        fig15,
        fig16,
        fig17,
        fig18,
        fig19,
        fig20,
        fig21,
        fig22,
    )
    return {module.EXPERIMENT_ID: module.run for module in modules}


_RUNNERS: dict[str, Callable[[Scenario], ExperimentResult]] | None = None


def _runners() -> dict[str, Callable[[Scenario], ExperimentResult]]:
    global _RUNNERS
    if _RUNNERS is None:
        _RUNNERS = _load_runners()
    return _RUNNERS


class _Registry:
    """Mapping-like read-only view over the lazily-loaded runners."""

    def __getitem__(self, experiment_id: str):
        try:
            return _runners()[experiment_id]
        except KeyError:
            raise ExperimentError(
                f"unknown experiment {experiment_id!r}; "
                f"available: {sorted(_runners())}"
            ) from None

    def __iter__(self):
        return iter(_runners())

    def __len__(self) -> int:
        return len(_runners())

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in _runners()

    def items(self):
        return _runners().items()

    def keys(self):
        return _runners().keys()


EXPERIMENTS = _Registry()


def experiment_ids() -> list[str]:
    """All registered experiment ids, tables first then figures in order."""

    def sort_key(experiment_id: str) -> tuple[int, int]:
        if experiment_id.startswith("table"):
            return (0, int(experiment_id.removeprefix("table")))
        return (1, int(experiment_id.removeprefix("fig")))

    return sorted(_runners(), key=sort_key)


def run_experiment(experiment_id: str, scenario: Scenario) -> ExperimentResult:
    """Run one experiment against ``scenario``."""
    return EXPERIMENTS[experiment_id](scenario)
