"""Figure 7 — triple accuracy by the number of URLs.

Accuracy rises with the number of distinct URLs a triple is extracted
from, but fluctuates: common errors by the same extractor across many
sources produce well-supported false triples (the paper's dip at
[1K, 1.1K) URLs).  At laptop scale the URL counts are smaller, so the
buckets are geometric rather than width-100.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.scenario import Scenario
from repro.eval.stats import triple_support
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig7"
TITLE = "Figure 7: triple accuracy by #URLs"

BUCKETS = (1, 2, 3, 4, 5, 8, 12, 20, 40, 80)


def run(scenario: Scenario) -> ExperimentResult:
    support = triple_support(scenario.records)
    groups: dict[int, list[bool]] = defaultdict(list)
    for triple, label in scenario.gold.items():
        if triple not in support:
            continue
        urls = support[triple]["urls"]
        bucket = BUCKETS[0]
        for edge in BUCKETS:
            if urls >= edge:
                bucket = edge
        groups[bucket].append(label)

    rows = []
    points = []
    for edge in BUCKETS:
        labels = groups.get(edge, [])
        if not labels:
            continue
        accuracy = sum(labels) / len(labels)
        rows.append((f">={edge}", len(labels), accuracy))
        points.append((edge, len(labels), accuracy))
    single = groups.get(1, [])
    single_accuracy = sum(single) / len(single) if single else None

    text = format_table(("#URLs bucket", "#triples", "accuracy"), rows, title=TITLE)
    if single_accuracy is not None:
        text += (
            f"\n\naccuracy of single-URL triples: {single_accuracy:.2f} (paper: ~0.3)"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"points": points, "single_url_accuracy": single_accuracy},
    )
