"""Figure 17 — categorised reasons for POPACCU+ errors.

The paper manually categorised 20 false positives (8 common extraction
errors, 10 closed-world artifacts, 1 wrong Freebase value, 1 hard to
judge) and 20 false negatives (13 multiple truths, 7 specific/general
values).  The synthetic scenario knows the cause of every error, so the
categorisation here is exhaustive rather than sampled.
"""

from __future__ import annotations

from repro.datasets.scenario import Scenario
from repro.eval.analysis import analyze_errors
from repro.experiments.common import standard_fusion_results
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig17"
TITLE = "Figure 17: error categorisation for POPACCU+"


def run(scenario: Scenario) -> ExperimentResult:
    result = standard_fusion_results(scenario)["POPACCU+"]
    breakdown = analyze_errors(scenario, result.probabilities)

    fp_rows = [
        (category, count, f"{share:.0%}")
        for (category, count), share in zip(
            sorted(breakdown.fp_categories.items(), key=lambda kv: -kv[1]),
            [
                v
                for _k, v in sorted(
                    breakdown.fp_shares().items(),
                    key=lambda kv: -breakdown.fp_categories[kv[0]],
                )
            ],
        )
    ]
    fn_rows = [
        (category, count, f"{share:.0%}")
        for (category, count), share in zip(
            sorted(breakdown.fn_categories.items(), key=lambda kv: -kv[1]),
            [
                v
                for _k, v in sorted(
                    breakdown.fn_shares().items(),
                    key=lambda kv: -breakdown.fn_categories[kv[0]],
                )
            ],
        )
    ]
    kind_rows = [
        (kind, count)
        for kind, count in sorted(
            breakdown.fp_extraction_kinds.items(), key=lambda kv: -kv[1]
        )
    ]
    text = "\n\n".join(
        [
            format_table(
                ("false-positive cause", "count", "share"), fp_rows, title=TITLE
            ),
            format_table(("extraction-error kind", "count"), kind_rows),
            format_table(("false-negative cause", "count", "share"), fn_rows),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "n_false_positives": breakdown.n_false_positives,
            "n_false_negatives": breakdown.n_false_negatives,
            "fp_categories": dict(breakdown.fp_categories),
            "fp_extraction_kinds": dict(breakdown.fp_extraction_kinds),
            "fn_categories": dict(breakdown.fn_categories),
        },
    )
