"""Figure 13 — the cumulative refinements of §4.3.4.

POPACCU, then adding one change at a time: I. filter by coverage;
II. (Extractor, Site, Predicate, Pattern) granularity; III. filter by
accuracy (θ=0.5); IV. gold-standard initialisation.  The last row is
POPACCU+; the one before it is POPACCU+(unsup).
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenario import Scenario
from repro.eval.calibration import calibration_curve
from repro.experiments.common import metrics_for
from repro.experiments.registry import ExperimentResult
from repro.fusion import FusionConfig, Granularity, PopAccu
from repro.report import format_table

EXPERIMENT_ID = "fig13"
TITLE = "Figure 13: cumulative refinements (POPACCU -> POPACCU+)"


def run(scenario: Scenario) -> ExperimentResult:
    fusion_input = scenario.fusion_input()
    base = FusionConfig()
    step2 = replace(base, filter_by_coverage=True)
    step3 = replace(
        step2, granularity=Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN
    )
    step4 = replace(step3, min_accuracy=0.5)
    steps = [
        ("POPACCU", base, None),
        ("+FilterByCov", step2, None),
        ("+AccuGranularity", step3, None),
        ("+FilterByAccu", step4, None),
        ("+GoldStandard", step4, scenario.gold),
    ]
    rows = []
    data = {}
    for label, config, gold in steps:
        result = PopAccu(config, gold_labels=gold).fuse(fusion_input)
        metrics = metrics_for(result.probabilities, scenario.gold, result.coverage())
        rows.append(
            (label, metrics.dev, metrics.wdev, metrics.auc_pr, result.coverage())
        )
        data[label] = {
            "dev": metrics.dev,
            "wdev": metrics.wdev,
            "auc_pr": metrics.auc_pr,
            "predicted_share": result.coverage(),
            "calibration_points": calibration_curve(
                result.probabilities, scenario.gold
            ).points(),
        }
    text = format_table(
        ("model", "Dev.", "WDev.", "AUC-PR", "predicted"),
        rows,
        title=TITLE,
        float_digits=4,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
