"""Table 2 — per-extractor volume and quality.

For each of the 12 extractors: #records, #unique triples, #pages
extracted from, #patterns (pattern-based extractors only), accuracy of its
labelled unique triples, and accuracy restricted to extractions with
confidence ≥ 0.7 — the paper's signature spread from 0.09 (DOM2) to 0.78
(TXT4).
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.scenario import Scenario
from repro.experiments.common import unique_triple_accuracy
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "table2"
TITLE = "Table 2: extractor volume and extraction quality"

CONFIDENCE_THRESHOLD = 0.7


def run(scenario: Scenario) -> ExperimentResult:
    by_extractor: dict[str, list] = defaultdict(list)
    for record in scenario.records:
        by_extractor[record.extractor].append(record)

    rows = []
    data = {}
    order = [p.name for p in scenario.config.extractors]
    for name in order:
        records = by_extractor.get(name, [])
        triples = {r.triple for r in records}
        pages = {r.url for r in records}
        extractor = scenario.pipeline.by_name(name)
        n_patterns = getattr(extractor, "n_patterns", None)
        _n, accuracy = unique_triple_accuracy(triples, scenario.gold)
        confident = {
            r.triple
            for r in records
            if r.confidence is not None and r.confidence >= CONFIDENCE_THRESHOLD
        }
        _n_conf, conf_accuracy = unique_triple_accuracy(confident, scenario.gold)
        has_conf = any(r.confidence is not None for r in records)
        rows.append(
            (
                name,
                len(records),
                len(triples),
                len(pages),
                n_patterns if n_patterns is not None else "no pat.",
                f"{accuracy:.2f}" if accuracy is not None else "-",
                (
                    f"{conf_accuracy:.2f}"
                    if conf_accuracy is not None
                    else ("no conf." if not has_conf else "-")
                ),
            )
        )
        data[name] = {
            "records": len(records),
            "unique_triples": len(triples),
            "pages": len(pages),
            "patterns": n_patterns,
            "accuracy": accuracy,
            "accuracy_confident": conf_accuracy,
        }
    text = format_table(
        (
            "extractor",
            "#records",
            "#triples",
            "#pages",
            "#patterns",
            "accu",
            f"accu(conf>={CONFIDENCE_THRESHOLD})",
        ),
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
