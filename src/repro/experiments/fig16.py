"""Figure 16 — distribution of predicted probabilities under POPACCU+.

The paper: "most of the triples have very high or very low probabilities:
70% triples are predicted with a probability of lower than 0.1, while 10%
triples are predicted with a probability of over 0.9."
"""

from __future__ import annotations

from repro.datasets.scenario import Scenario
from repro.eval.stats import probability_histogram
from repro.experiments.common import standard_fusion_results
from repro.experiments.registry import ExperimentResult
from repro.report import format_series

EXPERIMENT_ID = "fig16"
TITLE = "Figure 16: distribution of predicted probabilities (POPACCU+)"


def run(scenario: Scenario) -> ExperimentResult:
    result = standard_fusion_results(scenario)["POPACCU+"]
    histogram = probability_histogram(result.probabilities, n_buckets=10)
    low = sum(
        share for bucket, share in histogram if bucket < 0.1
    )
    high = sum(share for bucket, share in histogram if bucket >= 0.9)
    text = (
        format_series(TITLE, histogram, "probability bucket", "share of triples")
        + f"\n\nshare with p < 0.1: {low:.0%} (paper: 70%)"
        + f"\nshare with p >= 0.9: {high:.0%} (paper: 10%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"histogram": histogram, "share_low": low, "share_high": high},
    )
