"""Figure 11 — provenance selection (filtering).

POPACCU with no filtering, with the coverage filter (ByCov), and with
coverage + accuracy filtering at θ ∈ {0.1, 0.3, 0.5, 0.7, 0.9}
(ByCovAccu).  The paper: ByCov smooths the calibration curve but leaves
8.2% of triples unpredicted; θ=0.1 already improves weighted deviation,
and beyond θ=0.5 even AUC-PR drops.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenario import Scenario
from repro.experiments.common import metrics_for
from repro.experiments.registry import ExperimentResult
from repro.fusion import FusionConfig, popaccu
from repro.report import format_table

EXPERIMENT_ID = "fig11"
TITLE = "Figure 11: provenance selection by coverage and accuracy"

THETAS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run(scenario: Scenario) -> ExperimentResult:
    fusion_input = scenario.fusion_input()
    configs = [("NOFILTERING", FusionConfig())]
    configs.append(("BYCOV", replace(FusionConfig(), filter_by_coverage=True)))
    for theta in THETAS:
        configs.append(
            (
                f"BYCOVACCU (theta={theta})",
                replace(
                    FusionConfig(), filter_by_coverage=True, min_accuracy=theta
                ),
            )
        )
    rows = []
    data = {}
    for label, config in configs:
        result = popaccu(config).fuse(fusion_input)
        metrics = metrics_for(result.probabilities, scenario.gold, result.coverage())
        rows.append(
            (label, metrics.dev, metrics.wdev, metrics.auc_pr, result.coverage())
        )
        data[label] = {
            "dev": metrics.dev,
            "wdev": metrics.wdev,
            "auc_pr": metrics.auc_pr,
            "predicted_share": result.coverage(),
        }
    text = format_table(
        ("selection", "Dev.", "WDev.", "AUC-PR", "predicted"),
        rows,
        title=TITLE,
        float_digits=4,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
