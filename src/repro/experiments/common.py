"""Shared helpers for experiment runners.

The expensive artifacts — the five standard fusion runs — are cached *on
the scenario object*, because many experiments consume the same runs
(Figures 9, 13, 15, 16, 17 all look at POPACCU+ output).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.scenario import Scenario
from repro.eval.calibration import calibration_curve, deviation, weighted_deviation
from repro.eval.pr import auc_pr, pr_curve
from repro.fusion import (
    FusionResult,
    accu,
    popaccu,
    popaccu_plus,
    popaccu_plus_unsup,
    vote,
)
from repro.kb.triples import Triple

__all__ = ["standard_fusion_results", "Metrics", "metrics_for", "unique_triple_accuracy"]

_CACHE_ATTR = "_experiment_fusion_cache"

STANDARD_METHODS = ("VOTE", "ACCU", "POPACCU", "POPACCU+(unsup)", "POPACCU+")


def standard_fusion_results(scenario: Scenario) -> dict[str, FusionResult]:
    """The five standard fusion runs, computed once per scenario."""
    cache = getattr(scenario, _CACHE_ATTR, None)
    if cache is not None:
        return cache
    fusion_input = scenario.fusion_input()
    results = {}
    for fuser in (
        vote(),
        accu(),
        popaccu(),
        popaccu_plus_unsup(),
        popaccu_plus(scenario.gold),
    ):
        results[fuser.name] = fuser.fuse(fusion_input)
    setattr(scenario, _CACHE_ATTR, results)
    return results


@dataclass(frozen=True)
class Metrics:
    """The paper's three headline measures for one method."""

    dev: float
    wdev: float
    auc_pr: float
    coverage: float

    def row(self) -> tuple[float, float, float]:
        return (self.dev, self.wdev, self.auc_pr)


def metrics_for(
    probabilities: dict[Triple, float],
    gold: dict[Triple, bool],
    coverage: float = 1.0,
) -> Metrics:
    curve = calibration_curve(probabilities, gold)
    pr = pr_curve(probabilities, gold)
    return Metrics(
        dev=deviation(curve),
        wdev=weighted_deviation(curve),
        auc_pr=auc_pr(pr),
        coverage=coverage,
    )


def unique_triple_accuracy(
    triples, gold: dict[Triple, bool]
) -> tuple[int, float | None]:
    """(#labelled, accuracy) over a set of unique triples."""
    labelled = [gold[t] for t in triples if t in gold]
    if not labelled:
        return 0, None
    return len(labelled), sum(labelled) / len(labelled)
