"""Table 1 — overview of extracted knowledge.

Headline counts (#triples, #subjects, #predicates, #objects, #data items,
#types) plus the skew rows (mean / median / min / max of triples per type,
per entity, per predicate, per data item, and predicates per entity).
The paper's point is the *skew* — median far below mean everywhere — which
the synthetic corpus must reproduce for the sampling tricks (L) to matter.
"""

from __future__ import annotations

from collections import Counter

from repro.datasets.scenario import Scenario
from repro.eval.stats import skew_summary
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "table1"
TITLE = "Table 1: overview of extracted knowledge"


def run(scenario: Scenario) -> ExperimentResult:
    unique = scenario.unique_triples()
    subjects = {t.subject for t in unique}
    predicates = {t.predicate for t in unique}
    objects = {t.obj for t in unique}
    items = {t.data_item for t in unique}
    type_of = {
        e.entity_id: e.primary_type for e in scenario.world.entities
    }
    types = {type_of[s] for s in subjects if s in type_of}

    per_type = Counter(type_of.get(t.subject, "unknown") for t in unique)
    per_entity = Counter(t.subject for t in unique)
    per_predicate = Counter(t.predicate for t in unique)
    per_item = Counter(t.data_item for t in unique)
    preds_per_entity = {
        s: len({t.predicate for t in unique if t.subject == s}) for s in subjects
    }

    counts_rows = [
        ("#Extracted records", len(scenario.records)),
        ("#Triples (unique)", len(unique)),
        ("#Subjects (entities)", len(subjects)),
        ("#Predicates", len(predicates)),
        ("#Objects", len(objects)),
        ("#Data-items", len(items)),
        ("#Types", len(types)),
    ]
    skews = {
        "#Triples/type": skew_summary(list(per_type.values())),
        "#Triples/entity": skew_summary(list(per_entity.values())),
        "#Triples/predicate": skew_summary(list(per_predicate.values())),
        "#Triples/data-item": skew_summary(list(per_item.values())),
        "#Predicates/entity": skew_summary(list(preds_per_entity.values())),
    }
    skew_rows = [
        (name, s["mean"], s["median"], s["min"], s["max"])
        for name, s in skews.items()
    ]
    text = "\n\n".join(
        [
            format_table(("quantity", "value"), counts_rows, title=TITLE),
            format_table(
                ("distribution", "mean", "median", "min", "max"),
                skew_rows,
                float_digits=1,
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "counts": dict(counts_rows),
            "skews": skews,
        },
    )
