"""Figure 10 — provenance granularity sweep.

POPACCU at the four provenance granularities of §4.3.1: (Extractor, URL),
(Extractor, Site), (Extractor, Site, Predicate), (Extractor, Site,
Predicate, Pattern).  The paper finds the finest granularity best
(weighted deviation down 13%, AUC-PR up 5% vs the default).
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenario import Scenario
from repro.eval.calibration import calibration_curve
from repro.experiments.common import metrics_for
from repro.experiments.registry import ExperimentResult
from repro.fusion import FusionConfig, Granularity, popaccu
from repro.report import format_table

EXPERIMENT_ID = "fig10"
TITLE = "Figure 10: provenance granularity"

LEVELS = (
    ("(Extractor, URL)", Granularity.EXTRACTOR_URL),
    ("(Extractor, Site)", Granularity.EXTRACTOR_SITE),
    ("(Ext, Site, Pred)", Granularity.EXTRACTOR_SITE_PREDICATE),
    ("(Ext, Site, Pred, Pattern)", Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN),
)


def run(scenario: Scenario) -> ExperimentResult:
    fusion_input = scenario.fusion_input()
    rows = []
    data = {}
    for label, granularity in LEVELS:
        result = popaccu(replace(FusionConfig(), granularity=granularity)).fuse(
            fusion_input
        )
        metrics = metrics_for(result.probabilities, scenario.gold, result.coverage())
        curve = calibration_curve(result.probabilities, scenario.gold)
        rows.append((label, metrics.dev, metrics.wdev, metrics.auc_pr))
        data[label] = {
            "dev": metrics.dev,
            "wdev": metrics.wdev,
            "auc_pr": metrics.auc_pr,
            "n_provenances": result.diagnostics["n_provenances"],
            "calibration_points": curve.points(),
        }
    text = format_table(
        ("granularity", "Dev.", "WDev.", "AUC-PR"), rows, title=TITLE, float_digits=4
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
