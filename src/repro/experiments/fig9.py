"""Figure 9 — calibration of the three basic fusion methods.

Deviation / weighted deviation / AUC-PR for VOTE, ACCU and POPACCU at
(Extractor, URL) granularity, plus the two degenerate POPACCU flattenings
the paper diagnoses: provenance = extractor pattern only ("Only ext") and
provenance = URL only ("Only src").  Calibration-curve points are included
in the data for plotting.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenario import Scenario
from repro.eval.calibration import calibration_curve
from repro.experiments.common import metrics_for, standard_fusion_results
from repro.experiments.registry import ExperimentResult
from repro.fusion import FusionConfig, Granularity, popaccu
from repro.report import format_table

EXPERIMENT_ID = "fig9"
TITLE = "Figure 9: calibration of the basic fusion methods"


def run(scenario: Scenario) -> ExperimentResult:
    fusion_input = scenario.fusion_input()
    standard = standard_fusion_results(scenario)
    runs = {
        "VOTE": standard["VOTE"],
        "ACCU": standard["ACCU"],
        "POPACCU": standard["POPACCU"],
        "POPACCU (only ext)": popaccu(
            replace(FusionConfig(), granularity=Granularity.EXTRACTOR_PATTERN_ONLY)
        ).fuse(fusion_input),
        "POPACCU (only src)": popaccu(
            replace(FusionConfig(), granularity=Granularity.URL_ONLY)
        ).fuse(fusion_input),
    }
    rows = []
    data = {}
    for name, result in runs.items():
        metrics = metrics_for(result.probabilities, scenario.gold, result.coverage())
        curve = calibration_curve(result.probabilities, scenario.gold)
        rows.append((name, metrics.dev, metrics.wdev, metrics.auc_pr))
        data[name] = {
            "dev": metrics.dev,
            "wdev": metrics.wdev,
            "auc_pr": metrics.auc_pr,
            "calibration_points": curve.points(),
        }
    text = format_table(
        ("method", "Dev.", "WDev.", "AUC-PR"), rows, title=TITLE, float_digits=4
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
