"""Figure 22 — triple coverage when filtering by confidence.

"even using a threshold as low as 0.1, we already lose 15% of the
extracted triples" — the reason simple confidence filtering is not a
substitute for fusion.
"""

from __future__ import annotations

from repro.datasets.scenario import Scenario
from repro.eval.stats import coverage_by_confidence_threshold
from repro.experiments.registry import ExperimentResult
from repro.report import format_series

EXPERIMENT_ID = "fig22"
TITLE = "Figure 22: coverage by confidence threshold"


def run(scenario: Scenario) -> ExperimentResult:
    points = coverage_by_confidence_threshold(scenario.records)
    text = format_series(TITLE, points, "confidence threshold", "coverage")
    at_01 = dict(points).get(0.1)
    if at_01 is not None:
        text += f"\n\ncoverage at threshold 0.1: {at_01:.0%} (paper: ~85%)"
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"points": points},
    )
