"""Figure 5 — accuracy gap between best and worst extractor per page.

"We consider an extractor for a Web source only if it extracts at least 5
triples from that source … for a Web page the difference between the
accuracy of the best extractor and that of the worst one is 0.32 on
average, and above 0.5 for 21% of the Web pages."
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.datasets.scenario import Scenario
from repro.experiments.registry import ExperimentResult
from repro.report import format_series

EXPERIMENT_ID = "fig5"
TITLE = "Figure 5: best-vs-worst extractor accuracy gap per page"

MIN_TRIPLES = 5
BUCKETS = ((0.0, "0"), (0.0001, "0-.1"), (0.1, ".1-.2"), (0.2, ".2-.3"),
           (0.3, ".3-.4"), (0.4, ".4-.5"), (0.5, ">.5"))


def run(scenario: Scenario) -> ExperimentResult:
    per_page: dict[str, dict[str, list[bool]]] = defaultdict(lambda: defaultdict(list))
    for record in scenario.records:
        label = scenario.gold.get(record.triple)
        if label is not None:
            per_page[record.url][record.extractor].append(label)

    gaps: list[float] = []
    for url, by_extractor in per_page.items():
        accuracies = [
            sum(labels) / len(labels)
            for labels in by_extractor.values()
            if len(labels) >= MIN_TRIPLES
        ]
        if len(accuracies) >= 2:
            gaps.append(max(accuracies) - min(accuracies))

    shares = {label: 0 for _edge, label in BUCKETS}
    for gap in gaps:
        chosen = BUCKETS[0][1]
        for edge, label in BUCKETS:
            if gap >= edge:
                chosen = label
        if gap == 0.0:
            chosen = "0"
        shares[chosen] += 1
    total = max(1, len(gaps))
    points = [(label, count / total) for label, count in shares.items()]
    mean_gap = float(np.mean(gaps)) if gaps else 0.0
    above_half = sum(1 for g in gaps if g > 0.5) / total

    text = (
        format_series(TITLE, points, "accuracy difference", "share of pages")
        + f"\n\npages compared: {len(gaps)}"
        + f"\nmean gap: {mean_gap:.2f} (paper: 0.32)"
        + f"\ngap > 0.5: {above_half:.0%} (paper: 21%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "gaps": gaps,
            "histogram": points,
            "mean_gap": mean_gap,
            "share_above_half": above_half,
        },
    )
