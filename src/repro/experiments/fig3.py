"""Figure 3 — contributions and overlaps of the four content types.

Unique triples per content type (DOM dominates, then TXT, then ANO, then
TBL) and every pairwise overlap; the paper's observation is that the
overlaps are *small* relative to the contributions.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.datasets.scenario import Scenario
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig3"
TITLE = "Figure 3: triple contribution and overlap by content type"

CONTENT_TYPES = ("TXT", "DOM", "TBL", "ANO")


def run(scenario: Scenario) -> ExperimentResult:
    triples_by_type: dict[str, set] = defaultdict(set)
    for record in scenario.records:
        triples_by_type[record.content_type].add(record.triple)

    contribution_rows = []
    contributions = {}
    total = len({t for s in triples_by_type.values() for t in s})
    for content_type in CONTENT_TYPES:
        count = len(triples_by_type.get(content_type, set()))
        contributions[content_type] = count
        contribution_rows.append(
            (content_type, count, f"{count / total:.1%}" if total else "-")
        )

    overlap_rows = []
    overlaps = {}
    for a, b in combinations(CONTENT_TYPES, 2):
        overlap = len(triples_by_type.get(a, set()) & triples_by_type.get(b, set()))
        overlaps[f"{a}&{b}"] = overlap
        overlap_rows.append((f"{a} & {b}", overlap))

    text = "\n\n".join(
        [
            format_table(
                ("content type", "#unique triples", "share"),
                contribution_rows,
                title=TITLE,
            ),
            format_table(("pair", "#overlapping triples"), overlap_rows),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"contributions": contributions, "overlaps": overlaps, "total": total},
    )
