"""Figure 4 — the distribution of per-predicate accuracy.

"44% of the predicates have very low accuracy (below 0.3), while 13% of
the predicates have fairly high accuracy (above 0.7)."  We histogram the
accuracy of each predicate's labelled unique triples into deciles.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.scenario import Scenario
from repro.experiments.common import unique_triple_accuracy
from repro.experiments.registry import ExperimentResult
from repro.report import format_series

EXPERIMENT_ID = "fig4"
TITLE = "Figure 4: distribution of predicate accuracy"

MIN_LABELLED = 5


def run(scenario: Scenario) -> ExperimentResult:
    by_predicate: dict[str, set] = defaultdict(set)
    for triple in scenario.unique_triples():
        by_predicate[triple.predicate].add(triple)

    accuracies: dict[str, float] = {}
    for predicate, triples in by_predicate.items():
        n, accuracy = unique_triple_accuracy(triples, scenario.gold)
        if accuracy is not None and n >= MIN_LABELLED:
            accuracies[predicate] = accuracy

    buckets = [0] * 11
    for accuracy in accuracies.values():
        buckets[min(int(accuracy * 10), 10)] += 1
    total = max(1, len(accuracies))
    points = [(f"{i / 10:.1f}", buckets[i] / total) for i in range(11)]
    low = sum(1 for a in accuracies.values() if a < 0.3) / total
    high = sum(1 for a in accuracies.values() if a > 0.7) / total

    text = (
        format_series(TITLE, points, "accuracy bucket", "share of predicates")
        + f"\n\npredicates with accuracy < 0.3: {low:.0%} (paper: 44%)"
        + f"\npredicates with accuracy > 0.7: {high:.0%} (paper: 13%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "per_predicate": accuracies,
            "histogram": points,
            "share_low": low,
            "share_high": high,
        },
    )
