"""Figure 14 — convergence and the speed-up knobs.

Left: weighted deviation round by round, for default accuracy
initialisation vs gold-standard initialisation — the paper observes a big
move after round 1 with default init, near-flatness with gold init.
Right: the (L, R) table — sampling L=1K instead of 1M and terminating at
R=5 instead of 25 barely changes the measures.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenario import Scenario
from repro.eval.calibration import calibration_curve, weighted_deviation
from repro.experiments.common import metrics_for
from repro.experiments.registry import ExperimentResult
from repro.fusion import FusionConfig
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.fusion.runner import run_bayesian_fusion
from repro.report import format_table

EXPERIMENT_ID = "fig14"
TITLE = "Figure 14: weighted deviation by round; sampling and round caps"


def _tracked_run(scenario, config, gold):
    return run_bayesian_fusion(
        fusion_input=scenario.fusion_input(),
        config=config,
        item_posterior_fn=lambda claims, acc: popaccu_item_posteriors(claims, acc),
        method_name="POPACCU",
        gold_labels=gold,
        track_rounds=True,
    )


def run(scenario: Scenario) -> ExperimentResult:
    base = replace(FusionConfig(), convergence_tol=0.0)  # force all R rounds
    runs = {
        "DefaultAccu": _tracked_run(scenario, base, None),
        "InitAccuByGold": _tracked_run(scenario, base, scenario.gold),
    }
    round_rows = []
    per_round = {}
    for name, result in runs.items():
        wdevs = []
        for round_probs in result.diagnostics["round_probabilities"]:
            curve = calibration_curve(round_probs, scenario.gold)
            wdevs.append(weighted_deviation(curve))
        per_round[name] = wdevs
    for round_index in range(max(len(v) for v in per_round.values())):
        row = [round_index + 1]
        for name in runs:
            values = per_round[name]
            row.append(values[round_index] if round_index < len(values) else "-")
        round_rows.append(tuple(row))

    # The (L, R) table.
    lr_settings = [
        ("L=1M, R=5", replace(FusionConfig(), sample_limit=1_000_000, max_rounds=5)),
        ("L=1K, R=5", replace(FusionConfig(), sample_limit=1_000, max_rounds=5)),
        ("L=1M, R=25", replace(FusionConfig(), sample_limit=1_000_000, max_rounds=25)),
    ]
    lr_rows = []
    lr_data = {}
    for label, config in lr_settings:
        result = run_bayesian_fusion(
            fusion_input=scenario.fusion_input(),
            config=config,
            item_posterior_fn=lambda claims, acc: popaccu_item_posteriors(claims, acc),
            method_name="POPACCU",
        )
        metrics = metrics_for(result.probabilities, scenario.gold)
        lr_rows.append((label, metrics.dev, metrics.wdev, metrics.auc_pr))
        lr_data[label] = {
            "dev": metrics.dev,
            "wdev": metrics.wdev,
            "auc_pr": metrics.auc_pr,
            "rounds_run": result.rounds,
        }

    text = "\n\n".join(
        [
            format_table(
                ("round", *runs.keys()), round_rows, title=TITLE, float_digits=4
            ),
            format_table(
                ("setting", "Dev.", "WDev.", "AUC-PR"), lr_rows, float_digits=4
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"per_round_wdev": per_round, "lr_table": lr_data},
    )
