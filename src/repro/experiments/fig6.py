"""Figure 6 — triple accuracy by the number of extractors.

Accuracy rises with the number of distinct extractors supporting a triple,
with occasional dips caused by correlated extractors making the same
mistake (the paper sees a drop from 8 to 9 extractors).
"""

from __future__ import annotations

from repro.datasets.scenario import Scenario
from repro.eval.stats import accuracy_by_int, triple_support
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig6"
TITLE = "Figure 6: triple accuracy by #extractors"


def run(scenario: Scenario) -> ExperimentResult:
    support = triple_support(scenario.records)
    pairs = [
        (support[triple]["extractors"], label)
        for triple, label in scenario.gold.items()
        if triple in support
    ]
    points = accuracy_by_int(pairs, max_exact=9)
    rows = [(int(p.x), p.n, p.accuracy) for p in points]
    text = format_table(("#extractors", "#triples", "accuracy"), rows, title=TITLE)
    single = next((p.accuracy for p in points if p.x == 1), None)
    if single is not None:
        text += f"\n\naccuracy of single-extractor triples: {single:.2f} (paper: ~0.3)"
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"points": [(p.x, p.n, p.accuracy) for p in points]},
    )
