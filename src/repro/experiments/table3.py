"""Table 3 — functional vs. non-functional predicates.

The paper: 72% of predicates (76% of data items, 68% of triples) are
non-functional, with accuracy 0.25 vs 0.18 for functional ones — the
evidence that the single-truth assumption is formally wrong for most of
the data, yet (per Figure 20) rarely harmful.
"""

from __future__ import annotations

from repro.datasets.scenario import Scenario
from repro.experiments.common import unique_triple_accuracy
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "table3"
TITLE = "Table 3: functional vs non-functional predicates"


def run(scenario: Scenario) -> ExperimentResult:
    schema = scenario.world.schema
    unique = scenario.unique_triples()

    def bucket(functional: bool) -> dict:
        pids = {
            pid
            for pid, predicate in schema.predicates.items()
            if predicate.functional is functional
        }
        triples = [t for t in unique if t.predicate in pids]
        items = {t.data_item for t in triples}
        _n, accuracy = unique_triple_accuracy(triples, scenario.gold)
        return {
            "predicates": len(pids),
            "data_items": len(items),
            "triples": len(triples),
            "accuracy": accuracy,
        }

    functional = bucket(True)
    non_functional = bucket(False)
    total = {
        key: functional[key] + non_functional[key]
        for key in ("predicates", "data_items", "triples")
    }

    def share(row: dict, key: str) -> float:
        return row[key] / total[key] if total[key] else 0.0

    rows = []
    for label, row in (("Functional", functional), ("Non-functional", non_functional)):
        rows.append(
            (
                label,
                f"{share(row, 'predicates'):.0%}",
                f"{share(row, 'data_items'):.0%}",
                f"{share(row, 'triples'):.0%}",
                f"{row['accuracy']:.2f}" if row["accuracy"] is not None else "-",
            )
        )
    text = format_table(
        ("type", "predicates", "data items", "triples", "accuracy"),
        rows,
        title=TITLE,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"functional": functional, "non_functional": non_functional},
    )
