"""Figure 18 — accuracy by #provenances, stratified by #extractors.

The paper's future-direction-1 evidence: at a fixed number of provenances,
triples extracted by many extractors are far more accurate than triples
extracted by a single extractor — a signal the provenance cross-product
buries.  At paper scale the strata are 1 vs ≥8 extractors; at laptop scale
the high stratum is ≥4.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.scenario import Scenario
from repro.eval.stats import triple_support
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig18"
TITLE = "Figure 18: accuracy by #provenances and #extractors"

PROV_BUCKETS = (1, 2, 3, 5, 8, 12, 20, 40)
HIGH_STRATUM = 4  # ">= this many extractors" (paper used 8 at web scale)


def _bucket(value: int) -> int:
    chosen = PROV_BUCKETS[0]
    for edge in PROV_BUCKETS:
        if value >= edge:
            chosen = edge
    return chosen


def run(scenario: Scenario) -> ExperimentResult:
    support = triple_support(scenario.records)
    strata = {
        "any #extractors": lambda n: True,
        "1 extractor": lambda n: n == 1,
        f">={HIGH_STRATUM} extractors": lambda n: n >= HIGH_STRATUM,
    }
    groups: dict[str, dict[int, list[bool]]] = {
        name: defaultdict(list) for name in strata
    }
    for triple, label in scenario.gold.items():
        if triple not in support:
            continue
        n_prov = support[triple]["provenances"]
        n_ext = support[triple]["extractors"]
        for name, predicate in strata.items():
            if predicate(n_ext):
                groups[name][_bucket(n_prov)].append(label)

    rows = []
    data: dict[str, list] = {name: [] for name in strata}
    for edge in PROV_BUCKETS:
        row: list = [f">={edge}"]
        for name in strata:
            labels = groups[name].get(edge, [])
            if labels:
                accuracy = sum(labels) / len(labels)
                row.append(f"{accuracy:.2f} (n={len(labels)})")
                data[name].append((edge, len(labels), accuracy))
            else:
                row.append("-")
        rows.append(tuple(row))
    text = format_table(("#provenances", *strata.keys()), rows, title=TITLE)

    # Headline: mean accuracy gap between the strata at shared buckets.
    single = dict((e, a) for e, _n, a in data["1 extractor"])
    multi = dict((e, a) for e, _n, a in data[f">={HIGH_STRATUM} extractors"])
    shared = sorted(set(single) & set(multi))
    if shared:
        gaps = [multi[e] - single[e] for e in shared]
        text += (
            f"\n\nmean accuracy gain of >={HIGH_STRATUM}-extractor triples over "
            f"single-extractor triples at equal #provenances: "
            f"{sum(gaps) / len(gaps):+.2f} (paper: ~+70% relative)"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
