"""Figure 15 — PR curves for the five models.

VOTE, ACCU, POPACCU, POPACCU+(unsup) and POPACCU+; the paper's finding is
that POPACCU+ dominates, with the unsupervised variant close behind.
"""

from __future__ import annotations

from repro.datasets.scenario import Scenario
from repro.eval.pr import auc_pr, pr_curve
from repro.experiments.common import standard_fusion_results
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig15"
TITLE = "Figure 15: PR curves for the five models"

SAMPLE_POINTS = 11


def run(scenario: Scenario) -> ExperimentResult:
    results = standard_fusion_results(scenario)
    rows = []
    data = {}
    for name, result in results.items():
        curve = pr_curve(result.probabilities, scenario.gold)
        area = auc_pr(curve)
        # Downsample the curve at fixed recall grid for the report.
        sampled = []
        points = curve.points()
        for i in range(SAMPLE_POINTS):
            target = i / (SAMPLE_POINTS - 1)
            best = min(points, key=lambda rp: abs(rp[0] - target))
            sampled.append((round(best[0], 3), round(best[1], 3)))
        rows.append((name, area))
        data[name] = {"auc_pr": area, "curve": points, "sampled": sampled}
    text = format_table(("method", "AUC-PR"), rows, title=TITLE, float_digits=4)
    text += "\n\nrecall -> precision (sampled):"
    for name in data:
        pairs = ", ".join(f"{r:.2f}->{p:.2f}" for r, p in data[name]["sampled"])
        text += f"\n  {name}: {pairs}"
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
