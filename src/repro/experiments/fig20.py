"""Figure 20 — number of gold-standard truths per data item.

"For 70% of data items, all extracted triples are false; for 25% data
items, a single extracted triple is correct; and for only 3% data items
are two extracted triples correct" — the reason the single-truth
assumption does not hurt much in practice.
"""

from __future__ import annotations

from collections import Counter

from repro.datasets.scenario import Scenario
from repro.eval.stats import truth_count_distribution
from repro.experiments.registry import ExperimentResult
from repro.report import format_series

EXPERIMENT_ID = "fig20"
TITLE = "Figure 20: #truths per data item in the gold standard"


def run(scenario: Scenario) -> ExperimentResult:
    true_counts: Counter = Counter()
    labelled_items = set()
    for triple, label in scenario.gold.items():
        labelled_items.add(triple.data_item)
        if label:
            true_counts[triple.data_item] += 1
    counts = [true_counts.get(item, 0) for item in labelled_items]
    distribution = truth_count_distribution(counts)
    text = format_series(TITLE, distribution, "#truths", "share of data items")
    zero = dict(distribution).get("0", 0.0)
    one = dict(distribution).get("1", 0.0)
    text += (
        f"\n\nitems with 0 truths: {zero:.0%} (paper: 70%)"
        f"\nitems with exactly 1 truth: {one:.0%} (paper: 25%)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={"distribution": distribution, "share_zero": zero, "share_one": one},
    )
