"""Figure 19 — Kappa correlation between extractor pairs.

Eq. (1) over every pair of the 12 extractors, split into pairs targeting
the same type of web content vs different types.  The paper: 53% of pairs
independent, a few weakly positive (shared techniques), 40% negatively
correlated — mostly cross-content pairs.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.datasets.scenario import Scenario
from repro.eval.kappa import kappa
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig19"
TITLE = "Figure 19: Kappa measure between extractor pairs"

INDEPENDENCE_BAND = 0.01


def run(scenario: Scenario) -> ExperimentResult:
    triples_by_extractor: dict[str, set] = defaultdict(set)
    for record in scenario.records:
        triples_by_extractor[record.extractor].add(record.triple)
    universe = {record.triple for record in scenario.records}
    primary_content = {
        profile.name: profile.content_types[0]
        for profile in scenario.config.extractors
    }

    rows = []
    same_type: list[float] = []
    cross_type: list[float] = []
    pair_values: dict[str, float] = {}
    for a, b in combinations(sorted(triples_by_extractor), 2):
        value = kappa(
            triples_by_extractor[a], triples_by_extractor[b], universe
        )
        pair_values[f"{a}/{b}"] = value
        same = primary_content.get(a) == primary_content.get(b)
        (same_type if same else cross_type).append(value)
        rows.append((f"{a}/{b}", "same" if same else "different", value))

    def summarize(values: list[float]) -> dict[str, float]:
        if not values:
            return {"n": 0, "positive": 0, "negative": 0, "independent": 0}
        return {
            "n": len(values),
            "positive": sum(1 for v in values if v > INDEPENDENCE_BAND),
            "negative": sum(1 for v in values if v < -INDEPENDENCE_BAND),
            "independent": sum(1 for v in values if abs(v) <= INDEPENDENCE_BAND),
        }

    same_summary = summarize(same_type)
    cross_summary = summarize(cross_type)
    summary_rows = [
        ("same content type", same_summary["n"], same_summary["positive"],
         same_summary["negative"], same_summary["independent"]),
        ("different content type", cross_summary["n"], cross_summary["positive"],
         cross_summary["negative"], cross_summary["independent"]),
    ]
    text = "\n\n".join(
        [
            format_table(
                ("group", "#pairs", "positive", "negative", "independent"),
                summary_rows,
                title=TITLE,
            ),
            format_table(("pair", "content", "kappa"), rows, float_digits=4),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        text=text,
        data={
            "pairs": pair_values,
            "same_type": same_summary,
            "cross_type": cross_summary,
        },
    )
