"""Figure 12 — leveraging the gold standard for initial accuracies.

POPACCU with provenance accuracies initialised from the LCWA gold standard
at sample rates 10/20/50/100% (vs the default-accuracy baseline).  The
paper: full-gold initialisation cuts weighted deviation by 21% and lifts
AUC-PR by 18%, and more gold is monotonically better.
"""

from __future__ import annotations

from dataclasses import replace

from repro.datasets.scenario import Scenario
from repro.eval.calibration import calibration_curve
from repro.experiments.common import metrics_for
from repro.experiments.registry import ExperimentResult
from repro.fusion import FusionConfig, PopAccu
from repro.report import format_table

EXPERIMENT_ID = "fig12"
TITLE = "Figure 12: initialising accuracies from the gold standard"

SAMPLE_RATES = (0.1, 0.2, 0.5, 1.0)


def run(scenario: Scenario) -> ExperimentResult:
    fusion_input = scenario.fusion_input()
    rows = []
    data = {}
    baseline = PopAccu(FusionConfig()).fuse(fusion_input)
    metrics = metrics_for(baseline.probabilities, scenario.gold)
    rows.append(("POPACCU (default init)", metrics.dev, metrics.wdev, metrics.auc_pr))
    data["default"] = {
        "dev": metrics.dev,
        "wdev": metrics.wdev,
        "auc_pr": metrics.auc_pr,
        "calibration_points": calibration_curve(
            baseline.probabilities, scenario.gold
        ).points(),
    }
    for rate in SAMPLE_RATES:
        config = replace(FusionConfig(), gold_sample_rate=rate)
        result = PopAccu(config, gold_labels=scenario.gold).fuse(fusion_input)
        metrics = metrics_for(result.probabilities, scenario.gold)
        label = f"INITACCU ({rate:.0%})"
        rows.append((label, metrics.dev, metrics.wdev, metrics.auc_pr))
        data[f"{rate:.0%}"] = {
            "dev": metrics.dev,
            "wdev": metrics.wdev,
            "auc_pr": metrics.auc_pr,
            "gold_initialized": result.diagnostics["gold_initialized"],
            "calibration_points": calibration_curve(
                result.probabilities, scenario.gold
            ).points(),
        }
    text = format_table(
        ("initialisation", "Dev.", "WDev.", "AUC-PR"),
        rows,
        title=TITLE,
        float_digits=4,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
