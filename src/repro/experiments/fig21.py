"""Figure 21 — coverage and accuracy by extraction confidence.

Four example extractors (TXT1, DOM2, TBL1, ANO) showing very different
confidence behaviour: DOM2/ANO assign extreme confidences, TXT1 clusters
around 0.5; TXT1/DOM2 confidences correlate with accuracy, ANO's do not,
and TBL1's accuracy peaks at *medium* confidence.
"""

from __future__ import annotations

from collections import defaultdict

from repro.datasets.scenario import Scenario
from repro.eval.stats import confidence_accuracy_curve, confidence_coverage_curve
from repro.experiments.registry import ExperimentResult
from repro.report import format_table

EXPERIMENT_ID = "fig21"
TITLE = "Figure 21: coverage and accuracy by extraction confidence"

EXTRACTORS = ("TXT1", "DOM2", "TBL1", "ANO")


def run(scenario: Scenario) -> ExperimentResult:
    by_extractor = defaultdict(list)
    for record in scenario.records:
        by_extractor[record.extractor].append(record)

    data = {}
    coverage_rows = []
    accuracy_rows = []
    for name in EXTRACTORS:
        records = by_extractor.get(name, [])
        if not any(r.confidence is not None for r in records):
            # Tiny corpora may render no content for a niche extractor.
            data[name] = {"coverage": [], "accuracy": []}
            grid_size = 11
            coverage_rows.append((name, *["-"] * grid_size))
            accuracy_rows.append((name, *["-"] * (grid_size - 1)))
            continue
        coverage = confidence_coverage_curve(records)
        accuracy = confidence_accuracy_curve(records, scenario.gold)
        data[name] = {
            "coverage": coverage,
            "accuracy": [(p.x, p.n, p.accuracy) for p in accuracy],
        }
        coverage_rows.append(
            (name, *[f"{share:.2f}" for _x, share in coverage])
        )
        accuracy_by_x = {p.x: p.accuracy for p in accuracy}
        accuracy_rows.append(
            (
                name,
                *[
                    f"{accuracy_by_x[x]:.2f}" if x in accuracy_by_x else "-"
                    for x in [i / 10 for i in range(10)]
                ],
            )
        )
    grid = [f"{i / 10:.1f}" for i in range(11)]
    text = "\n\n".join(
        [
            format_table(
                ("extractor", *grid),
                coverage_rows,
                title=TITLE + " — cumulative coverage (share with conf <= x)",
            ),
            format_table(
                ("extractor", *grid[:10]),
                accuracy_rows,
                title="accuracy by confidence bucket",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, text=text, data=data
    )
