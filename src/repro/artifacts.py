"""Content-addressed scenario artifact cache.

Worldgen is deterministic in ``(config, seed)`` — and in the *code* that
interprets them — so its output can be cached on disk and reloaded in
milliseconds instead of regenerated in seconds.  This module serializes
the worldgen bundle (world, Freebase snapshot, web corpus) into a
columnar artifact directory keyed on

    sha256(format version, code version, seed,
           repr(WorldConfig), repr(WebConfig))

where the **code version** is a hash over the source files whose logic
determines worldgen output (``repro/world``, ``repro/kb``,
``repro/rng.py``): editing any of them bumps the key, so a stale
artifact can never be loaded — invalidation is by construction, not by
expiry.

Layout of one artifact directory (``scenario-<key prefix>/``)::

    meta.json     key, code version, configs, per-file sizes, checksum
    world.pkl     the World (with its lazily-derived wrong-value pools
                  cleared; they regenerate bit-identically on demand)
    freebase.pkl  the Freebase snapshot
    sites.pkl     the site-profile table
    url.npy / site.npy / category.npy
                  per-page columns (what coverage masks and sharding read)
    payload.bin   per-page pickled (assertions, elements) bodies,
    offsets.npy   concatenated, with int64 prefix offsets

Pages load as a :class:`LazyPageList`: the columns materialize at load
time (they are what setup-stage consumers touch), while each page's
assertion/element body is decoded from the payload on first access — so
a warm-cache pipeline's *setup* stage is pure I/O and page decoding
rides inside the extraction pass that actually consumes the pages.

Correctness contract: a cache hit is **bit-identical** to a fresh build
— same world, same corpus, and therefore the same extraction records.
Writers publish atomically (temp directory + rename), and
:func:`load_scenario_artifact` returns ``None`` on *any* mismatch —
wrong key, wrong code version, missing or size-drifted files — so
callers fall back to a fresh build instead of a corrupt read; tests use
``verify=True`` for the full payload checksum.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Iterator, Sequence, overload

import numpy as np

from repro.world.config import WebConfig, WorldConfig
from repro.world.facts import World, build_freebase_snapshot
from repro.world.webgen import WebCorpus, WebPage, generate_corpus
from repro.world.worldgen import generate_world

__all__ = [
    "ARTIFACT_FORMAT",
    "COLUMN_FORMAT",
    "ColumnHandle",
    "LazyPageList",
    "code_version",
    "scenario_artifact_key",
    "artifact_dir_for",
    "save_scenario_artifact",
    "load_scenario_artifact",
    "save_column_store",
    "open_column_store",
    "prune_cache",
    "setup_worldgen",
]

#: Bumped when the artifact layout itself changes shape.
ARTIFACT_FORMAT = 1

#: Bumped when the column-store layout changes shape.
COLUMN_FORMAT = 1

_META = "meta.json"
_PICKLES = ("world.pkl", "freebase.pkl", "sites.pkl")
_COLUMNS = ("url.npy", "site.npy", "category.npy")
_PAYLOAD = "payload.bin"
_OFFSETS = "offsets.npy"

_code_version_cache: str | None = None


# ---------------------------------------------------------------------------
# Fast pickling for the artifact payloads
# ---------------------------------------------------------------------------
# Stock pickling of slotted dataclasses round-trips through
# ``_dataclass_setstate``, which re-scans ``dataclasses.fields()`` for
# *every object* — the dominant cost of loading a world whose truths are
# tens of thousands of small value/triple dataclasses.  The artifact
# pickler reduces eligible repro dataclasses to plain ``cls(*fields)``
# constructor calls instead, which unpickle through ``__init__`` with no
# per-object field scan.  Eligible = every field participates in
# ``__init__`` (so the constructor round-trip is exact); anything else
# falls back to the stock reducer.

_fast_fields_cache: dict[type, tuple[str, ...] | None] = {}


def _fast_fields(cls: type) -> tuple[str, ...] | None:
    cached = _fast_fields_cache.get(cls, False)
    if cached is not False:
        return cached
    names: tuple[str, ...] | None = None
    if cls.__module__.startswith("repro.") and dataclasses.is_dataclass(cls):
        fields = dataclasses.fields(cls)
        if all(field.init for field in fields):
            names = tuple(field.name for field in fields)
    _fast_fields_cache[cls] = names
    return names


class _ArtifactPickler(pickle.Pickler):
    def reducer_override(self, obj):
        names = _fast_fields(type(obj))
        if names is None:
            return NotImplemented
        return type(obj), tuple(getattr(obj, name) for name in names)


def _dumps(obj) -> bytes:
    buffer = io.BytesIO()
    _ArtifactPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def code_version() -> str:
    """Hash of the source files that determine worldgen output.

    Covers ``repro/world``, ``repro/kb`` and ``repro/rng.py`` — the
    generators plus the seed-derivation and value/entity substrate they
    build on.  Extraction/fusion code is deliberately *not* included:
    the artifact stores worldgen output only, and extraction always runs
    fresh against it.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_root = Path(__file__).resolve().parent
        sources = sorted(
            [
                *(package_root / "world").glob("*.py"),
                *(package_root / "kb").glob("*.py"),
                package_root / "rng.py",
            ]
        )
        digest = hashlib.sha256()
        for source in sources:
            digest.update(source.name.encode())
            digest.update(source.read_bytes())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def scenario_artifact_key(
    seed: int, world_config: WorldConfig, web_config: WebConfig
) -> str:
    """The content address of one worldgen bundle."""
    material = "\n".join(
        (
            f"format={ARTIFACT_FORMAT}",
            f"code={code_version()}",
            f"seed={seed}",
            repr(world_config),
            repr(web_config),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


def artifact_dir_for(cache_dir: Path | str, key: str) -> Path:
    return Path(cache_dir) / f"scenario-{key[:24]}"


class LazyPageList(Sequence):
    """A sequence of :class:`WebPage` decoded from an artifact on demand.

    The identity columns (url/site/category) are materialized up front;
    each page's ``(assertions, elements)`` body is unpickled from the
    shared payload buffer on first access and memoized, so iterating the
    list yields pages equal (``==``) to the originally generated ones
    while opening the artifact costs only the column load.
    """

    def __init__(
        self,
        urls: list[str],
        sites: list[str],
        categories: list[str],
        payload: bytes,
        offsets: np.ndarray,
    ) -> None:
        self._urls = urls
        self._sites = sites
        self._categories = categories
        self._payload = payload
        self._offsets = offsets
        self._pages: list[WebPage | None] = [None] * len(urls)

    def __len__(self) -> int:
        return len(self._urls)

    def _materialize(self, index: int) -> WebPage:
        page = self._pages[index]
        if page is None:
            start, end = self._offsets[index], self._offsets[index + 1]
            assertions, elements = pickle.loads(self._payload[start:end])
            page = WebPage(
                url=self._urls[index],
                site=self._sites[index],
                category=self._categories[index],
                assertions=assertions,
                elements=elements,
            )
            self._pages[index] = page
        return page

    @overload
    def __getitem__(self, index: int) -> WebPage: ...

    @overload
    def __getitem__(self, index: slice) -> list[WebPage]: ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialize(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._materialize(index)

    def __iter__(self) -> Iterator[WebPage]:
        for index in range(len(self)):
            yield self._materialize(index)


def _dump_world(world: World) -> bytes:
    """Pickle ``world`` with its derived wrong-value pools cleared.

    The pools are a lazily-filled cache (each entry deterministic in
    ``(master_seed, item)``), so clearing keeps the artifact independent
    of how much of the cache corpus generation happened to populate —
    the reloaded world re-derives identical pools on demand.
    """
    pools = world._wrong_pools
    world._wrong_pools = {}
    try:
        return _dumps(world)
    finally:
        world._wrong_pools = pools


def save_scenario_artifact(
    cache_dir: Path | str,
    seed: int,
    world: World,
    freebase,
    corpus: WebCorpus,
) -> Path:
    """Serialize one worldgen bundle under its content address.

    Returns the artifact directory.  Publication is atomic (temp
    directory + rename): a crashed writer leaves no half-readable
    artifact, and a concurrent writer of the same key harmlessly loses
    the rename race.
    """
    key = scenario_artifact_key(seed, world.config, corpus.config)
    final_dir = artifact_dir_for(cache_dir, key)
    if (final_dir / _META).exists():
        return final_dir

    pages = list(corpus.pages)
    bodies = [_dumps((page.assertions, page.elements)) for page in pages]
    offsets = np.zeros(len(bodies) + 1, dtype=np.int64)
    np.cumsum([len(body) for body in bodies], out=offsets[1:])
    payload = b"".join(bodies)

    files: dict[str, bytes] = {
        "world.pkl": _dump_world(world),
        "freebase.pkl": _dumps(freebase),
        "sites.pkl": _dumps(corpus.sites),
        _PAYLOAD: payload,
    }
    for name, column in zip(
        _COLUMNS,
        (
            [page.url for page in pages],
            [page.site for page in pages],
            [page.category for page in pages],
        ),
    ):
        buffer = _npy_bytes(np.array(column))
        files[name] = buffer
    files[_OFFSETS] = _npy_bytes(offsets)

    meta = {
        "format": ARTIFACT_FORMAT,
        "key": key,
        "code_version": code_version(),
        "seed": seed,
        "world_config": repr(world.config),
        "web_config": repr(corpus.config),
        "n_pages": len(pages),
        "sizes": {name: len(blob) for name, blob in files.items()},
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }

    final_dir.parent.mkdir(parents=True, exist_ok=True)
    temp_dir = final_dir.with_name(final_dir.name + f".tmp-{os.getpid()}")
    if temp_dir.exists():
        shutil.rmtree(temp_dir)
    temp_dir.mkdir(parents=True)
    try:
        for name, blob in files.items():
            (temp_dir / name).write_bytes(blob)
        (temp_dir / _META).write_text(json.dumps(meta, indent=2) + "\n")
        try:
            os.rename(temp_dir, final_dir)
        except OSError:
            # Lost the publish race to a concurrent writer of the same
            # key: the published artifact is bit-equivalent, keep it.
            if not (final_dir / _META).exists():
                raise
            shutil.rmtree(temp_dir)
    except Exception:
        shutil.rmtree(temp_dir, ignore_errors=True)
        raise
    return final_dir


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def load_scenario_artifact(
    cache_dir: Path | str,
    seed: int,
    world_config: WorldConfig,
    web_config: WebConfig,
    verify: bool = False,
) -> tuple[World, object, WebCorpus] | None:
    """Load ``(world, freebase, corpus)`` for the key, or None on miss.

    A miss is any mismatch: no artifact, a different key or code
    version, or files whose sizes drifted from the manifest.  With
    ``verify=True`` the payload checksum is also recomputed (the tests'
    corruption check; skipped on the hot path, where the bit-identity
    contract is enforced by the benchmark parity assertions instead).
    """
    key = scenario_artifact_key(seed, world_config, web_config)
    directory = artifact_dir_for(cache_dir, key)
    meta_path = directory / _META
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if (
        meta.get("format") != ARTIFACT_FORMAT
        or meta.get("key") != key
        or meta.get("code_version") != code_version()
    ):
        return None
    sizes = meta.get("sizes", {})
    names = (*_PICKLES, *_COLUMNS, _PAYLOAD, _OFFSETS)
    try:
        for name in names:
            if (directory / name).stat().st_size != sizes.get(name):
                return None
        world: World = pickle.loads((directory / "world.pkl").read_bytes())
        freebase = pickle.loads((directory / "freebase.pkl").read_bytes())
        sites = pickle.loads((directory / "sites.pkl").read_bytes())
        urls, site_col, categories = (
            np.load(directory / name, allow_pickle=False).tolist()
            for name in _COLUMNS
        )
        offsets = np.load(directory / _OFFSETS, allow_pickle=False)
        payload = (directory / _PAYLOAD).read_bytes()
    except (OSError, pickle.UnpicklingError, ValueError):
        return None
    if verify and hashlib.sha256(payload).hexdigest() != meta.get("payload_sha256"):
        return None
    pages = LazyPageList(urls, site_col, categories, payload, offsets)
    corpus = WebCorpus(config=web_config, sites=sites, pages=pages)
    return world, freebase, corpus


# ---------------------------------------------------------------------------
# Column store: persisted ColumnarClaims columns for zero-copy worker views
# ---------------------------------------------------------------------------
# The out-of-core `web` tier persists the claim matrix's CSR columns as
# plain ``.npy`` files so fusion workers can map them read-only instead
# of unpickling a full ``ColumnarClaims`` per pool.  The store is
# content-addressed by the column *data* itself (sha256 over the file
# digests), published atomically like the scenario artifact, and carries
# the writer's code version so ``prune_cache`` can retire stores written
# by code that no longer exists.


@dataclasses.dataclass(frozen=True)
class ColumnHandle:
    """A pure-primitive pointer at one published column store.

    This is what crosses the pool wire when mapped columns are installed
    as pool-resident state: directory + content key + a per-file
    ``(name, size, sha256)`` manifest — never the arrays themselves.
    Workers re-map the files from the page cache, so the claim columns
    are shared zero-copy across the pool.
    """

    directory: str
    key: str
    granularity: str
    files: tuple[tuple[str, int, str], ...]

    def path_of(self, name: str) -> Path:
        return Path(self.directory) / name

    def manifest(self) -> dict[str, tuple[int, str]]:
        return {name: (size, digest) for name, size, digest in self.files}


def column_store_dir_for(cache_dir: Path | str, key: str) -> Path:
    return Path(cache_dir) / f"columns-{key[:24]}"


def _column_store_key(granularity: str, digests: dict[str, str]) -> str:
    material = "\n".join(
        (
            f"column-format={COLUMN_FORMAT}",
            f"granularity={granularity}",
            *(f"{name}={digests[name]}" for name in sorted(digests)),
        )
    )
    return hashlib.sha256(material.encode()).hexdigest()


def save_column_store(
    cache_dir: Path | str,
    granularity: str,
    arrays: dict[str, np.ndarray],
    objects: bytes,
) -> ColumnHandle:
    """Publish claim columns under their content address.

    ``arrays`` maps column names to int64 arrays (saved as ``.npy``);
    ``objects`` is the pickled object-column blob (saved verbatim).
    Publication is atomic (temp directory + rename) and idempotent: a
    store whose content already exists is reused, and a concurrent
    writer of the same key harmlessly loses the rename race.
    """
    files: dict[str, bytes] = {
        f"{name}.npy": _npy_bytes(array) for name, array in arrays.items()
    }
    files["objects.pkl"] = objects
    digests = {name: hashlib.sha256(blob).hexdigest() for name, blob in files.items()}
    key = _column_store_key(granularity, digests)
    final_dir = column_store_dir_for(cache_dir, key)
    handle = ColumnHandle(
        directory=str(final_dir),
        key=key,
        granularity=granularity,
        files=tuple(
            (name, len(files[name]), digests[name]) for name in sorted(files)
        ),
    )
    if (final_dir / _META).exists():
        return handle

    meta = {
        "format": COLUMN_FORMAT,
        "kind": "columns",
        "key": key,
        "granularity": granularity,
        "code_version": code_version(),
        "files": {
            name: {"bytes": len(blob), "sha256": digests[name]}
            for name, blob in files.items()
        },
    }
    final_dir.parent.mkdir(parents=True, exist_ok=True)
    temp_dir = final_dir.with_name(final_dir.name + f".tmp-{os.getpid()}")
    if temp_dir.exists():
        shutil.rmtree(temp_dir)
    temp_dir.mkdir(parents=True)
    try:
        for name, blob in files.items():
            (temp_dir / name).write_bytes(blob)
        (temp_dir / _META).write_text(json.dumps(meta, indent=2) + "\n")
        try:
            os.rename(temp_dir, final_dir)
        except OSError:
            if not (final_dir / _META).exists():
                raise
            shutil.rmtree(temp_dir)
    except Exception:
        shutil.rmtree(temp_dir, ignore_errors=True)
        raise
    return handle


def open_column_store(directory: Path | str, verify: bool = False) -> ColumnHandle | None:
    """Validate a published column store and return its handle, or None.

    A miss is any mismatch: unreadable metadata, a different layout
    format, or files whose sizes drifted from the manifest.  With
    ``verify=True`` every file's checksum is recomputed (the corruption
    check; skipped on the hot path, where the small-scale bitwise-parity
    tests enforce the contract instead).
    """
    directory = Path(directory)
    try:
        meta = json.loads((directory / _META).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if meta.get("format") != COLUMN_FORMAT or meta.get("kind") != "columns":
        return None
    manifest = meta.get("files")
    granularity = meta.get("granularity")
    key = meta.get("key")
    if not isinstance(manifest, dict) or not isinstance(granularity, str) or not key:
        return None
    try:
        for name, entry in manifest.items():
            path = directory / name
            if path.stat().st_size != entry.get("bytes"):
                return None
            if verify:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
                if digest != entry.get("sha256"):
                    return None
    except OSError:
        return None
    return ColumnHandle(
        directory=str(directory),
        key=key,
        granularity=granularity,
        files=tuple(
            (name, int(manifest[name]["bytes"]), str(manifest[name]["sha256"]))
            for name in sorted(manifest)
        ),
    )


# ---------------------------------------------------------------------------
# Cache lifecycle
# ---------------------------------------------------------------------------


def prune_cache(cache_dir: Path | str, apply: bool = False) -> list[Path]:
    """Find (and with ``apply=True`` remove) stale cache entries.

    The content-addressed key means a stale entry is never *loaded* —
    but nothing ever deleted it either, so directories written by old
    code versions accumulate forever.  Stale = a ``scenario-*`` or
    ``columns-*`` entry whose recorded code version no longer matches
    the current one, whose metadata is unreadable, or a leftover
    ``.tmp-*`` publish directory from a crashed writer.  Returns the
    stale paths (sorted); the default is a dry run.
    """
    cache_dir = Path(cache_dir)
    stale: list[Path] = []
    current = code_version()
    if not cache_dir.is_dir():
        return stale
    for entry in sorted(cache_dir.iterdir()):
        if not entry.is_dir():
            continue
        name = entry.name
        if not (name.startswith("scenario-") or name.startswith("columns-")):
            continue
        if ".tmp-" in name:
            stale.append(entry)
            continue
        try:
            meta = json.loads((entry / _META).read_text())
        except (OSError, json.JSONDecodeError):
            stale.append(entry)
            continue
        if meta.get("code_version") != current:
            stale.append(entry)
    if apply:
        for entry in stale:
            shutil.rmtree(entry, ignore_errors=True)
    return stale


def setup_worldgen(
    seed: int,
    world_config: WorldConfig,
    web_config: WebConfig,
    cache_dir: Path | str | None = None,
) -> tuple[World, object, WebCorpus, str]:
    """Build (or load) the worldgen bundle; the one shared setup path.

    Returns ``(world, freebase, corpus, cache_status)`` where the status
    is ``"off"`` (no cache directory), ``"miss"`` (generated fresh and
    saved), or ``"hit"`` (loaded from the artifact).  Used by
    :func:`repro.datasets.scenario.build_scenario`,
    :func:`repro.endtoend.run_end_to_end` and the benchmark registry so
    all three share one cache discipline.
    """
    if cache_dir is not None:
        loaded = load_scenario_artifact(cache_dir, seed, world_config, web_config)
        if loaded is not None:
            world, freebase, corpus = loaded
            return world, freebase, corpus, "hit"
    world = generate_world(world_config, seed)
    freebase = build_freebase_snapshot(world)
    corpus = generate_corpus(world, web_config, seed)
    if cache_dir is None:
        return world, freebase, corpus, "off"
    save_scenario_artifact(cache_dir, seed, world, freebase, corpus)
    return world, freebase, corpus, "miss"
