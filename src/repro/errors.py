"""Exception hierarchy for the knowledge-fusion reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single type at the library boundary.  Subclasses are
deliberately narrow: they mark *which subsystem* rejected the input, which
is the most useful piece of context when a fusion pipeline is assembled
from many configurable parts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class SchemaError(ReproError):
    """A type, predicate, or value violates the knowledge-base schema."""


class ExtractionError(ReproError):
    """An extractor was fed content it cannot process."""


class FusionError(ReproError):
    """A fusion method received observations it cannot fuse."""


class EvaluationError(ReproError):
    """A metric was asked to evaluate ill-formed predictions."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""
