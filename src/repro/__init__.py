"""repro — a reproduction of "From Data Fusion to Knowledge Fusion" (VLDB'14).

The library computes, for every unique extracted ``(subject, predicate,
object)`` triple, a calibrated probability that the triple is true, given
provenance information (which extractor produced it, from which URL, with
which pattern).  It ships the full stack the paper depends on:

- :mod:`repro.kb` — a Freebase-like knowledge-base substrate with LCWA
  gold-standard labelling;
- :mod:`repro.world` — a synthetic web: ground-truth world plus rendered
  text / DOM / table / annotation content with realistic error structure;
- :mod:`repro.extract` — 12 concrete extractors with shared entity-linkage
  components and per-extractor confidence models;
- :mod:`repro.mapreduce` — the local MapReduce engine behind Figure 8;
- :mod:`repro.fusion` — VOTE, ACCU, POPACCU, the paper's refinements
  (granularity, coverage/accuracy filtering, gold initialisation), and the
  POPACCU+ presets, plus §5 future-direction extensions;
- :mod:`repro.eval` — calibration / PR / Kappa metrics and automated error
  analysis;
- :mod:`repro.datasets` — scenario builders calibrated to the paper's
  Tables 1-2;
- :mod:`repro.experiments` — one runner per table and figure.

Quickstart
----------
>>> from repro.datasets import build_scenario, tiny_config
>>> from repro.fusion import popaccu_plus_unsup
>>> scenario = build_scenario(tiny_config(seed=7))
>>> result = popaccu_plus_unsup().fuse(scenario.fusion_input())
>>> 0.0 <= min(result.probabilities.values()) <= 1.0
True
"""

from repro.kb import (
    DataItem,
    DateValue,
    Entity,
    EntityRef,
    KnowledgeBase,
    Label,
    LCWALabeler,
    NumberValue,
    Predicate,
    Schema,
    StringValue,
    Triple,
    ValueHierarchy,
)

__version__ = "1.0.0"

__all__ = [
    "DataItem",
    "DateValue",
    "Entity",
    "EntityRef",
    "KnowledgeBase",
    "Label",
    "LCWALabeler",
    "NumberValue",
    "Predicate",
    "Schema",
    "StringValue",
    "Triple",
    "ValueHierarchy",
    "__version__",
]
