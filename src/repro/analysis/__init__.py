"""Static contract enforcement for the determinism guarantees.

The repo's headline property — serial == fork == spawn bitwise at any
worker count, ``PYTHONHASHSEED``-independent, exactly reproducible per
seed — rests on a handful of coding contracts (named RNG streams,
canonical-order summation, payload purity, shm pairing, clock isolation,
declared parity).  Runtime tests can only spot-check the paths they
execute; the contract linter (:mod:`repro.analysis.lint` +
:mod:`repro.analysis.rules`) checks the *source* for the patterns that
break them, on every file, on every push.

Entry points: ``repro-kf lint`` (CLI), ``python tools/contracts_lint.py``
(standalone, what CI runs), and :func:`run_lint` (what the tier-1 wrapper
test ``tests/test_contracts_lint.py`` calls).
"""

from repro.analysis.lint import (
    Finding,
    LintResult,
    Rule,
    SourceFile,
    find_repo_root,
    lint_sources,
    load_baseline,
    render_human,
    render_json,
    run_lint,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "SourceFile",
    "find_repo_root",
    "lint_sources",
    "load_baseline",
    "render_human",
    "render_json",
    "run_lint",
]
