"""The contract-lint engine: sources in, findings out.

The engine is rule-agnostic: it parses every tracked source file once
(AST + suppression pragmas), hands the whole file set to each registered
rule (rules may reason across modules — DET006 cross-references
``fusion/base.py`` against ``endtoend.py``), then applies the two
suppression channels and reports what survives.

**Suppression channels** — both are themselves linted, so a suppression
can never silently outlive the finding it excused:

- an inline pragma on the offending line::

      x = hash(key)  # det: ignore[DET002] -- prototyping, not shipped

  The reason after ``--`` is mandatory (a bare pragma is an ``LNT001``
  finding), and a pragma whose rule no longer fires on that line is a
  *stale suppression* (``LNT002``).
- a committed baseline file (``tools/contracts_lint_baseline.json``),
  keyed on ``(rule, path, message)`` — line-insensitive, so unrelated
  edits don't churn it.  A baseline entry that no longer matches any
  finding is a stale suppression too (``LNT003``).  The repo ships with
  an **empty** baseline; the file exists so a future emergency has a
  paved road that decays loudly instead of rotting quietly.

Meta-findings (``LNT000`` syntax error, ``LNT00x`` suppression hygiene)
cannot themselves be suppressed.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Finding",
    "LintResult",
    "Pragma",
    "Rule",
    "SourceFile",
    "DEFAULT_BASELINE",
    "collect_sources",
    "find_repo_root",
    "lint_sources",
    "load_baseline",
    "parse_source",
    "render_human",
    "render_json",
    "run_lint",
]

#: Where the committed baseline lives, repo-relative.
DEFAULT_BASELINE = "tools/contracts_lint_baseline.json"

#: The directory tree the repo run lints, repo-relative.
DEFAULT_TARGET = "src/repro"

#: ``baseline["format"]`` we read and write.
BASELINE_FORMAT = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """The baseline identity: line-insensitive, so the baseline does
        not churn when unrelated edits move a finding up or down."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Pragma:
    """One ``# det: ignore[...]`` suppression comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file as the rules see it."""

    path: str  # repo-relative posix path
    text: str
    tree: ast.Module | None  # None when the file does not parse
    pragmas: tuple[Pragma, ...]


@dataclass(frozen=True)
class Rule:
    """One pluggable contract rule.

    ``check`` receives the *whole* file set (``path -> SourceFile``) and
    yields findings; single-file rules just iterate it, cross-module
    rules (DET006) correlate entries.
    """

    id: str
    title: str
    check: Callable[[Mapping[str, SourceFile]], Iterable[Finding]]


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced."""

    findings: tuple[Finding, ...]  # unsuppressed, sorted
    suppressed: tuple[Finding, ...]  # silenced by pragma or baseline
    n_files: int
    rules: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings


# --------------------------------------------------------------------------
# Pragma parsing
# --------------------------------------------------------------------------

_PRAGMA = re.compile(
    r"#\s*det:\s*ignore\[(?P<rules>[^\]]*)\](?:\s*--\s*(?P<reason>.*\S))?"
)
#: Anything that looks like it tried to be a pragma; used to flag typos
#: (a misspelled pragma that silently suppresses nothing is worse than a
#: loud error).
_PRAGMA_HINT = re.compile(r"#\s*det\s*:")

_RULE_ID = re.compile(r"^(DET|LNT)\d{3}$")


def _comment_tokens(text: str) -> list[tuple[int, str]]:
    """``(line, comment_text)`` for every real comment token.

    Tokenizing (rather than line-scanning) keeps pragma-shaped text in
    docstrings and string literals — like this module's own examples —
    from being treated as live suppressions.
    """
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable source: the ast pass reports LNT000; no pragmas.
        pass
    return comments


def _parse_pragmas(
    path: str, text: str
) -> tuple[tuple[Pragma, ...], list[Finding]]:
    pragmas: list[Pragma] = []
    findings: list[Finding] = []
    for lineno, line in _comment_tokens(text):
        match = _PRAGMA.search(line)
        if match is None:
            if _PRAGMA_HINT.search(line):
                findings.append(
                    Finding(
                        path,
                        lineno,
                        "LNT001",
                        "malformed pragma; expected "
                        "'# det: ignore[DET00x] -- reason'",
                    )
                )
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        reason = (match.group("reason") or "").strip()
        bad_ids = [r for r in rules if not _RULE_ID.fullmatch(r)]
        if not rules or bad_ids:
            findings.append(
                Finding(
                    path,
                    lineno,
                    "LNT001",
                    f"pragma names no valid rule ids ({list(rules)!r}); "
                    "expected e.g. '# det: ignore[DET001] -- reason'",
                )
            )
            continue
        if not reason:
            findings.append(
                Finding(
                    path,
                    lineno,
                    "LNT001",
                    f"pragma suppressing {', '.join(rules)} has no reason; "
                    "the '-- why' clause is mandatory",
                )
            )
            # Reason-less pragmas do not suppress: fall through without
            # registering it.
            continue
        pragmas.append(Pragma(line=lineno, rules=rules, reason=reason))
    return tuple(pragmas), findings


def parse_source(path: str, text: str) -> tuple[SourceFile, list[Finding]]:
    """Parse one file; syntax errors become LNT000 findings, not crashes."""
    pragmas, findings = _parse_pragmas(path, text)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as err:
        findings.append(
            Finding(path, err.lineno or 0, "LNT000", f"syntax error: {err.msg}")
        )
        return SourceFile(path, text, None, pragmas), findings
    return SourceFile(path, text, tree, pragmas), findings


# --------------------------------------------------------------------------
# The lint pipeline
# --------------------------------------------------------------------------


def lint_sources(
    files: Mapping[str, str],
    rules: Sequence[Rule] | None = None,
    baseline: Sequence[tuple[str, str, str]] = (),
    baseline_path: str = DEFAULT_BASELINE,
) -> LintResult:
    """Lint an in-memory file set (``path -> source text``).

    This is the seam the fixture tests drive: paths are taken at face
    value (rules scope on them), no filesystem involved.  ``baseline``
    is a sequence of :meth:`Finding.key` tuples; stale entries are
    reported as LNT003 findings against ``baseline_path``.
    """
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES

    sources: dict[str, SourceFile] = {}
    meta: list[Finding] = []
    for path in sorted(files):
        source, errors = parse_source(path, files[path])
        sources[path] = source
        meta.extend(errors)

    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(sources))

    # Channel 1: inline pragmas (same line, rule listed, reason present).
    pragma_used: set[tuple[str, int, str]] = set()
    suppressed: list[Finding] = []
    kept: list[Finding] = []
    for finding in sorted(raw):
        source = sources.get(finding.path)
        pragma = None
        if source is not None:
            for candidate in source.pragmas:
                if candidate.line == finding.line and finding.rule in candidate.rules:
                    pragma = candidate
                    break
        if pragma is not None:
            pragma_used.add((finding.path, pragma.line, finding.rule))
            suppressed.append(finding)
        else:
            kept.append(finding)

    # A pragma'd rule id that no longer fires is itself an error: stale
    # suppressions rot into blanket permissions.  This includes rule ids
    # no rule in this run owns — a well-formed but wrong id (DET999)
    # must not be silently inert.
    for path in sorted(sources):
        for pragma in sources[path].pragmas:
            for rule_id in pragma.rules:
                if (path, pragma.line, rule_id) not in pragma_used:
                    meta.append(
                        Finding(
                            path,
                            pragma.line,
                            "LNT002",
                            f"stale suppression: {rule_id} no longer fires "
                            "on this line; remove the pragma",
                        )
                    )

    # Channel 2: the committed baseline, keyed line-insensitively.
    baseline_keys = [tuple(entry) for entry in baseline]
    baseline_set = set(baseline_keys)
    matched: set[tuple[str, str, str]] = set()
    remaining: list[Finding] = []
    for finding in kept:
        if finding.key() in baseline_set:
            matched.add(finding.key())
            suppressed.append(finding)
        else:
            remaining.append(finding)
    for key in baseline_keys:
        if key not in matched:
            rule_id, path, message = key
            meta.append(
                Finding(
                    baseline_path,
                    0,
                    "LNT003",
                    f"stale baseline suppression: {rule_id} {path}: "
                    f"{message!r} no longer fires; remove the entry",
                )
            )

    return LintResult(
        findings=tuple(sorted(remaining + meta)),
        suppressed=tuple(sorted(suppressed)),
        n_files=len(sources),
        rules=tuple(rule.id for rule in rules),
    )


def collect_sources(root: Path, target: str = DEFAULT_TARGET) -> dict[str, str]:
    """Every ``.py`` file under ``root/target``, keyed repo-relative."""
    base = root / target
    files: dict[str, str] = {}
    for path in sorted(base.rglob("*.py")):
        files[path.relative_to(root).as_posix()] = path.read_text()
    return files


def load_baseline(path: Path) -> list[tuple[str, str, str]]:
    """Read the committed baseline's suppression keys."""
    data = json.loads(path.read_text())
    entries = data.get("suppressions", []) if isinstance(data, dict) else data
    return [(entry["rule"], entry["path"], entry["message"]) for entry in entries]


def run_lint(
    root: Path,
    baseline_path: Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintResult:
    """Lint the repo at ``root`` (the CI / tier-1 entry point)."""
    root = Path(root)
    if baseline_path is None:
        candidate = root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() else None
    baseline = load_baseline(baseline_path) if baseline_path is not None else []
    baseline_rel = (
        baseline_path.relative_to(root).as_posix()
        if baseline_path is not None and baseline_path.is_relative_to(root)
        else str(baseline_path or DEFAULT_BASELINE)
    )
    return lint_sources(
        collect_sources(root),
        rules=rules,
        baseline=baseline,
        baseline_path=baseline_rel,
    )


def find_repo_root(start: Path | None = None) -> Path:
    """Best-effort repo root for the installed-package CLI path.

    From a source tree, ``src/repro/analysis/lint.py`` sits three levels
    below the root; from site-packages that walk lands nowhere useful, so
    fall back to the current directory (what CI and humans run from).
    """
    candidates = []
    here = Path(__file__).resolve()
    if len(here.parents) >= 4:
        candidates.append(here.parents[3])
    if start is not None:
        candidates.append(Path(start))
    candidates.append(Path.cwd())
    for candidate in candidates:
        if (candidate / DEFAULT_TARGET).is_dir():
            return candidate
    return Path.cwd()


# --------------------------------------------------------------------------
# Reports
# --------------------------------------------------------------------------


def render_human(result: LintResult) -> str:
    if result.ok:
        return (
            f"contracts lint: OK ({result.n_files} files, "
            f"{len(result.rules)} rules"
            + (f", {len(result.suppressed)} suppressed" if result.suppressed else "")
            + ")"
        )
    lines = [f"contracts lint: {len(result.findings)} problem(s)"]
    lines.extend(f"  - {finding.format()}" for finding in result.findings)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    return json.dumps(
        {
            "ok": result.ok,
            "n_files": result.n_files,
            "rules": list(result.rules),
            "findings": [finding.to_json() for finding in result.findings],
            "suppressed": [finding.to_json() for finding in result.suppressed],
        },
        indent=2,
    )
