"""DET005 — wall-clock and environment isolation.

Kernel/reducer modules must be pure functions of (seed, config, data):
a ``time.time()`` timestamp folded into a record, a ``datetime.now()``
default, or an ``os.environ`` read makes two runs of the same seed
differ.  Timing belongs to the benchmark registry and the CLI layer;
environment belongs to process setup.  Scope:
:data:`~repro.analysis.rules.common.KERNEL_MODULES`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.lint import Finding, Rule, SourceFile
from repro.analysis.rules.common import KERNEL_MODULES, import_aliases, resolve

RULE_ID = "DET005"

_CLOCK_ATTRS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

_NOW_METHODS = {"now", "utcnow", "today"}

_ENV_ATTRS = {"os.environ"}
_ENV_CALLS = {"os.getenv"}

_BANNED_FROM_IMPORTS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("os", "environ"),
    ("os", "getenv"),
}


def _check_file(source: SourceFile) -> Iterator[Finding]:
    tree = source.tree
    if tree is None:
        return
    aliases = import_aliases(tree)

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            for alias in node.names:
                if (node.module, alias.name) in _BANNED_FROM_IMPORTS:
                    yield Finding(
                        source.path,
                        node.lineno,
                        RULE_ID,
                        f"'from {node.module} import {alias.name}' in a "
                        "kernel module; clocks and environment reads "
                        "belong to benchmarks and the CLI layer",
                    )
        elif isinstance(node, ast.Attribute):
            dotted = resolve(node, aliases)
            if dotted in _CLOCK_ATTRS:
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    f"{dotted}() read in a kernel module; kernels must be "
                    "pure functions of (seed, config, data)",
                )
            elif dotted in _ENV_ATTRS:
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    "os.environ read in a kernel module; resolve "
                    "environment at process setup, pass values in",
                )
        elif isinstance(node, ast.Call):
            dotted = resolve(node.func, aliases)
            if dotted in _ENV_CALLS:
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    "os.getenv read in a kernel module; resolve "
                    "environment at process setup, pass values in",
                )
            elif (
                dotted is not None
                and dotted.split(".")[-1] in _NOW_METHODS
                and any(
                    part in {"datetime", "date"} for part in dotted.split(".")[:-1]
                )
            ):
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    f"{dotted}() read in a kernel module; kernels must be "
                    "pure functions of (seed, config, data)",
                )


def check(files: Mapping[str, SourceFile]) -> Iterable[Finding]:
    for path in KERNEL_MODULES:
        if path in files:
            yield from _check_file(files[path])


RULE = Rule(id=RULE_ID, title="wall-clock/env isolation", check=check)
