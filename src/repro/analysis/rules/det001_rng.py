"""DET001 — RNG discipline.

All randomness in ``src/repro`` must flow through ``repro.rng`` named
streams: ``split_seed(seed, *names)`` feeding a seeded
``np.random.default_rng``.  Anything that draws entropy from process
state instead — the stdlib ``random`` module, the legacy numpy global
RNG (``np.random.shuffle`` et al.), ``os.urandom``, or a *zero-argument*
``default_rng()`` — produces runs that cannot be replayed and is an
error.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.lint import Finding, Rule, SourceFile
from repro.analysis.rules.common import import_aliases, resolve

RULE_ID = "DET001"

#: The seeded-constructor surface of ``numpy.random`` that named streams
#: legitimately use; everything else on the module is the legacy global
#: RNG.
_NUMPY_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
}


def _check_file(source: SourceFile) -> Iterator[Finding]:
    tree = source.tree
    if tree is None:
        return
    aliases = import_aliases(tree)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield Finding(
                        source.path,
                        node.lineno,
                        RULE_ID,
                        "stdlib 'random' is nondeterministic process state; "
                        "use repro.rng named streams",
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    "stdlib 'random' is nondeterministic process state; "
                    "use repro.rng named streams",
                )
            elif node.module == "os":
                for alias in node.names:
                    if alias.name == "urandom":
                        yield Finding(
                            source.path,
                            node.lineno,
                            RULE_ID,
                            "os.urandom draws OS entropy; "
                            "use repro.rng named streams",
                        )
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NUMPY_ALLOWED:
                        yield Finding(
                            source.path,
                            node.lineno,
                            RULE_ID,
                            f"legacy numpy global RNG 'numpy.random."
                            f"{alias.name}' shares mutable process state; "
                            "use a seeded default_rng via repro.rng",
                        )
        elif isinstance(node, ast.Attribute):
            dotted = resolve(node, aliases)
            if dotted == "os.urandom":
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    "os.urandom draws OS entropy; use repro.rng named streams",
                )
            elif (
                dotted is not None
                and dotted.startswith("numpy.random.")
                and dotted.split(".")[2] not in _NUMPY_ALLOWED
            ):
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    f"legacy numpy global RNG '{dotted}' shares mutable "
                    "process state; use a seeded default_rng via repro.rng",
                )
        elif isinstance(node, ast.Call):
            dotted = resolve(node.func, aliases)
            if (
                dotted is not None
                and dotted.split(".")[-1] == "default_rng"
                and (dotted.startswith("numpy.random") or dotted == "default_rng")
                and not node.args
                and not node.keywords
            ):
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    "default_rng() without a seed draws OS entropy; "
                    "seed it from repro.rng.split_seed",
                )


def check(files: Mapping[str, SourceFile]) -> Iterable[Finding]:
    for path in sorted(files):
        if not path.startswith("src/repro/"):
            continue
        yield from _check_file(files[path])


RULE = Rule(id=RULE_ID, title="RNG discipline", check=check)
