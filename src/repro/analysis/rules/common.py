"""Shared helpers and scope tables for the DET rules.

Scopes are repo-relative posix paths.  The fixture tests reuse these
constants so a module moving between scopes updates the tests for free.
"""

from __future__ import annotations

import ast
from typing import Iterator

#: Modules that run inside reducers / kernels: the code whose iteration
#: order and clock access decide bitwise parity.  DET002 scopes its
#: set-iteration check here; DET005 scopes wall-clock/env here.
KERNEL_MODULES: tuple[str, ...] = (
    "src/repro/fusion/accu.py",
    "src/repro/fusion/popaccu.py",
    "src/repro/fusion/vote.py",
    "src/repro/fusion/kernels.py",
    "src/repro/fusion/runner.py",
    "src/repro/fusion/shuffle.py",
    "src/repro/extract/kernels.py",
    "src/repro/extract/synthesis.py",
    "src/repro/mapreduce/engine.py",
    "src/repro/mapreduce/executors.py",
    "src/repro/mapreduce/codec.py",
)

#: Modules that define ``*Shard`` payload dataclasses shipped over the
#: pool wire; DET003 audits their field annotations.
PAYLOAD_MODULES: tuple[str, ...] = (
    "src/repro/fusion/shuffle.py",
    "src/repro/extract/pipeline.py",
)

#: The one blessed ``hash()``-free stable-sharding site (it uses crc32,
#: but the function is also the only place a builtin ``hash`` fallback
#: would ever be contemplated).
APPROVED_HASH_SITES: tuple[tuple[str, str], ...] = (
    ("src/repro/mapreduce/executors.py", "shard_for_key"),
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted module/object it refers to.

    Covers ``import numpy as np`` (np -> numpy), ``import os`` (os ->
    os), and ``from datetime import datetime as dt`` (dt ->
    datetime.datetime).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a Name/Attribute chain, alias-resolved.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical_head = aliases.get(head, head)
    return f"{canonical_head}.{rest}" if rest else canonical_head


def walk_scoped(tree: ast.Module) -> Iterator[tuple[ast.AST, str | None]]:
    """Yield ``(node, enclosing_function_name)`` for every node.

    The enclosing name is the nearest FunctionDef/AsyncFunctionDef, or
    None at module/class level.
    """

    def visit(node: ast.AST, func: str | None) -> Iterator[tuple[ast.AST, str | None]]:
        for child in ast.iter_child_nodes(node):
            child_func = func
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_func = child.name
            yield child, child_func
            yield from visit(child, child_func)

    yield tree, None
    yield from visit(tree, None)
