"""DET003 — payload purity.

Shard payloads (the ``*Shard`` dataclasses in
:data:`~repro.analysis.rules.common.PAYLOAD_MODULES`) cross the pool
wire on every round.  The runtime audit (``scan_payload_types``) rejects
numpy buffers and rich domain objects at execution time; this rule is
its static companion — it reads the dataclass *field annotations* so a
smuggled ``np.ndarray`` or ``Claim`` fails review, not a parity test
three PRs later.  Allowed: primitives, ids, containers of the same, and
the two pointer types workers dereference locally — the ~300-byte
``RoundStateHandle`` (shared-memory segments) and the
:class:`~repro.artifacts.ColumnHandle` (memory-mapped claim columns on
disk).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.lint import Finding, Rule, SourceFile
from repro.analysis.rules.common import PAYLOAD_MODULES, dotted_name

RULE_ID = "DET003"

#: Type names a payload annotation may mention.  Note ``Any`` is absent:
#: an ``Any`` field defeats the whole audit.
ALLOWED_TYPE_NAMES = {
    "int",
    "float",
    "str",
    "bool",
    "bytes",
    "complex",
    "None",
    "NoneType",
    "Callable",
    "Optional",
    "Union",
    "tuple",
    "Tuple",
    "list",
    "List",
    "dict",
    "Dict",
    "set",
    "Set",
    "frozenset",
    "FrozenSet",
    "Sequence",
    "Mapping",
    "Iterable",
    "Literal",
    "RoundStateHandle",
    "ColumnHandle",
}


def _bad_names(node: ast.expr) -> Iterator[str]:
    """Yield disallowed type names mentioned in an annotation."""
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return
        if isinstance(node.value, str):
            # String annotation: re-parse and recurse.
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                yield node.value
                return
            yield from _bad_names(parsed.body)
        return
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = dotted_name(node)
        name = dotted.split(".")[-1] if dotted else None
        if name is not None and name not in ALLOWED_TYPE_NAMES:
            yield dotted or name
        return
    if isinstance(node, ast.Subscript):
        yield from _bad_names(node.value)
        yield from _bad_names(node.slice)
        return
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _bad_names(elt)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _bad_names(node.left)
        yield from _bad_names(node.right)
        return
    # Anything else (Ellipsis literals handled above) is opaque; say so.
    yield ast.dump(node)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = dotted_name(target) or ""
        if dotted.split(".")[-1] == "dataclass":
            return True
    return False


def _check_file(source: SourceFile) -> Iterator[Finding]:
    tree = source.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Shard") or not _is_dataclass(node):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            field = (
                stmt.target.id if isinstance(stmt.target, ast.Name) else "<field>"
            )
            for bad in _bad_names(stmt.annotation):
                yield Finding(
                    source.path,
                    stmt.lineno,
                    RULE_ID,
                    f"payload field {node.name}.{field} is annotated with "
                    f"'{bad}', which is not a primitive/id/handle type; "
                    "ship ids + a RoundStateHandle instead",
                )


def check(files: Mapping[str, SourceFile]) -> Iterable[Finding]:
    for path in PAYLOAD_MODULES:
        if path in files:
            yield from _check_file(files[path])


RULE = Rule(id=RULE_ID, title="payload purity", check=check)
