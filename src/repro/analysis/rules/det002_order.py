"""DET002 — hash-order independence.

Python ``set`` iteration order depends on ``PYTHONHASHSEED`` and
insertion history; any reduction that folds over a set without
``sorted()`` can differ between serial and spawned-worker runs.  Inside
kernel/reducer modules (:data:`~repro.analysis.rules.common.KERNEL_MODULES`)
this rule flags loops and comprehensions whose iterable is statically
set-typed and whose body accumulates, and set-typed arguments fed
straight into order-sensitive folds (``sum``, ``list``, ``tuple``,
``str.join``).  Dict iteration is *not* flagged: CPython dicts are
insertion-ordered, and the repo's dicts are built in deterministic
order.

Separately (repo-wide): the builtin ``hash()`` is banned outside the
blessed crc32-sharding site — ``shard_for_key`` in
``mapreduce/executors.py`` — because its value for str/bytes changes per
process under hash randomization.

The type tracking is deliberately shallow and flow-insensitive: a name
is "set-typed" if it is assigned from a set display / ``set()`` /
``frozenset()`` / a set comprehension / set-algebra on set-typed
operands, or annotated ``set[...]``.  ``dict[K, set[V]]`` annotations
additionally mark *subscripts* of that name as set-typed.  Wrapping the
iterable in ``sorted()`` naturally clears the flag (a Call is never
set-typed).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.lint import Finding, Rule, SourceFile
from repro.analysis.rules.common import (
    APPROVED_HASH_SITES,
    KERNEL_MODULES,
    walk_scoped,
)

RULE_ID = "DET002"

#: Builtins whose result is independent of the argument's iteration
#: order; a bare generator over a set feeding these is fine.
ORDER_INSENSITIVE_SINKS = {
    "any",
    "all",
    "min",
    "max",
    "len",
    "set",
    "frozenset",
    "sorted",
}

#: Builtins whose result (value or float rounding) depends on iteration
#: order when fed an unordered iterable directly.
ORDER_SENSITIVE_SINKS = {"sum", "list", "tuple"}

#: Method calls on an accumulator that make a loop body order-sensitive.
#: ``.add`` is excluded: building a *set* inside the loop stays
#: order-free.
_ACCUMULATING_METHODS = {
    "append",
    "extend",
    "insert",
    "update",
    "setdefault",
    "appendleft",
}


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset", "Set", "FrozenSet"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet"}
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    return False


def _dict_of_set_annotation(node: ast.expr) -> bool:
    """``dict[K, set[V]]`` / ``Dict[K, Set[V]]`` — subscripting yields sets."""
    if not isinstance(node, ast.Subscript):
        return False
    base = node.value
    base_name = (
        base.id
        if isinstance(base, ast.Name)
        else base.attr
        if isinstance(base, ast.Attribute)
        else None
    )
    if base_name not in {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict"}:
        return False
    if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
        return _is_set_annotation(node.slice.elts[1])
    return False


class _SetEnv:
    """Per-file flow-insensitive 'which names hold sets' environment."""

    def __init__(self, tree: ast.Module) -> None:
        self.set_names: set[str] = set()
        self.dict_of_set_names: set[str] = set()
        # Two passes so `a = b` picks up names defined later; cheap and
        # order-independent.
        for _ in range(2):
            for node in ast.walk(tree):
                self._learn(node)

    def _learn(self, node: ast.AST) -> None:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                self.set_names.add(node.target.id)
            elif _dict_of_set_annotation(node.annotation):
                self.dict_of_set_names.add(node.target.id)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            if _is_set_annotation(node.annotation):
                self.set_names.add(node.arg)
            elif _dict_of_set_annotation(node.annotation):
                self.dict_of_set_names.add(node.arg)
        elif isinstance(node, ast.Assign):
            if self.is_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.set_names.add(target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if self.is_set(node.value) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
                self.set_names.add(node.target.id)

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            return node.value.id in self.dict_of_set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        return False


def _body_accumulates(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, ast.AugAssign):
            return True
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Subscript) for t in node.targets):
                return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ACCUMULATING_METHODS
        ):
            return True
    return False


def _check_iteration(source: SourceFile) -> Iterator[Finding]:
    tree = source.tree
    if tree is None:
        return
    env = _SetEnv(tree)

    # Generator expressions directly consumed by an order-insensitive
    # builtin are fine; collect those so the walk below skips them.
    blessed_gens: set[ast.GeneratorExp] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ORDER_INSENSITIVE_SINKS
        ):
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    blessed_gens.add(arg)

    for node in ast.walk(tree):
        if isinstance(node, ast.For) and env.is_set(node.iter):
            if _body_accumulates(node):
                yield Finding(
                    source.path,
                    node.lineno,
                    RULE_ID,
                    "for-loop over a set feeds an accumulation; iteration "
                    "order is hash-dependent — wrap the iterable in sorted()",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for gen in node.generators:
                if env.is_set(gen.iter):
                    yield Finding(
                        source.path,
                        node.lineno,
                        RULE_ID,
                        "comprehension over a set builds an ordered result; "
                        "wrap the iterable in sorted()",
                    )
        elif isinstance(node, ast.GeneratorExp) and node not in blessed_gens:
            for gen in node.generators:
                if env.is_set(gen.iter):
                    yield Finding(
                        source.path,
                        node.lineno,
                        RULE_ID,
                        "generator over a set feeds an order-sensitive "
                        "consumer; wrap the iterable in sorted()",
                    )
        elif isinstance(node, ast.Call):
            sink = None
            if isinstance(node.func, ast.Name) and node.func.id in ORDER_SENSITIVE_SINKS:
                sink = node.func.id
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "join":
                sink = "join"
            if sink is not None:
                for arg in node.args:
                    if env.is_set(arg):
                        yield Finding(
                            source.path,
                            node.lineno,
                            RULE_ID,
                            f"set passed directly to {sink}(); the fold order "
                            "is hash-dependent — wrap it in sorted()",
                        )


def _check_hash(source: SourceFile) -> Iterator[Finding]:
    tree = source.tree
    if tree is None:
        return
    approved = {
        func for path, func in APPROVED_HASH_SITES if path == source.path
    }
    for node, func_name in walk_scoped(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            if func_name in approved:
                continue
            yield Finding(
                source.path,
                node.lineno,
                RULE_ID,
                "builtin hash() is per-process under hash randomization; "
                "use zlib.crc32 via shard_for_key for stable sharding",
            )


def check(files: Mapping[str, SourceFile]) -> Iterable[Finding]:
    for path in sorted(files):
        if not path.startswith("src/repro/"):
            continue
        if path in KERNEL_MODULES:
            yield from _check_iteration(files[path])
        yield from _check_hash(files[path])


RULE = Rule(id=RULE_ID, title="hash-order independence", check=check)
