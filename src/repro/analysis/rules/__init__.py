"""The DET rule registry.

Each ``det00x_*`` module exports one :class:`repro.analysis.lint.Rule`
as ``RULE``; :data:`ALL_RULES` is the ordered registry the engine runs
by default.  Adding a rule = adding a module here + a good/bad fixture
pair in ``tests/analysis/test_rules.py``.
"""

from repro.analysis.rules.det001_rng import RULE as DET001
from repro.analysis.rules.det002_order import RULE as DET002
from repro.analysis.rules.det003_payload import RULE as DET003
from repro.analysis.rules.det004_shm import RULE as DET004
from repro.analysis.rules.det005_clock import RULE as DET005
from repro.analysis.rules.det006_contracts import RULE as DET006

ALL_RULES = (DET001, DET002, DET003, DET004, DET005, DET006)

__all__ = [
    "ALL_RULES",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "DET006",
]
