"""DET006 — contract declaration.

Every backend name exposed through ``fusion.BACKENDS`` and
``endtoend.PIPELINE_BACKENDS`` must resolve under the declared numeric
contracts: a key in ``_BACKEND_PARITY`` (what ``parity_of`` consults)
and the presence of ``parity_of`` / ``sampling_contract_of``
themselves.  A backend added without a parity declaration ships with an
*undefined* correctness contract; a parity key with no backend is a
stale declaration.  Pipeline backends may rename on the way to fusion
(``endtoend._FUSION_BACKEND`` — e.g. ``batched`` runs its fusion stage
as ``serial``); the rename table must be a literal dict and every
pipeline backend must resolve through it to a declared fusion backend.
This is the one cross-module rule: it correlates ``fusion/base.py``
with ``endtoend.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.lint import Finding, Rule, SourceFile

RULE_ID = "DET006"

BASE_PATH = "src/repro/fusion/base.py"
ENDTOEND_PATH = "src/repro/endtoend.py"

_REQUIRED_FUNCS = ("parity_of", "sampling_contract_of")


def _module_assign(tree: ast.Module, name: str) -> ast.expr | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def _str_tuple(node: ast.expr | None) -> tuple[str, ...] | None:
    """Literal tuple/list of strings, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            values.append(elt.value)
        else:
            return None
    return tuple(values)


def _dict_str_keys(node: ast.expr | None) -> tuple[str, ...] | None:
    """Literal-string keys of a dict display (values may be Name refs
    to module constants — only the key set matters here)."""
    if not isinstance(node, ast.Dict):
        return None
    keys: list[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        else:
            return None
    return tuple(keys)


def _dict_str_items(node: ast.expr | None) -> dict[str, str] | None:
    """Literal ``str -> str`` dict display, else None."""
    if not isinstance(node, ast.Dict):
        return None
    items: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            items[key.value] = value.value
        else:
            return None
    return items


def _has_func(tree: ast.Module, name: str) -> bool:
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name == name
        for node in tree.body
    )


def check(files: Mapping[str, SourceFile]) -> Iterable[Finding]:
    return list(_check(files))


def _check(files: Mapping[str, SourceFile]) -> Iterator[Finding]:
    base = files.get(BASE_PATH)
    if base is None or base.tree is None:
        # Fixture runs that do not include base.py have nothing to
        # declare; the repo run always includes it.
        return

    backends_node = _module_assign(base.tree, "BACKENDS")
    backends = _str_tuple(backends_node)
    if backends is None:
        yield Finding(
            BASE_PATH,
            backends_node.lineno if backends_node is not None else 1,
            RULE_ID,
            "BACKENDS must be a module-level literal tuple of backend "
            "names so the contract surface is statically auditable",
        )
        return

    parity_node = _module_assign(base.tree, "_BACKEND_PARITY")
    parity_keys = _dict_str_keys(parity_node)
    if parity_keys is None:
        yield Finding(
            BASE_PATH,
            parity_node.lineno if parity_node is not None else 1,
            RULE_ID,
            "_BACKEND_PARITY must be a module-level dict display with "
            "literal string keys (one per backend)",
        )
        return

    for func in _REQUIRED_FUNCS:
        if not _has_func(base.tree, func):
            yield Finding(
                BASE_PATH,
                1,
                RULE_ID,
                f"required contract resolver {func}() is missing from "
                "fusion/base.py",
            )

    for backend in backends:
        if backend not in parity_keys:
            yield Finding(
                BASE_PATH,
                backends_node.lineno,
                RULE_ID,
                f"backend '{backend}' is in BACKENDS but has no "
                "_BACKEND_PARITY entry; parity_of() would raise on it",
            )
    for key in parity_keys:
        if key not in backends:
            yield Finding(
                BASE_PATH,
                parity_node.lineno,
                RULE_ID,
                f"_BACKEND_PARITY declares '{key}' which is not in "
                "BACKENDS; stale contract declaration",
            )

    endtoend = files.get(ENDTOEND_PATH)
    if endtoend is None or endtoend.tree is None:
        return
    pipeline_node = _module_assign(endtoend.tree, "PIPELINE_BACKENDS")
    if pipeline_node is None:
        return
    pipeline = _str_tuple(pipeline_node)
    if pipeline is None:
        yield Finding(
            ENDTOEND_PATH,
            pipeline_node.lineno,
            RULE_ID,
            "PIPELINE_BACKENDS must be a literal tuple of backend names",
        )
        return
    # Pipeline backends may rename before reaching fusion (``batched``
    # runs its fusion stage as ``serial``); the rename table must itself
    # be a statically auditable literal.
    mapping_node = _module_assign(endtoend.tree, "_FUSION_BACKEND")
    mapping: dict[str, str] = {}
    if mapping_node is not None:
        parsed = _dict_str_items(mapping_node)
        if parsed is None:
            yield Finding(
                ENDTOEND_PATH,
                mapping_node.lineno,
                RULE_ID,
                "_FUSION_BACKEND must be a literal str -> str dict "
                "display so backend resolution is statically auditable",
            )
            return
        mapping = parsed
        for key in mapping:
            if key not in pipeline:
                yield Finding(
                    ENDTOEND_PATH,
                    mapping_node.lineno,
                    RULE_ID,
                    f"_FUSION_BACKEND maps '{key}' which is not in "
                    "PIPELINE_BACKENDS; stale contract declaration",
                )

    for backend in pipeline:
        resolved = mapping.get(backend, backend)
        if resolved not in backends or resolved not in parity_keys:
            yield Finding(
                ENDTOEND_PATH,
                pipeline_node.lineno,
                RULE_ID,
                f"pipeline backend '{backend}' (fusion backend "
                f"'{resolved}') does not resolve under fusion's "
                "BACKENDS/_BACKEND_PARITY contract declarations",
            )


RULE = Rule(id=RULE_ID, title="contract declaration", check=check)
