"""DET004 — shared-memory and worker-state pairing.

Two leak classes break long-lived runs and cross-test isolation:

- a ``SharedMemory(create=True)`` segment with no ``.unlink()`` anywhere
  in the module leaks ``/dev/shm`` space until reboot;
- an ``install_state(key, ...)`` / ``install_round_state(key, ...)``
  with no matching ``uninstall_state(key)`` /
  ``uninstall_round_state(key)`` in the same module leaves stale state
  resident in worker pools, silently re-shipped on the next pool
  restart.

The pairing check is module-local and key-aware: the uninstall for
``FUSION_ROUND_KEY`` must live next to its install so the lifecycle is
auditable in one screenful.  Keys are compared after normalising the
first argument (string constant, Name, or ``module.CONST`` attribute).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Mapping

from repro.analysis.lint import Finding, Rule, SourceFile

RULE_ID = "DET004"

_CHANNELS = {
    "install_state": "uninstall_state",
    "install_round_state": "uninstall_round_state",
}


def _key_token(node: ast.expr) -> str | None:
    """Normalise a state-key argument for matching install vs uninstall."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _check_file(source: SourceFile) -> Iterator[Finding]:
    tree = source.tree
    if tree is None:
        return

    creates: list[ast.Call] = []
    has_unlink = False
    installs: list[tuple[str, str | None, ast.Call]] = []
    uninstalled: set[tuple[str, str | None]] = set()

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name is None:
            continue
        if name == "SharedMemory":
            if any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                creates.append(node)
        elif name == "unlink":
            has_unlink = True
        elif name in _CHANNELS:
            key = _key_token(node.args[0]) if node.args else None
            installs.append((name, key, node))
        elif name in _CHANNELS.values():
            key = _key_token(node.args[0]) if node.args else None
            uninstalled.add((name, key))

    for call in creates:
        if not has_unlink:
            yield Finding(
                source.path,
                call.lineno,
                RULE_ID,
                "SharedMemory(create=True) with no .unlink() in this "
                "module; the segment leaks /dev/shm until reboot",
            )

    for install_name, key, call in installs:
        partner = _CHANNELS[install_name]
        if (partner, key) not in uninstalled:
            key_desc = key if key is not None else "<dynamic key>"
            yield Finding(
                source.path,
                call.lineno,
                RULE_ID,
                f"{install_name}({key_desc!r}, ...) has no matching "
                f"{partner} in this module; pool-resident state leaks "
                "across stages",
            )


def check(files: Mapping[str, SourceFile]) -> Iterable[Finding]:
    for path in sorted(files):
        if not path.startswith("src/repro/"):
            continue
        yield from _check_file(files[path])


RULE = Rule(id=RULE_ID, title="shm/worker-state pairing", check=check)
