"""Extractor base class and behaviour profile.

Every concrete extractor (text, DOM, table, annotation) is parameterised by
an :class:`ExtractorProfile` — the knob set that makes TXT1 differ from
TXT4 without duplicating parser code.  The paper's Table 2 spread (accuracy
0.09-0.78, volumes over 3 orders of magnitude) is reproduced by profile
values in :mod:`repro.datasets.profiles`, not by separate implementations.

Determinism: whether an extractor processes a page, and every noisy choice
it makes on that page, derive from ``split_seed(seed, extractor, url)`` —
so corpus-level extraction is reproducible and insensitive to page order.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.extract.confidence import ConfidenceModel, make_confidence_model
from repro.extract.linkage import EntityLinker
from repro.extract.records import ExtractionDebug, ExtractionRecord
from repro.kb.schema import Predicate, Schema, ValueKind
from repro.kb.triples import Triple
from repro.kb.values import EntityRef, StringValue, Value
from repro.rng import split_seed, stream_seed
from repro.world.content import Mention
from repro.world.literals import parse_literal, parse_literal_naive
from repro.world.webgen import WebCorpus, WebPage

__all__ = ["ExtractorProfile", "Extractor"]

_KIND_OF_VALUEKIND = {
    ValueKind.ENTITY: "entity",
    ValueKind.STRING: "string",
    ValueKind.NUMBER: "number",
    ValueKind.DATE: "date",
}


@dataclass(frozen=True)
class ExtractorProfile:
    """Behavioural knobs for one extractor.

    Attributes
    ----------
    name / content_types / site_categories / page_coverage:
        Identity, which content it parses, which site categories it runs on
        (None = all), and the fraction of eligible pages it processes —
        jointly controlling extraction volume (Table 2's #Triples spread).
    linker / use_type_hints:
        Which shared linkage component to use, and whether the extractor
        passes the predicate's object type as a disambiguation hint.
    kind_checking:
        Whether it skips mentions whose value kind contradicts the
        predicate (a precision feature).
    handles_merged:
        Whether it understands merged structures (DOM "Born" rows, merged
        sentences); if not, it flattens them — triple-identification errors.
    naive_dates:
        Whether it parses dates with the naive month-first rule.
    string_fallback:
        Whether an unlinkable entity mention is emitted as a raw string
        (the paper's 80M raw-string objects) instead of skipped.
    pattern_coverage / wrong_predicate_rate / reliability_mean /
    reliability_concentration:
        Pattern-library shape (text and patterned DOM extractors): what
        fraction of phrasings it has patterns for, how often a pattern maps
        to a wrong (confusable) predicate, and the Beta distribution of
        pattern reliability.
    mangle_rate:
        Extra mechanical span corruption (truncating a mention before
        linking), scaled by (1 - pattern reliability).
    misgrab_rate:
        Probability (scaled by 1 - reliability) of associating the *wrong
        mention* on the element with the predicate — the bread-and-butter
        triple-identification error ("taking part of the album name as the
        artist for the album"): the data item stays valid, the object comes
        from a different fact, so LCWA labels the result false.
    confidence:
        Confidence-model name (see :mod:`repro.extract.confidence`).
    global_label_map:
        DOM: resolve row labels without knowing the subject's type
        (cross-type label collisions become predicate-linkage errors).
    value_kinds:
        Restrict extraction to these value kinds (DOM3 links entities only,
        DOM4 scrapes literals only); None = all kinds.
    detect_subject_col / type_aware_headers:
        Table extractors: detect the subject column by linkability instead
        of assuming column 0, and resolve ambiguous headers using the
        rows' entity type.
    """

    name: str
    content_types: tuple[str, ...]
    site_categories: tuple[str, ...] | None = None
    page_coverage: float = 1.0
    linker: str = "EL-A"
    use_type_hints: bool = False
    kind_checking: bool = False
    handles_merged: bool = False
    naive_dates: bool = False
    string_fallback: bool = True
    pattern_coverage: float = 1.0
    wrong_predicate_rate: float = 0.0
    reliability_mean: float = 0.8
    reliability_concentration: float = 10.0
    mangle_rate: float = 0.0
    misgrab_rate: float = 0.0
    confidence: str = "calibrated"
    global_label_map: bool = False
    value_kinds: tuple[str, ...] | None = None
    detect_subject_col: bool = False
    type_aware_headers: bool = False

    def __post_init__(self) -> None:
        if not self.content_types:
            raise ConfigError(f"extractor {self.name} handles no content types")
        unknown = set(self.content_types) - {"TXT", "DOM", "TBL", "ANO"}
        if unknown:
            raise ConfigError(f"extractor {self.name}: unknown content {unknown}")
        # Derived, not a field: the coverage checks test membership per
        # page, so the tuple is hoisted to a frozenset once here instead
        # of per coverage_mask() call.  (Kept out of the dataclass fields
        # so repr/eq — and the scenario cache key built from them — are
        # untouched.)
        object.__setattr__(
            self,
            "category_set",
            frozenset(self.site_categories)
            if self.site_categories is not None
            else None,
        )
        for field_name in (
            "page_coverage",
            "pattern_coverage",
            "wrong_predicate_rate",
            "reliability_mean",
            "mangle_rate",
            "misgrab_rate",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"extractor {self.name}: {field_name} must be in [0,1], got {value}"
                )


class Extractor(abc.ABC):
    """Base class: page eligibility, linking, parsing, record emission."""

    def __init__(
        self,
        profile: ExtractorProfile,
        schema: Schema,
        linker: EntityLinker,
        seed: int,
    ) -> None:
        self.profile = profile
        self.schema = schema
        self.linker = linker
        self.seed = seed
        self.confidence_model: ConfidenceModel | None = make_confidence_model(
            profile.confidence
        )
        # Memo for reliability_for(): pattern/label keys repeat across
        # pages and the draw is pure in (seed, name, key).
        self._reliability_cache: dict[str, float] = {}
        # Last (covered urls, PageRNGBank) pair of extract_pages_batch:
        # the bank is a pure function of (seed, name, urls), so repeat
        # runs over the same covered set reuse the seeded streams.
        self._rng_bank_cache: tuple[tuple[str, ...], object] | None = None

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    # Page eligibility
    # ------------------------------------------------------------------
    def covers(self, page: WebPage) -> bool:
        """Deterministically decide whether this extractor processes ``page``."""
        profile = self.profile
        if profile.category_set is not None and page.category not in profile.category_set:
            return False
        if profile.page_coverage >= 1.0:
            return True
        draw = split_seed(self.seed, "coverage", self.name, page.url) % 1_000_000
        return draw / 1_000_000.0 < profile.page_coverage

    def coverage_mask(self, pages: Sequence[WebPage]) -> np.ndarray:
        """Batched :meth:`covers` over ``pages``: one pass per extractor.

        Bit-identical to calling :meth:`covers` per page, but the seed
        derivation ``split_seed(seed, "coverage", name, url)`` is factored
        into a shared per-extractor prefix so each page costs one hash
        instead of three — the coverage draws dominate pipeline dispatch
        on large corpora (12 extractors × every page).
        """
        profile = self.profile
        n = len(pages)
        if n == 0:
            return np.zeros(0, dtype=bool)
        mask = np.ones(n, dtype=bool)
        if profile.category_set is not None:
            categories = profile.category_set
            mask &= np.fromiter(
                (page.category in categories for page in pages), bool, count=n
            )
        if profile.page_coverage < 1.0:
            prefix = split_seed(self.seed, "coverage", self.name)
            draws = np.fromiter(
                (stream_seed(prefix, page.url) % 1_000_000 for page in pages),
                np.float64,
                count=n,
            )
            mask &= (draws / 1_000_000.0) < profile.page_coverage
        return mask

    def page_rng(self, url: str) -> np.random.Generator:
        return np.random.default_rng(split_seed(self.seed, "extract", self.name, url))

    # ------------------------------------------------------------------
    # Linking and parsing
    # ------------------------------------------------------------------
    def link_entity(self, mention: Mention, predicate: Predicate | None) -> str | None:
        """Resolve an entity mention, honouring the type-hint knob."""
        hint = None
        if self.profile.use_type_hints and predicate is not None:
            hint = predicate.object_type_id
        return self.linker.resolve(mention.surface, type_hint=hint)

    def link_subject(self, mention: Mention, type_hint: str | None = None) -> str | None:
        hint = type_hint if self.profile.use_type_hints else None
        return self.linker.resolve(mention.surface, type_hint=hint)

    def parse_value(self, surface: str, kind: str) -> Value | None:
        if self.profile.naive_dates:
            return parse_literal_naive(surface, kind)
        return parse_literal(surface, kind)

    # ------------------------------------------------------------------
    # Record emission
    # ------------------------------------------------------------------
    def emit(
        self,
        page: WebPage,
        subject_id: str,
        predicate: Predicate,
        mention: Mention,
        rng: np.random.Generator,
        pattern: str | None,
        reliability: float,
        structure_penalty: float = 1.0,
        slot_mismatch: bool = False,
        alternates: tuple[Mention, ...] = (),
    ) -> ExtractionRecord | None:
        """Turn one (subject, predicate, object-mention) into a record.

        Returns None when the extractor's checks reject the mention.
        Applies misgrab (wrong-mention association against ``alternates``),
        kind checking, entity linkage (with string fallback), literal
        parsing, span mangling, and the confidence model.
        """
        profile = self.profile
        if (
            alternates
            and profile.misgrab_rate > 0
            and rng.random() < profile.misgrab_rate * (1.0 - reliability)
        ):
            # Exclude alternates by surface and kind, not object identity:
            # any same-surface same-kind alternate (a duplicate rendering of
            # this fact, or a different fact that happens to share the
            # surface) reproduces the correct triple when "misgrabbed", so
            # flagging it as a slot mismatch would mark a correct
            # extraction as a triple-identification error.
            pool = [
                m
                for m in alternates
                if m.kind != "empty"
                and (m.surface != mention.surface or m.kind != mention.kind)
            ]
            if pool:
                mention = pool[int(rng.integers(len(pool)))]
                slot_mismatch = True
                structure_penalty *= 0.8
        if mention.kind == "empty":
            return None
        if profile.value_kinds is not None and mention.kind not in profile.value_kinds:
            return None
        expected_kind = _KIND_OF_VALUEKIND[predicate.value_kind]
        if profile.kind_checking and mention.kind != expected_kind:
            # One exception: an entity mention can still satisfy a
            # *string*-valued predicate through the string fallback — the
            # raw surface is a well-kinded string object (the paper's
            # raw-string objects).  Everything else fails the kind check.
            if not (
                mention.kind == "entity"
                and expected_kind == "string"
                and profile.string_fallback
            ):
                return None

        span_corrupted = False
        surface = mention.surface
        if (
            profile.mangle_rate > 0
            and rng.random() < profile.mangle_rate * (1.0 - reliability)
            and " " in surface
        ):
            # Span error: keep only the last token ("Mapother IV" style).
            surface = surface.rsplit(" ", 1)[-1]
            span_corrupted = True

        ambiguity = 1
        value: Value | None
        if mention.kind == "entity" and profile.kind_checking and expected_kind == "string":
            # Kind-checked string predicate (the exception above): emit the
            # raw surface without linking — an EntityRef object would
            # contradict the extractor's own kind check.
            value = StringValue(surface)
        elif mention.kind == "entity":
            ambiguity = max(1, self.linker.ambiguity(surface))
            linked = self.linker.resolve(
                surface,
                type_hint=(
                    predicate.object_type_id if profile.use_type_hints else None
                ),
            )
            if linked is not None:
                value = EntityRef(linked)
            elif profile.string_fallback and not profile.kind_checking:
                # A kind checker never downgrades an *entity*-valued
                # predicate's object to a raw string.
                value = StringValue(surface)
            else:
                return None
        else:
            value = self.parse_value(surface, mention.kind)
            if value is None:
                return None

        # math.sqrt over np.sqrt: IEEE-identical on scalars and ~10x
        # cheaper than routing one float through a ufunc.
        signal = (
            reliability
            * structure_penalty
            * (1.0 / math.sqrt(ambiguity))
        )
        confidence = None
        if self.confidence_model is not None:
            confidence = self.confidence_model.transform(float(signal), rng)

        return ExtractionRecord(
            triple=Triple(subject_id, predicate.pid, value),
            extractor=self.name,
            url=page.url,
            site=page.site,
            content_type=self.record_content_type,
            pattern=pattern,
            confidence=confidence,
            debug=ExtractionDebug(
                asserted_index=mention.fact_ref,
                span_corrupted=span_corrupted,
                slot_mismatch=slot_mismatch,
            ),
        )

    # Subclasses set this to the content type their records carry.
    record_content_type: str = "TXT"

    # ------------------------------------------------------------------
    # Extraction API
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def extract_page(self, page: WebPage) -> list[ExtractionRecord]:
        """All records this extractor produces from ``page``."""

    #: Family synthesis kernel: ``_synthesize_page(page, emit)`` returns
    #: the page's records through a prebound batch emitter (see
    #: :func:`repro.extract.synthesis.make_emitter`).  ``None`` means the
    #: family has no kernel and :meth:`extract_pages_batch` falls back to
    #: scalar :meth:`extract_page` per page — still bit-identical.
    _synthesize_page = None

    @property
    def has_synthesis_kernel(self) -> bool:
        """Whether this extractor ships a batched synthesis kernel."""
        return type(self)._synthesize_page is not None

    def extract_pages_batch(
        self,
        pages: Sequence[WebPage],
        mask: np.ndarray | None = None,
        caches=None,
    ) -> list[list[ExtractionRecord]]:
        """Batched :meth:`extract_page` over ``pages``: one list per page.

        Bit-identical to ``[extract_page(page) if covered else [] for
        page]`` — the scalar method stays the parity reference, exactly
        like ``classify_record`` vs ``classify_batch``.  The batched path
        derives one seed per covered page via a shared-prefix seed array
        (the ``(seed, "extract", name, url)`` keying of :meth:`page_rng`),
        provisions the per-page generators through one vectorised
        :class:`~repro.extract.synthesis.PageRNGBank`, and replays each
        page's draws through the family kernel; uncovered pages get an
        empty list without consuming any seed.
        """
        # Deferred import: synthesis imports this module for the emit
        # reference at closure-build time.
        from repro.extract.synthesis import (
            PageRNGBank,
            SynthesisCaches,
            _gc_paused,
            make_emitter,
            seed_array,
        )

        if mask is None:
            mask = self.coverage_mask(pages)
        per_page: list[list[ExtractionRecord]] = [[] for _ in pages]
        covered = np.flatnonzero(mask).tolist()
        if not covered:
            return per_page
        if type(self)._synthesize_page is None:
            extract_page = self.extract_page
            for index in covered:
                per_page[index] = extract_page(pages[index])
            return per_page
        if caches is None:
            caches = SynthesisCaches()
        urls = tuple(pages[index].url for index in covered)
        cached_bank = self._rng_bank_cache
        if cached_bank is not None and cached_bank[0] == urls:
            bank = cached_bank[1]
        else:
            bank = PageRNGBank(seed_array(self.seed, ("extract", self.name), urls))
            self._rng_bank_cache = (urls, bank)
        emit = make_emitter(self, bank.generator, caches)
        synthesize_page = self._synthesize_page
        reset = bank.reset
        with _gc_paused():
            for slot, index in enumerate(covered):
                reset(slot)
                per_page[index] = synthesize_page(pages[index], emit)
        return per_page

    def extract_corpus(self, corpus: WebCorpus) -> list[ExtractionRecord]:
        """Classified extraction over every covered page of ``corpus``.

        Records pass through the same injected-error classification as
        :meth:`ExtractionPipeline.run <repro.extract.pipeline.ExtractionPipeline.run>`,
        and synthesis runs through the same batching entry point
        (:meth:`extract_pages_batch`) the pipeline's batched backends
        use, so single-extractor runs hit the same kernel path as full
        pipeline runs — bit-identical to the scalar per-page loop either
        way.
        """
        # Deferred import: pipeline/kernels import this module for the
        # base class and the record types.
        from repro.extract.kernels import classify_batch

        per_page = self.extract_pages_batch(corpus.pages)
        batches = [
            (page, page_records)
            for page, page_records in zip(corpus.pages, per_page)
            if page_records
        ]
        classify_batch(batches)
        return [record for _page, records in batches for record in records]

    def reliability_for(self, key: str) -> float:
        """Deterministic per-(extractor, key) reliability draw from the
        profile's Beta distribution; ``key`` is a pattern/label identity.

        Memoized per extractor: the draw is a pure function of
        ``(seed, name, key)`` and the same pattern/label keys recur for
        every page, so caching is bit-identical — it skips re-seeding a
        fresh ``Generator`` per call, one of the record-synthesis
        hot spots.
        """
        cached = self._reliability_cache.get(key)
        if cached is not None:
            return cached
        mean = self.profile.reliability_mean
        conc = self.profile.reliability_concentration
        alpha = max(mean * conc, 1e-3)
        beta = max((1.0 - mean) * conc, 1e-3)
        rng = np.random.default_rng(split_seed(self.seed, "rel", self.name, key))
        value = float(rng.beta(alpha, beta))
        self._reliability_cache[key] = value
        return value
