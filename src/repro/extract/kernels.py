"""Batched extraction-error classification over record columns.

The scalar per-record classifier
(:func:`repro.extract.pipeline.classify_record`) is the reference
implementation; this module recomputes the same five-way branch —
fabricated mention / span corruption / exact match / slot mismatch /
predicate vs entity linkage — for *every* record of a shard in a handful
of array operations, the same reference-plus-kernel pattern as
:mod:`repro.fusion.kernels`.

Column layout: records are flattened corpus-major across their pages.
Each record only ever compares against *one* assertion (its page-local
``asserted_index``), so the comparison stage is elementwise, not a join:
one pass pairs every record with its assertion and fills four boolean
columns (assertion present, triple equality, predicate equality, source
error) using the exact same ``==`` the scalar reference tests.  The
five-way branch, the changed-channel detection, and the write-back
selection then run vectorized over those columns.  Every comparison is
an exact equality/bool operation, which makes the kernel's parity
contract **bitwise**, not a float tolerance: the annotated records equal
the scalar reference's output record-for-record.

Ownership: the kernel annotates records **in place** (writing
``error_kind`` / ``source_error`` into each record's debug channel), so
callers must own the records exclusively — which the extraction pipeline
does, classification runs on records synthesized moments earlier and not
yet visible anywhere else.  Re-running the kernel (or the scalar
reference) over already-annotated records is a no-op: both recompute the
same classification and leave correct channels untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ExtractionError
from repro.extract.records import ErrorKind, ExtractionRecord

# Record synthesis has the same reference-plus-kernel structure as
# classification; the synthesis kernels live in their own module
# (:mod:`repro.extract.synthesis`) and are re-exported here so callers
# find both extraction kernels behind one name.
from repro.extract.synthesis import SynthesisCaches, synthesize_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.world.webgen import WebPage

__all__ = ["SynthesisCaches", "classify_batch", "synthesize_batch"]

#: The classification outcomes as integer codes, in branch order: the
#: scalar reference's five-way branch collapses to one nested
#: ``np.where`` over these.
_KIND_OF_CODE: tuple[ErrorKind | None, ...] = (
    None,
    ErrorKind.TRIPLE_IDENTIFICATION,
    ErrorKind.PREDICATE_LINKAGE,
    ErrorKind.ENTITY_LINKAGE,
)
_CODE_OF_KIND = {kind: code for code, kind in enumerate(_KIND_OF_CODE)}


def classify_batch(
    batches: Sequence[tuple["WebPage", list[ExtractionRecord]]],
) -> int:
    """Classify every record of ``batches`` in one kernel invocation.

    ``batches`` pairs each page with the records extracted from it (the
    per-page lists a shard produces).  Annotates the records' debug
    channels in place — see the module docstring for the ownership
    contract — and returns the number of records whose channel changed.
    Bit-identical to applying
    :func:`~repro.extract.pipeline.classify_record` per record.
    """
    records: list[ExtractionRecord] = []
    for _page, page_records in batches:
        records.extend(page_records)
    n = len(records)
    if n == 0:
        return 0

    debugs = [record.debug for record in records]
    if any(debug is None for debug in debugs):
        offender = records[debugs.index(None)]
        raise ExtractionError(
            f"record from {offender.extractor} lacks a debug channel; "
            "was it stripped before classification?"
        )

    # The pairing pass: each record against its one claimed assertion.
    # Four boolean columns come out of a single corpus-major sweep; the
    # equality tested here is literally the scalar reference's
    # ``record.triple == asserted.triple``.
    has_assertion = np.empty(n, dtype=bool)
    triple_match = np.empty(n, dtype=bool)
    predicate_match = np.empty(n, dtype=bool)
    a_source_error = np.empty(n, dtype=bool)
    index = 0
    for page, page_records in batches:
        assertions = page.assertions
        for record in page_records:
            asserted_index = record.debug.asserted_index
            if asserted_index is None:
                has_assertion[index] = False
                triple_match[index] = False
                predicate_match[index] = False
                a_source_error[index] = False
            else:
                assertion = assertions[asserted_index]
                asserted_triple = assertion.triple
                record_triple = record.triple
                has_assertion[index] = True
                triple_match[index] = record_triple == asserted_triple
                predicate_match[index] = (
                    record_triple.predicate == asserted_triple.predicate
                )
                a_source_error[index] = assertion.source_error
            index += 1

    span_corrupted = np.fromiter(
        (debug.span_corrupted for debug in debugs), bool, count=n
    )
    slot_mismatch = np.fromiter(
        (debug.slot_mismatch for debug in debugs), bool, count=n
    )

    # The five-way branch, in the reference's order: fabricated or
    # span-corrupted or (mismatched slot that is not an exact match) →
    # triple identification; exact match → no extraction error; wrong
    # predicate → predicate linkage; else → entity linkage.
    codes = np.where(
        ~has_assertion | span_corrupted | (~triple_match & slot_mismatch),
        1,
        np.where(triple_match, 0, np.where(~predicate_match, 2, 3)),
    )
    source_error = (codes == 0) & a_source_error

    current_codes = np.fromiter(
        (_CODE_OF_KIND[debug.error_kind] for debug in debugs), np.int64, count=n
    )
    current_source_error = np.fromiter(
        (debug.source_error for debug in debugs), bool, count=n
    )
    changed = (codes != current_codes) | (source_error != current_source_error)

    changed_index = np.nonzero(changed)[0]
    write = object.__setattr__
    kinds = _KIND_OF_CODE
    for index, code, flag in zip(
        changed_index.tolist(),
        codes[changed_index].tolist(),
        source_error[changed_index].tolist(),
    ):
        debug = debugs[index]
        write(debug, "error_kind", kinds[code])
        write(debug, "source_error", flag)
    return int(changed_index.size)
