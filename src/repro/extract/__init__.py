"""The 12 knowledge extractors.

Mirrors §3.1.3 of the paper: 4 text extractors (TXT1-4), 5 DOM extractors
(DOM1-5), 2 web-table extractors (TBL1-2) and 1 annotation extractor (ANO),
each a concrete parser over the rendered content of
:mod:`repro.world.content`, with:

- **shared entity-linkage components** (two linkers, EL-A and EL-B; most
  extractors use EL-A — the paper: "a lot of extractors employ the same
  entity linkage components, they may make common linkage mistakes");
- **pattern libraries** sampled from the shared template registry (the
  analogue of patterns learned via distant supervision), some mapping a
  phrasing to the wrong predicate;
- **per-extractor confidence models** with very different calibration
  (Figure 21).

Extractors emit :class:`~repro.extract.records.ExtractionRecord` objects;
the pipeline tags each record's debug channel with the injected error kind
(triple identification / entity linkage / predicate linkage) by comparing
against the page's hidden assertions — fusion never sees these tags.
"""

from repro.extract.records import ExtractionRecord, ExtractionDebug, ErrorKind
from repro.extract.linkage import EntityLinker
from repro.extract.confidence import ConfidenceModel, make_confidence_model
from repro.extract.base import Extractor, ExtractorProfile
from repro.extract.text import TextExtractor
from repro.extract.dom import DomExtractor
from repro.extract.table import TableExtractor
from repro.extract.annotation import AnnotationExtractor
from repro.extract.pipeline import (
    EXTRACTION_BACKENDS,
    ExtractionPipeline,
    build_extractor,
)

__all__ = [
    "EXTRACTION_BACKENDS",
    "ExtractionRecord",
    "ExtractionDebug",
    "ErrorKind",
    "EntityLinker",
    "ConfidenceModel",
    "make_confidence_model",
    "Extractor",
    "ExtractorProfile",
    "TextExtractor",
    "DomExtractor",
    "TableExtractor",
    "AnnotationExtractor",
    "ExtractionPipeline",
    "build_extractor",
]
