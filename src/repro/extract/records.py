"""Extraction records and their debug channel.

An :class:`ExtractionRecord` is one cell of the paper's three-dimensional
input: what one extractor extracted from one URL for one data item —
together with the rich provenance the paper keeps (extractor, URL, pattern,
confidence).

``debug`` is ground truth for *analysis only*: which hidden page assertion
the record came from and what kind of extraction error (if any) it embodies.
The fusion layer works from the record's public fields; the test suite
checks that fusion results are invariant to stripping the debug channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.kb.triples import Triple
from repro.mapreduce.codec import WireCodec

__all__ = [
    "ErrorKind",
    "ExtractionDebug",
    "ExtractionRecord",
    "records_to_wire",
    "records_from_wire",
    "RECORD_WIRE_CODEC",
]


class ErrorKind(enum.Enum):
    """The paper's three extraction-error classes (§3.2.1)."""

    TRIPLE_IDENTIFICATION = "triple_identification"
    ENTITY_LINKAGE = "entity_linkage"
    PREDICATE_LINKAGE = "predicate_linkage"


@dataclass(slots=True)
class ExtractionDebug:
    """Analysis-only ground truth attached to a record.

    ``asserted_index`` points into the source page's hidden assertion list
    (None when the record was fabricated from a non-fact mention, e.g. a
    name cell in a merged DOM row).  ``error_kind`` is None when the record
    faithfully reproduces the page's claim; ``source_error`` is True when
    that claim itself was wrong in the world.

    ``span_corrupted`` (the extractor truncated the mention before linking)
    and ``slot_mismatch`` (the mention was taken from a structural slot
    whose declared predicate differs from the emitted one — merged-row
    flattening) are mechanism flags set at extraction time; the pipeline
    uses them to classify ``error_kind``.
    """

    asserted_index: int | None
    error_kind: ErrorKind | None = None
    source_error: bool = False
    span_corrupted: bool = False
    slot_mismatch: bool = False


@dataclass(slots=True)
class ExtractionRecord:
    """One (triple, provenance) observation.

    ``pattern`` is the extractor-internal pattern id that produced the
    record (None for pattern-free extractors, cf. Table 2); ``confidence``
    is the extractor's self-reported confidence (None for extractors that
    do not emit one).

    Records are deliberately *not* frozen: the synthesis and
    classification kernels construct tens of thousands per run, and
    ``__init__`` on a frozen dataclass pays an ``object.__setattr__``
    call per field.  Identity-bearing state lives in ``triple``
    (frozen, hashable); records themselves are never hashed.
    """

    triple: Triple
    extractor: str
    url: str
    site: str
    content_type: str
    pattern: str | None = None
    confidence: float | None = None
    debug: ExtractionDebug | None = None

    def without_debug(self) -> "ExtractionRecord":
        """A copy with the debug channel stripped (public view)."""
        if self.debug is None:
            return self
        return replace(self, debug=None)

    @property
    def is_extraction_error(self) -> bool:
        """Analysis helper; requires the debug channel."""
        return self.debug is not None and self.debug.error_kind is not None

    @property
    def is_source_error(self) -> bool:
        """Analysis helper; requires the debug channel."""
        return self.debug is not None and self.debug.source_error


# ---------------------------------------------------------------------------
# Wire format for crossing process boundaries
# ---------------------------------------------------------------------------
# Pickling slotted dataclasses repeats every slot name per object; shuffled
# extraction shards instead cross the worker→parent boundary as flat tuples
# of primitives (triples via their canonical text), roughly halving the
# per-record wire size.  The round-trip is exact: ``Triple.from_canonical``
# inverts ``canonical()`` and value normalisation happens at construction.
# ``RECORD_WIRE_CODEC`` (at the bottom of this module) packages the pair as
# the shared codec-layer spelling (see repro/mapreduce/codec.py).


def records_to_wire(records: list[ExtractionRecord]) -> list[tuple]:
    """Flatten records into compact picklable tuples (worker side)."""
    wire = []
    for r in records:
        d = r.debug
        debug = (
            None
            if d is None
            else (
                d.asserted_index,
                None if d.error_kind is None else d.error_kind.value,
                d.source_error,
                d.span_corrupted,
                d.slot_mismatch,
            )
        )
        wire.append(
            (
                r.triple.canonical(),
                r.extractor,
                r.url,
                r.site,
                r.content_type,
                r.pattern,
                r.confidence,
                debug,
            )
        )
    return wire


def records_from_wire(wire: list[tuple]) -> list[ExtractionRecord]:
    """Inverse of :func:`records_to_wire` (parent side)."""
    records = []
    for triple, extractor, url, site, content_type, pattern, confidence, debug in wire:
        records.append(
            ExtractionRecord(
                triple=Triple.from_canonical(triple),
                extractor=extractor,
                url=url,
                site=site,
                content_type=content_type,
                pattern=pattern,
                confidence=confidence,
                debug=(
                    None
                    if debug is None
                    else ExtractionDebug(
                        asserted_index=debug[0],
                        error_kind=None if debug[1] is None else ErrorKind(debug[1]),
                        source_error=debug[2],
                        span_corrupted=debug[3],
                        slot_mismatch=debug[4],
                    )
                ),
            )
        )
    return records


#: The extraction shard codec: compact tuples on the wire, exact round-trip.
RECORD_WIRE_CODEC = WireCodec(encode=records_to_wire, decode=records_from_wire)
