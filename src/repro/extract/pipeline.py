"""Extraction pipeline: run extractors, classify injected errors.

The pipeline drives every extractor over every page it covers and then
fills each record's debug channel by comparing the extracted triple with
the page's hidden assertion it came from:

1. fabricated mention (no assertion behind it) → triple identification;
2. extractor corrupted the span before linking → triple identification;
3. exact match with the assertion → no extraction error (the record may
   still carry the *source's* error);
4. mention taken from a structural slot of a different predicate
   (merged-row/merged-sentence flattening) → triple identification;
5. same structure, different predicate → predicate linkage;
6. otherwise (subject or object resolved to the wrong entity, or an
   unlinkable mention emitted as a raw string) → entity linkage.

Fusion never sees these tags; the test suite checks that stripping the
debug channel does not change fusion output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ExtractionError
from repro.extract.annotation import AnnotationExtractor
from repro.extract.base import Extractor, ExtractorProfile
from repro.extract.dom import DomExtractor
from repro.extract.linkage import EntityLinker
from repro.extract.records import ErrorKind, ExtractionDebug, ExtractionRecord
from repro.extract.table import TableExtractor
from repro.extract.text import TextExtractor
from repro.kb.schema import Schema
from repro.world.labels import TemplateSpec
from repro.world.webgen import WebCorpus, WebPage

__all__ = ["build_extractor", "ExtractionPipeline"]


def build_extractor(
    profile: ExtractorProfile,
    schema: Schema,
    linker: EntityLinker,
    templates: dict[str, TemplateSpec],
    seed: int,
) -> Extractor:
    """Instantiate the right extractor class for ``profile``.

    The primary (first) content type selects the parser family; DOM
    extractors whose profile also lists TBL will walk tables as trees.
    """
    primary = profile.content_types[0]
    if primary == "TXT":
        return TextExtractor(profile, schema, linker, templates, seed)
    if primary == "DOM":
        # DOM1 is the paper's one patterned DOM extractor (25.7M patterns).
        patterned = profile.name.endswith("1")
        return DomExtractor(profile, schema, linker, seed, patterned=patterned)
    if primary == "TBL":
        return TableExtractor(profile, schema, linker, seed)
    if primary == "ANO":
        return AnnotationExtractor(profile, schema, linker, seed)
    raise ExtractionError(f"no extractor family for content type {primary!r}")


def classify_record(record: ExtractionRecord, page: WebPage) -> ExtractionRecord:
    """Fill ``record.debug`` with the injected-error classification."""
    debug = record.debug
    if debug is None:
        raise ExtractionError(
            f"record from {record.extractor} lacks a debug channel; "
            "was it stripped before classification?"
        )
    if debug.asserted_index is None:
        new = replace(
            debug, error_kind=ErrorKind.TRIPLE_IDENTIFICATION, source_error=False
        )
        return replace(record, debug=new)
    asserted = page.assertions[debug.asserted_index]
    if debug.span_corrupted:
        kind: ErrorKind | None = ErrorKind.TRIPLE_IDENTIFICATION
    elif record.triple == asserted.triple:
        kind = None
    elif debug.slot_mismatch:
        kind = ErrorKind.TRIPLE_IDENTIFICATION
    elif record.triple.predicate != asserted.triple.predicate:
        kind = ErrorKind.PREDICATE_LINKAGE
    else:
        kind = ErrorKind.ENTITY_LINKAGE
    new = replace(
        debug,
        error_kind=kind,
        source_error=(kind is None and asserted.source_error),
    )
    return replace(record, debug=new)


@dataclass
class ExtractionPipeline:
    """Runs a fleet of extractors over a corpus."""

    extractors: list[Extractor]

    def run(self, corpus: WebCorpus) -> list[ExtractionRecord]:
        """All classified extraction records, page-major then extractor-major."""
        records: list[ExtractionRecord] = []
        for page in corpus.pages:
            for extractor in self.extractors:
                if not extractor.covers(page):
                    continue
                for record in extractor.extract_page(page):
                    records.append(classify_record(record, page))
        return records

    def by_name(self, name: str) -> Extractor:
        for extractor in self.extractors:
            if extractor.name == name:
                return extractor
        raise ExtractionError(f"no extractor named {name!r}")
