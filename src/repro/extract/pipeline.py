"""Extraction pipeline: run extractors, classify injected errors.

The pipeline drives every extractor over every page it covers and then
fills each record's debug channel by comparing the extracted triple with
the page's hidden assertion it came from:

1. fabricated mention (no assertion behind it) → triple identification;
2. extractor corrupted the span before linking → triple identification;
3. exact match with the assertion → no extraction error (the record may
   still carry the *source's* error);
4. mention taken from a structural slot of a different predicate
   (merged-row/merged-sentence flattening) → triple identification;
5. same structure, different predicate → predicate linkage;
6. otherwise (subject or object resolved to the wrong entity, or an
   unlinkable mention emitted as a raw string) → entity linkage.

Fusion never sees these tags; the test suite checks that stripping the
debug channel does not change fusion output.

Execution backends (``ExtractionPipeline.run(backend=...)``):

- ``serial`` — the reference path: one in-process pass over pages ×
  extractors (page-major, extractor-major emission order);
- ``parallel`` — the corpus is sharded by stable page-URL hash
  (:func:`~repro.mapreduce.executors.shard_for_key`) and each shard's
  page × extractor extraction + classification runs in a process-pool
  worker via the executors' map-only protocol
  (:class:`~repro.mapreduce.executors.ShardedMapJob`).  Extraction is
  order-insensitive by design — every noisy draw derives from
  ``split_seed(seed, extractor, url)`` — and the parent re-emits each
  page's records at the page's corpus position, so the parallel record
  stream is bit-identical to the serial one.  Shard outputs cross the
  process boundary as compact tuples (the
  :data:`~repro.extract.records.RECORD_WIRE_CODEC` wire codec), not
  pickled dataclass lists, and the 12-extractor fleet (entity linkers
  included) is installed *pool-resident* via
  :meth:`~repro.mapreduce.executors.ParallelExecutor.install_state`, so
  it crosses the process boundary once per pool — not once per shard —
  on both fork and spawn start methods;
- ``batched`` — one in-process pass like ``serial``, but each shard runs
  record synthesis through the vectorised kernel
  (:func:`~repro.extract.synthesis.synthesize_batch`: one seed-array
  pass per extractor instead of a ``SeedSequence``/``Generator`` build
  per page, with per-predicate emit plans hoisted out of the record
  loop).  Bit-identical to ``serial`` — the scalar ``extract_page`` is
  the kernel's frozen parity reference.  Extractors without a family
  kernel fall back to scalar ``extract_page`` inside the batch (see
  :meth:`ExtractionPipeline.synthesis_fallbacks`);
- ``hybrid`` — ``parallel`` sharding with the ``batched`` synthesis
  kernel inside each worker: the fastest path, still bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError, ExtractionError
from repro.extract.annotation import AnnotationExtractor
from repro.extract.base import Extractor, ExtractorProfile
from repro.extract.dom import DomExtractor
from repro.extract.kernels import classify_batch
from repro.extract.linkage import EntityLinker
from repro.extract.records import (
    RECORD_WIRE_CODEC,
    ErrorKind,
    ExtractionRecord,
)
from repro.extract.table import TableExtractor
from repro.extract.text import TextExtractor
from repro.kb.schema import Schema
from repro.mapreduce.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    ShardedMapJob,
    worker_state,
)
from repro.world.labels import TemplateSpec
from repro.world.webgen import WebCorpus, WebPage

__all__ = ["build_extractor", "ExtractionPipeline", "EXTRACTION_BACKENDS"]

#: Execution backends for the extraction stage (see module docstring).
EXTRACTION_BACKENDS = ("serial", "batched", "parallel", "hybrid")

#: Backends whose shards run the batched synthesis kernel.
_BATCHED_SYNTHESIS_BACKENDS = frozenset({"batched", "hybrid"})

#: Backends that shard over a process pool.
_POOLED_BACKENDS = frozenset({"parallel", "hybrid"})

#: Registry key the extractor fleet is installed under (pool-resident).
EXTRACT_FLEET_KEY = "extract.fleet"


def build_extractor(
    profile: ExtractorProfile,
    schema: Schema,
    linker: EntityLinker,
    templates: dict[str, TemplateSpec],
    seed: int,
) -> Extractor:
    """Instantiate the right extractor class for ``profile``.

    The primary (first) content type selects the parser family; DOM
    extractors whose profile also lists TBL will walk tables as trees.
    """
    primary = profile.content_types[0]
    if primary == "TXT":
        return TextExtractor(profile, schema, linker, templates, seed)
    if primary == "DOM":
        # DOM1 is the paper's one patterned DOM extractor (25.7M patterns).
        patterned = profile.name.endswith("1")
        return DomExtractor(profile, schema, linker, seed, patterned=patterned)
    if primary == "TBL":
        return TableExtractor(profile, schema, linker, seed)
    if primary == "ANO":
        return AnnotationExtractor(profile, schema, linker, seed)
    raise ExtractionError(f"no extractor family for content type {primary!r}")


def classify_record(record: ExtractionRecord, page: WebPage) -> ExtractionRecord:
    """Fill ``record.debug`` with the injected-error classification.

    Pure scalar reference: returns a new record when the classification
    differs from what the debug channel already carries, and ``record``
    itself — no copies — when it is already correct (the common case on
    re-classification, and the exact-match fast path either way, since
    fresh records default to ``error_kind=None`` / ``source_error=False``).
    The batched :func:`repro.extract.kernels.classify_batch` must agree
    with this function record-for-record; the parity tests compare them
    bitwise.
    """
    debug = record.debug
    if debug is None:
        raise ExtractionError(
            f"record from {record.extractor} lacks a debug channel; "
            "was it stripped before classification?"
        )
    if debug.asserted_index is None:
        kind: ErrorKind | None = ErrorKind.TRIPLE_IDENTIFICATION
        source_error = False
    else:
        asserted = page.assertions[debug.asserted_index]
        if debug.span_corrupted:
            kind = ErrorKind.TRIPLE_IDENTIFICATION
        elif record.triple == asserted.triple:
            kind = None
        elif debug.slot_mismatch:
            kind = ErrorKind.TRIPLE_IDENTIFICATION
        elif record.triple.predicate != asserted.triple.predicate:
            kind = ErrorKind.PREDICATE_LINKAGE
        else:
            kind = ErrorKind.ENTITY_LINKAGE
        source_error = kind is None and asserted.source_error
    if debug.error_kind is kind and debug.source_error == source_error:
        return record
    new = replace(debug, error_kind=kind, source_error=source_error)
    return replace(record, debug=new)


def _extract_shard(pages: list[WebPage]) -> list[list[ExtractionRecord]]:
    """One shard's extraction: the seed-identical page × extractor loop.

    Runs against the pool-resident fleet (``EXTRACT_FLEET_KEY``) — the
    shard task itself is just this function reference plus the page list,
    so the 12 extractors (linkers included) never ride in a shard
    payload.  Returns one classified record list per page.  Page coverage
    is decided by one batched
    :meth:`~repro.extract.base.Extractor.coverage_mask` pass per extractor
    instead of a per-page ``covers()`` call, and error classification by
    one shard-wide :func:`~repro.extract.kernels.classify_batch` kernel
    call instead of per-record :func:`classify_record` (bitwise-identical
    — see the kernel's parity contract).
    """
    extractors: tuple[Extractor, ...] = worker_state(EXTRACT_FLEET_KEY)
    masks = [extractor.coverage_mask(pages) for extractor in extractors]
    per_page: list[list[ExtractionRecord]] = []
    for index, page in enumerate(pages):
        records: list[ExtractionRecord] = []
        for extractor, mask in zip(extractors, masks):
            if mask[index]:
                records.extend(extractor.extract_page(page))
        per_page.append(records)
    classify_batch(list(zip(pages, per_page)))
    return per_page


def _extract_shard_batched(pages: list[WebPage]) -> list[list[ExtractionRecord]]:
    """One shard's extraction through the batched synthesis kernel.

    The kernel twin of :func:`_extract_shard`: the same pool-resident
    fleet and coverage masks, but record synthesis runs through
    :func:`~repro.extract.synthesis.synthesize_batch` (vectorised
    per-page seeding, hoisted emit plans) instead of a scalar
    ``extract_page`` call per covered page — bit-identical output, since
    every extractor kernel is a parity twin of its scalar reference and
    extractors without a kernel fall back to ``extract_page`` inside
    ``extract_pages_batch``.  One :class:`~repro.extract.synthesis.SynthesisCaches`
    spans the shard, so ambiguity/parse memos warm across pages *and*
    extractors.
    """
    from repro.extract.synthesis import SynthesisCaches, synthesize_batch

    extractors: tuple[Extractor, ...] = worker_state(EXTRACT_FLEET_KEY)
    masks = [extractor.coverage_mask(pages) for extractor in extractors]
    per_page = synthesize_batch(
        extractors, pages, masks=masks, caches=SynthesisCaches()
    )
    classify_batch(list(zip(pages, per_page)))
    return per_page


def _page_url(page: WebPage) -> str:
    return page.url


@dataclass
class ExtractionPipeline:
    """Runs a fleet of extractors over a corpus.

    ``backend``/``n_workers`` set the default execution backend for
    :meth:`run` (overridable per call): ``serial`` is the in-process
    reference, ``batched`` runs the in-process synthesis kernel,
    ``parallel`` shards pages by stable URL hash over a process pool, and
    ``hybrid`` runs the synthesis kernel inside each parallel shard — all
    bit-identical to ``serial``.
    """

    extractors: list[Extractor]
    backend: str = "serial"
    n_workers: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in EXTRACTION_BACKENDS:
            raise ConfigError(
                f"extraction backend must be one of {EXTRACTION_BACKENDS}, "
                f"got {self.backend!r}"
            )

    def run(
        self,
        corpus: WebCorpus,
        backend: str | None = None,
        n_workers: int | None = None,
        executor: Executor | None = None,
    ) -> list[ExtractionRecord]:
        """All classified extraction records, page-major then extractor-major.

        ``backend`` overrides the pipeline default for this call;
        ``executor`` overrides both with a caller-managed executor (which
        the caller also closes — the CLI uses this to read the fallback
        counters afterwards).
        """
        requested = backend if backend is not None else self.backend
        if requested not in EXTRACTION_BACKENDS:
            raise ConfigError(
                f"extraction backend must be one of {EXTRACTION_BACKENDS}, "
                f"got {requested!r}"
            )
        owns_executor = executor is None
        if executor is None:
            if requested in _POOLED_BACKENDS:
                executor = ParallelExecutor(
                    max_workers=n_workers if n_workers is not None else self.n_workers
                )
            else:
                executor = SerialExecutor()
        # The fleet is heavyweight, invariant state: install it once per
        # pool instead of pickling it into every shard task.
        executor.install_state(EXTRACT_FLEET_KEY, tuple(self.extractors))
        map_shard = (
            _extract_shard_batched
            if requested in _BATCHED_SYNTHESIS_BACKENDS
            else _extract_shard
        )
        job = ShardedMapJob(
            name="extract.pages",
            map_shard=map_shard,
            key_fn=_page_url,
            codec=RECORD_WIRE_CODEC,
        )
        try:
            per_page = executor.run_map(corpus.pages, job)
        finally:
            if owns_executor:
                executor.close()
            else:
                # A shared executor outlives this stage: withdraw the
                # fleet so the next stage's pool restart does not re-ship
                # it to workers that never use it.
                executor.uninstall_state(EXTRACT_FLEET_KEY)
        return [record for page_records in per_page for record in page_records]

    def run_stream(
        self,
        chunks,
        backend: str | None = None,
        n_workers: int | None = None,
        executor: Executor | None = None,
    ):
        """Extract page chunks one at a time: the out-of-core twin of :meth:`run`.

        ``chunks`` is an iterable of page lists (e.g.
        :func:`repro.world.webgen.stream_corpus`); each chunk is sharded
        through the same map job :meth:`run` uses — same backends, same
        wire codec, same per-page record order — and yields that chunk's
        flattened record list.  The fleet is installed pool-resident
        *once* for the whole stream (per-chunk install/withdraw would
        restart the pool on every chunk), and withdrawn when the stream
        ends; peak memory is one chunk of pages plus its records.
        """
        requested = backend if backend is not None else self.backend
        if requested not in EXTRACTION_BACKENDS:
            raise ConfigError(
                f"extraction backend must be one of {EXTRACTION_BACKENDS}, "
                f"got {requested!r}"
            )
        owns_executor = executor is None
        if executor is None:
            if requested in _POOLED_BACKENDS:
                executor = ParallelExecutor(
                    max_workers=n_workers if n_workers is not None else self.n_workers
                )
            else:
                executor = SerialExecutor()
        executor.install_state(EXTRACT_FLEET_KEY, tuple(self.extractors))
        map_shard = (
            _extract_shard_batched
            if requested in _BATCHED_SYNTHESIS_BACKENDS
            else _extract_shard
        )
        job = ShardedMapJob(
            name="extract.pages",
            map_shard=map_shard,
            key_fn=_page_url,
            codec=RECORD_WIRE_CODEC,
        )
        try:
            for pages in chunks:
                per_page = executor.run_map(list(pages), job)
                yield [
                    record for page_records in per_page for record in page_records
                ]
        finally:
            if owns_executor:
                executor.close()
            else:
                executor.uninstall_state(EXTRACT_FLEET_KEY)

    def synthesis_fallbacks(self) -> tuple[str, ...]:
        """Names of extractors without a batched synthesis kernel.

        These fall back to scalar :meth:`~repro.extract.base.Extractor.extract_page`
        inside ``batched``/``hybrid`` runs (still bit-identical); callers
        surface the names in diagnostics so a silently-scalar fleet is
        visible.  Empty for the stock 12-extractor fleet — every family
        ships a kernel.
        """
        return tuple(
            extractor.name
            for extractor in self.extractors
            if not extractor.has_synthesis_kernel
        )

    def by_name(self, name: str) -> Extractor:
        for extractor in self.extractors:
            if extractor.name == name:
                return extractor
        raise ExtractionError(f"no extractor named {name!r}")
