"""Web-table extractors (TBL1-2): schema mapping over relational tables.

The two extractors embody the two classic schema-mapping strategies:

- **TBL1** (header-based, naive): assumes the subject is column 0 and
  resolves each header to the alphabetically-first candidate predicate —
  wrong whenever a header like "Year" is ambiguous across types, and blind
  on tables whose first column is a row number;
- **TBL2** (value-based, type-aware): detects the subject column by how
  many of its cells *link* to entities, infers the table's subject type
  from the linked rows, and resolves headers within that type — the
  state-of-the-art mapping of the paper's [1] at toy scale.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.extract.base import Extractor
from repro.extract.records import ExtractionRecord
from repro.extract.synthesis import emit_plan
from repro.world.content import WebTable
from repro.world.labels import header_candidates
from repro.world.webgen import WebPage

__all__ = ["TableExtractor"]


class TableExtractor(Extractor):
    """Relational extraction from web tables."""

    record_content_type = "TBL"

    def __init__(self, profile, schema, linker, seed) -> None:
        super().__init__(profile, schema, linker, seed)
        # Batched-kernel memo: (header, subject_type) -> mapped pid, the
        # pure ``_map_header`` resolution (the scalar path recomputes it
        # per table — it stays the unmemoized parity reference).
        self._header_plans: dict[tuple[str, str | None], str | None] = {}

    # ------------------------------------------------------------------
    def _subject_column(self, table: WebTable) -> int:
        if not self.profile.detect_subject_col:
            return 0
        best_col, best_hits = 0, -1
        n_cols = len(table.headers)
        for col in range(n_cols):
            hits = 0
            for row in table.rows:
                if col < len(row) and row[col].kind == "entity":
                    if self.linker.resolve(row[col].surface) is not None:
                        hits += 1
            if hits > best_hits:
                best_col, best_hits = col, hits
        return best_col

    def _majority_type(self, table: WebTable, subject_col: int) -> str | None:
        counts: Counter[str] = Counter()
        for row in table.rows:
            if subject_col >= len(row) or row[subject_col].kind != "entity":
                continue
            linked = self.linker.resolve(row[subject_col].surface)
            if linked is not None:
                counts[self.linker.registry.get(linked).primary_type] += 1
        if not counts:
            return None
        return counts.most_common(1)[0][0]

    def _map_header(self, header: str, subject_type: str | None) -> str | None:
        candidates = header_candidates(self.schema, header)
        if not candidates:
            return None
        if self.profile.type_aware_headers and subject_type is not None:
            typed = [
                pid
                for pid in candidates
                if self.schema.predicates[pid].type_id == subject_type
            ]
            if typed:
                return typed[0]
            return None  # a careful mapper abstains rather than guessing
        return candidates[0]  # naive: global first candidate

    # ------------------------------------------------------------------
    def extract_page(self, page: WebPage) -> list[ExtractionRecord]:
        rng = self.page_rng(page.url)
        records: list[ExtractionRecord] = []
        for element in page.elements:
            if isinstance(element, WebTable):
                records.extend(self._extract_table(page, element, rng))
        return records

    def _extract_table(
        self, page: WebPage, table: WebTable, rng: np.random.Generator
    ) -> list[ExtractionRecord]:
        subject_col = self._subject_column(table)
        subject_type = self._majority_type(table, subject_col)
        column_pids: dict[int, str] = {}
        for col, header in enumerate(table.headers):
            if col == subject_col:
                continue
            pid = self._map_header(header, subject_type)
            if pid is not None:
                column_pids[col] = pid
        records: list[ExtractionRecord] = []
        for row in table.rows:
            if subject_col >= len(row) or row[subject_col].kind != "entity":
                continue
            subject_id = self.link_subject(row[subject_col], type_hint=subject_type)
            if subject_id is None:
                continue
            row_pool = tuple(
                cell for col, cell in enumerate(row) if col != subject_col
            )
            for col, pid in column_pids.items():
                if col >= len(row):
                    continue
                predicate = self.schema.predicates.get(pid)
                if predicate is None:
                    continue
                record = self.emit(
                    page=page,
                    subject_id=subject_id,
                    predicate=predicate,
                    mention=row[col],
                    rng=rng,
                    pattern=None,
                    reliability=self.reliability_for(f"hdr:{table.headers[col]}"),
                    alternates=row_pool,
                )
                if record is not None:
                    records.append(record)
        return records

    # ------------------------------------------------------------------
    # Batched synthesis kernel (bitwise twin of extract_page)
    # ------------------------------------------------------------------
    def _synthesize_table(self, page, table, emit, records) -> None:
        subject_col = self._subject_column(table)
        subject_type = self._majority_type(table, subject_col)
        header_plans = self._header_plans
        # Column plan: everything the scalar path re-derives per row
        # (predicate object, reliability draw) resolved once per table.
        plan: list[tuple] = []
        for col, header in enumerate(table.headers):
            if col == subject_col:
                continue
            key = (header, subject_type)
            if key in header_plans:
                pid = header_plans[key]
            else:
                pid = header_plans[key] = self._map_header(header, subject_type)
            if pid is None:
                continue
            predicate = self.schema.predicates.get(pid)
            if predicate is None:
                continue
            plan.append(
                (
                    col,
                    emit_plan(
                        self, predicate, None, self.reliability_for(f"hdr:{header}")
                    ),
                )
            )
        hint = subject_type if self.profile.use_type_hints else None
        resolve = self.linker.resolve
        append = records.append
        for row in table.rows:
            if subject_col >= len(row) or row[subject_col].kind != "entity":
                continue
            subject_id = resolve(row[subject_col].surface, hint)
            if subject_id is None:
                continue
            row_pool = tuple(
                cell for col, cell in enumerate(row) if col != subject_col
            )
            n_cells = len(row)
            for col, eplan in plan:
                if col >= n_cells:
                    continue
                record = emit(
                    page, subject_id, eplan, row[col], 1.0, False, row_pool
                )
                if record is not None:
                    append(record)

    def _synthesize_page(self, page: WebPage, emit) -> list[ExtractionRecord]:
        records: list[ExtractionRecord] = []
        for element in page.elements:
            if isinstance(element, WebTable):
                self._synthesize_table(page, element, emit, records)
        return records
