"""Shared entity-linkage components.

Entity linkage resolves a surface form ("Thomas Cruise Mapother IV") to an
entity id.  The scenario instantiates exactly two linkers, EL-A and EL-B,
shared across extractors — the paper notes that "multiple extractors may
use the same entity linkage tool" and therefore make *common* mistakes.

A linker's mistakes are **deterministic**: for a given ambiguous surface it
always prefers the same candidate (the one maximising popularity × a
linker-specific bias).  When that preference differs from the entity a page
actually meant, every extractor using this linker errs identically on every
page using that surface — which is what produces triples wrong on many
URLs at once (the dips in Figures 6/7 and the Figure 18 gap).

Extractors that pass a *type hint* (the object type expected by the
predicate being extracted) let the linker filter candidates by type first,
avoiding cross-type confusions; cheap extractors pass no hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kb.entities import EntityRegistry
from repro.rng import split_seed

__all__ = ["EntityLinker"]


def _bias(linker_name: str, entity_id: str, seed: int) -> float:
    """Deterministic per-(linker, entity) multiplicative bias in [0.5, 1.5]."""
    h = split_seed(seed, "linkbias", linker_name, entity_id)
    return 0.5 + (h % 10_000) / 10_000.0


@dataclass
class EntityLinker:
    """A deterministic entity-linkage component.

    Parameters
    ----------
    name:
        Linker identity ("EL-A" / "EL-B"); part of the bias hash, so the
        two linkers disagree on some ambiguous surfaces.
    registry:
        The entity registry (the Freebase entity universe).
    popularity:
        Entity popularity weights; linkers prefer popular candidates, like
        real milne-style linkers prefer high-prior senses.
    seed:
        Scenario master seed (for the bias hash only — resolution itself
        is deterministic).
    """

    name: str
    registry: EntityRegistry
    popularity: dict[str, float]
    seed: int
    _cache: dict[tuple[str, str | None], str | None] = field(
        default_factory=dict, repr=False
    )

    def resolve(self, surface: str, type_hint: str | None = None) -> str | None:
        """Resolve ``surface`` to an entity id, or None if unlinkable.

        ``type_hint`` (a type id) filters candidates when provided.
        Resolution is memoised: a linker always answers the same way.
        """
        key = (surface, type_hint)
        if key in self._cache:
            return self._cache[key]
        candidates = self.registry.candidates_for(surface)
        if type_hint is not None:
            candidates = [c for c in candidates if type_hint in c.type_ids]
        if not candidates:
            result = None
        elif len(candidates) == 1:
            result = candidates[0].entity_id
        else:
            result = max(
                candidates,
                key=lambda c: (
                    self.popularity.get(c.entity_id, 0.0)
                    * _bias(self.name, c.entity_id, self.seed),
                    c.entity_id,
                ),
            ).entity_id
        self._cache[key] = result
        return result

    def ambiguity(self, surface: str, type_hint: str | None = None) -> int:
        """Candidate-set size — extractors feed this into confidence."""
        candidates = self.registry.candidates_for(surface)
        if type_hint is not None:
            candidates = [c for c in candidates if type_hint in c.type_ids]
        return len(candidates)
