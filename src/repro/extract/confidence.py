"""Per-extractor confidence models.

Extractors attach a confidence to each record, computed from a *raw
signal* — pattern reliability × linkage certainty × structural cleanliness
— that genuinely correlates with correctness.  What differs per extractor
is how that signal is *reported*, reproducing the four behaviours of
Figure 21:

- ``calibrated``: reports the signal with mild noise (DOM2-like when
  sharpened; TXT2-like); accuracy tracks confidence;
- ``extreme``: pushes reports toward 0/1 (DOM2, ANO "tend to assign
  confidence close to 0 or 1");
- ``centered``: compresses reports toward 0.5 (TXT1);
- ``peaked``: *miscalibrated* — reports are highest for mid-signal records
  (TBL1, whose accuracy peaks at medium confidence);
- ``uninformative``: reports extreme values uncorrelated with the signal
  (ANO: "the accuracy of the triples stays similar when the confidence
  increases");
- ``none``: no confidence at all (DOM5, TBL2 in Table 2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["ConfidenceModel", "make_confidence_model"]


def _clip(x: float) -> float:
    return float(min(1.0, max(0.0, x)))


class ConfidenceModel(abc.ABC):
    """Transforms a raw correctness signal into a reported confidence."""

    name: str = "abstract"

    @abc.abstractmethod
    def transform(self, signal: float, rng: np.random.Generator) -> float | None:
        """Reported confidence for a record with raw ``signal`` in [0, 1]."""


@dataclass
class CalibratedConfidence(ConfidenceModel):
    """Reports the signal plus mild noise."""

    noise: float = 0.08
    name: str = "calibrated"

    def transform(self, signal: float, rng: np.random.Generator) -> float:
        return _clip(signal + float(rng.normal(0.0, self.noise)))


@dataclass
class ExtremeConfidence(ConfidenceModel):
    """Pushes reports toward the extremes (sharpening)."""

    sharpness: float = 3.0
    noise: float = 0.05
    name: str = "extreme"

    def transform(self, signal: float, rng: np.random.Generator) -> float:
        noisy = _clip(signal + float(rng.normal(0.0, self.noise)))
        # Logistic sharpening around 0.5.
        centered = (noisy - 0.5) * self.sharpness
        return _clip(0.5 + 0.5 * float(np.tanh(centered)))


@dataclass
class CenteredConfidence(ConfidenceModel):
    """Compresses reports toward 0.5 (weakly informative)."""

    compression: float = 0.35
    noise: float = 0.06
    name: str = "centered"

    def transform(self, signal: float, rng: np.random.Generator) -> float:
        noisy = _clip(signal + float(rng.normal(0.0, self.noise)))
        return _clip(0.5 + (noisy - 0.5) * self.compression)


@dataclass
class PeakedConfidence(ConfidenceModel):
    """Miscalibrated: highest reports for *mid*-signal records (TBL-style)."""

    noise: float = 0.07
    name: str = "peaked"

    def transform(self, signal: float, rng: np.random.Generator) -> float:
        # Records the extractor is most sure of get medium reports, and
        # vice versa: reported = 1 - |signal - 0.5| * 2 folded around 0.55.
        folded = 1.0 - abs(signal - 0.55) * 1.6
        return _clip(folded + float(rng.normal(0.0, self.noise)))


@dataclass
class UninformativeConfidence(ConfidenceModel):
    """Extreme reports uncorrelated with the signal."""

    name: str = "uninformative"

    def transform(self, signal: float, rng: np.random.Generator) -> float:
        return float(rng.beta(0.4, 0.4))


_MODELS = {
    "calibrated": CalibratedConfidence,
    "extreme": ExtremeConfidence,
    "centered": CenteredConfidence,
    "peaked": PeakedConfidence,
    "uninformative": UninformativeConfidence,
}


def make_confidence_model(name: str) -> ConfidenceModel | None:
    """Instantiate a confidence model by name; ``"none"`` returns None."""
    if name == "none":
        return None
    try:
        return _MODELS[name]()
    except KeyError:
        raise ValueError(
            f"unknown confidence model {name!r}; choose from "
            f"{sorted(_MODELS)} or 'none'"
        ) from None
