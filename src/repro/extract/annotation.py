"""Annotation extractor (ANO): ontology mapping over schema.org-ish markup.

The paper relies on "semi-automatically defined mappings from the ontology
in schema.org to that in Freebase".  The analogue here is an itemprop →
predicate map that is *incomplete* (``pattern_coverage`` of properties are
mapped at all) and partially *wrong* (``wrong_predicate_rate`` of mapped
properties point at a confusable predicate).  Structurally the markup is
clean, so nearly all ANO errors are linkage or mapping errors — yet its
Table 2 accuracy is a poor 0.28, which the profile reproduces with an
aggressive, hint-free linker and a corrupted map.
"""

from __future__ import annotations

from repro.extract.base import Extractor
from repro.extract.records import ExtractionRecord
from repro.extract.synthesis import emit_plan
from repro.rng import split_seed
from repro.world.content import AnnotationBlock
from repro.world.labels import ano_prop
from repro.world.webgen import WebPage

__all__ = ["AnnotationExtractor"]


class AnnotationExtractor(Extractor):
    """itemprop-driven extraction from annotation blocks."""

    record_content_type = "ANO"

    def __init__(self, profile, schema, linker, seed) -> None:
        super().__init__(profile, schema, linker, seed)
        self._prop_map = self._build_map()
        # Batched-kernel memo: itemprop -> emit_plan or None for
        # unmapped/unknown props; pure per prop.
        self._prop_plans: dict[str, tuple | None] = {}

    def _build_map(self) -> dict[str, str]:
        """The semi-automatic ontology map, holes and mistakes included.

        itemprops collide across types (both ``film/film/release_year`` and
        ``music/album/release_year`` render as ``releaseYear``); the map
        keeps the first pid in sorted order, as a careless mapping would.
        """
        mapping: dict[str, str] = {}
        for pid in sorted(self.schema.predicates):
            prop = ano_prop(pid)
            include_draw = (
                split_seed(self.seed, "anomap", self.name, prop) % 1_000_000
            ) / 1_000_000.0
            if include_draw >= self.profile.pattern_coverage:
                continue
            wrong_draw = (
                split_seed(self.seed, "anowrong", self.name, prop) % 1_000_000
            ) / 1_000_000.0
            target = pid
            if wrong_draw < self.profile.wrong_predicate_rate:
                predicate = self.schema.predicates[pid]
                if predicate.confusable_with is not None:
                    target = predicate.confusable_with
            mapping.setdefault(prop, target)
        return mapping

    def extract_page(self, page: WebPage) -> list[ExtractionRecord]:
        rng = self.page_rng(page.url)
        records: list[ExtractionRecord] = []
        for element in page.elements:
            if not isinstance(element, AnnotationBlock):
                continue
            subject_id = self.link_subject(element.subject)
            if subject_id is None:
                continue
            pool = tuple(mention for _prop, mention in element.props)
            for prop, mention in element.props:
                pid = self._prop_map.get(prop)
                if pid is None:
                    continue
                predicate = self.schema.predicates.get(pid)
                if predicate is None:
                    continue
                record = self.emit(
                    page=page,
                    subject_id=subject_id,
                    predicate=predicate,
                    mention=mention,
                    rng=rng,
                    pattern=None,
                    reliability=self.reliability_for(prop),
                    alternates=pool,
                )
                if record is not None:
                    records.append(record)
        return records

    # ------------------------------------------------------------------
    # Batched synthesis kernel (bitwise twin of extract_page)
    # ------------------------------------------------------------------
    def _synthesize_page(self, page: WebPage, emit) -> list[ExtractionRecord]:
        records: list[ExtractionRecord] = []
        resolve = self.linker.resolve
        plans = self._prop_plans
        for element in page.elements:
            if not isinstance(element, AnnotationBlock):
                continue
            subject_id = resolve(element.subject.surface)
            if subject_id is None:
                continue
            props = element.props
            pool = tuple(mention for _prop, mention in props)
            for prop, mention in props:
                plan = plans.get(prop, False)
                if plan is False:
                    pid = self._prop_map.get(prop)
                    predicate = (
                        None if pid is None else self.schema.predicates.get(pid)
                    )
                    plan = plans[prop] = (
                        None
                        if predicate is None
                        else emit_plan(
                            self, predicate, None, self.reliability_for(prop)
                        )
                    )
                if plan is None:
                    continue
                record = emit(page, subject_id, plan, mention, 1.0, False, pool)
                if record is not None:
                    records.append(record)
        return records
