"""Text extractors (TXT1-4): pattern-based sentence parsing.

The real systems learn lexical patterns by distant supervision against
Freebase; here the analogue is a *pattern library* sampled from the shared
sentence-template registry.  Each pattern knows one phrasing
(``template_id``), believes it expresses some predicate (possibly the wrong
one — predicate-linkage errors), has a reliability score (drives both
confidence and span mangling), and may or may not understand merged
phrasings ("born on D in P"): a pattern that doesn't flattens both slots
onto its one predicate — a triple-identification error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extract.base import Extractor, ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.records import ExtractionRecord
from repro.extract.synthesis import emit_plan
from repro.kb.schema import Schema
from repro.rng import split_seed
from repro.world.content import TextDocument
from repro.world.labels import TemplateSpec
from repro.world.webgen import WebPage

__all__ = ["TextPattern", "TextExtractor"]


@dataclass(frozen=True, slots=True)
class TextPattern:
    """One learned pattern: phrasing -> believed predicate."""

    pattern_id: str
    template_id: str
    predicate: str  # what the pattern *believes* slot 0 expresses
    reliability: float
    handles_merged: bool


class TextExtractor(Extractor):
    """Sentence-level extraction via a sampled pattern library."""

    record_content_type = "TXT"

    def __init__(
        self,
        profile: ExtractorProfile,
        schema: Schema,
        linker: EntityLinker,
        templates: dict[str, TemplateSpec],
        seed: int,
    ) -> None:
        super().__init__(profile, schema, linker, seed)
        self.templates = templates
        self.patterns = self._build_library()
        # Memo for the batched kernel: template_id -> sentence plan (the
        # pattern/predicate/slot resolution, pure per template).
        self._sentence_plans: dict[str, tuple | None] = {}

    # ------------------------------------------------------------------
    def _wrong_predicate(self, pid: str, draw: float) -> str:
        """A plausible wrong predicate for ``pid``.

        Preference order mirrors how mislearned patterns actually confuse
        predicates: the declared confusable sibling (author↔editor), then
        any same-type sibling of the same value kind, then any same-type
        sibling at all.
        """
        predicate = self.schema.predicates[pid]
        if predicate.confusable_with is not None:
            return predicate.confusable_with
        same_kind = [
            p.pid
            for p in self.schema.predicates_of_type(predicate.type_id)
            if p.pid != pid and p.value_kind is predicate.value_kind
        ]
        if same_kind:
            return same_kind[int(draw * len(same_kind)) % len(same_kind)]
        siblings = [
            p.pid
            for p in self.schema.predicates_of_type(predicate.type_id)
            if p.pid != pid
        ]
        if not siblings:
            return pid
        return siblings[int(draw * len(siblings)) % len(siblings)]

    def _build_library(self) -> dict[str, TextPattern]:
        """Deterministically sample this extractor's pattern library."""
        profile = self.profile
        library: dict[str, TextPattern] = {}
        for template_id, spec in sorted(self.templates.items()):
            draw = (
                split_seed(self.seed, "pat", self.name, template_id) % 1_000_000
            ) / 1_000_000.0
            if draw >= profile.pattern_coverage:
                continue
            wrong_draw = (
                split_seed(self.seed, "patwrong", self.name, template_id) % 1_000_000
            ) / 1_000_000.0
            predicate = spec.slots[0]
            if wrong_draw < profile.wrong_predicate_rate:
                predicate = self._wrong_predicate(spec.slots[0], wrong_draw * 7919 % 1)
            library[template_id] = TextPattern(
                pattern_id=f"{self.name}:{template_id}",
                template_id=template_id,
                predicate=predicate,
                reliability=self.reliability_for(template_id),
                handles_merged=profile.handles_merged,
            )
        return library

    @property
    def n_patterns(self) -> int:
        """Size of the pattern library (Table 2's #Patterns column)."""
        return len(self.patterns)

    # ------------------------------------------------------------------
    def extract_page(self, page: WebPage) -> list[ExtractionRecord]:
        rng = self.page_rng(page.url)
        records: list[ExtractionRecord] = []
        for element in page.elements:
            if not isinstance(element, TextDocument):
                continue
            # The document-wide mention pool is what a sloppy pattern can
            # accidentally associate with its predicate (misgrab).
            pool = tuple(
                mention
                for sentence in element.sentences
                for mention in sentence.objects
            )
            for sentence in element.sentences:
                records.extend(self._extract_sentence(page, sentence, pool, rng))
        return records

    def _extract_sentence(
        self,
        page: WebPage,
        sentence,
        pool: tuple,
        rng: np.random.Generator,
    ) -> list[ExtractionRecord]:
        pattern = self.patterns.get(sentence.template_id)
        if pattern is None:
            return []
        spec = self.templates[sentence.template_id]
        believed = self.schema.predicates.get(pattern.predicate)
        if believed is None:
            return []
        subject_id = self.link_subject(sentence.subject, type_hint=believed.type_id)
        if subject_id is None:
            return []
        records: list[ExtractionRecord] = []
        merged_penalty = 0.65 if (spec.merged and not pattern.handles_merged) else 1.0
        for slot, mention in enumerate(sentence.objects):
            declared = spec.slots[slot]
            if slot == 0 or not spec.merged:
                emitted_pid = pattern.predicate
            elif pattern.handles_merged:
                emitted_pid = declared
            else:
                emitted_pid = pattern.predicate
            predicate = self.schema.predicates.get(emitted_pid)
            if predicate is None:
                continue
            record = self.emit(
                page=page,
                subject_id=subject_id,
                predicate=predicate,
                mention=mention,
                rng=rng,
                pattern=pattern.pattern_id,
                reliability=pattern.reliability,
                structure_penalty=merged_penalty,
                slot_mismatch=(emitted_pid != declared and slot > 0),
                alternates=pool,
            )
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------------
    # Batched synthesis kernel (bitwise twin of extract_page)
    # ------------------------------------------------------------------
    def _sentence_plan(self, template_id: str) -> tuple | None:
        """Everything ``_extract_sentence`` derives per template, hoisted.

        Pure in ``template_id``: the pattern lookup, the believed
        predicate, the subject type hint, the merged penalty, and the
        per-slot ``(emit_plan, slot_mismatch)`` resolution.  ``None``
        means the template produces no records (no pattern, or the
        believed predicate is unknown).
        """
        pattern = self.patterns.get(template_id)
        if pattern is None:
            return None
        spec = self.templates[template_id]
        believed = self.schema.predicates.get(pattern.predicate)
        if believed is None:
            return None
        type_hint = believed.type_id if self.profile.use_type_hints else None
        merged_penalty = 0.65 if (spec.merged and not pattern.handles_merged) else 1.0
        slot_plans: list[tuple | None] = []
        for slot, declared in enumerate(spec.slots):
            if slot == 0 or not spec.merged:
                emitted_pid = pattern.predicate
            elif pattern.handles_merged:
                emitted_pid = declared
            else:
                emitted_pid = pattern.predicate
            predicate = self.schema.predicates.get(emitted_pid)
            if predicate is None:
                slot_plans.append(None)
            else:
                slot_plans.append(
                    (
                        emit_plan(
                            self,
                            predicate,
                            pattern.pattern_id,
                            pattern.reliability,
                        ),
                        emitted_pid != declared and slot > 0,
                    )
                )
        return (type_hint, merged_penalty, tuple(slot_plans))

    def _synthesize_page(self, page: WebPage, emit) -> list[ExtractionRecord]:
        records: list[ExtractionRecord] = []
        plans = self._sentence_plans
        build_plan = self._sentence_plan
        resolve = self.linker.resolve
        for element in page.elements:
            if not isinstance(element, TextDocument):
                continue
            sentences = element.sentences
            # The document-wide misgrab pool, built on first use: pure,
            # so deferring it past pattern-less sentences is bit-safe.
            pool = None
            for sentence in sentences:
                template_id = sentence.template_id
                plan = plans.get(template_id, False)
                if plan is False:
                    plan = plans[template_id] = build_plan(template_id)
                if plan is None:
                    continue
                type_hint, merged_penalty, slot_plans = plan
                subject_id = resolve(sentence.subject.surface, type_hint)
                if subject_id is None:
                    continue
                if pool is None:
                    pool = tuple(
                        mention
                        for pooled in sentences
                        for mention in pooled.objects
                    )
                for slot, mention in enumerate(sentence.objects):
                    entry = slot_plans[slot]
                    if entry is None:
                        continue
                    eplan, slot_mismatch = entry
                    record = emit(
                        page,
                        subject_id,
                        eplan,
                        mention,
                        merged_penalty,
                        slot_mismatch,
                        pool,
                    )
                    if record is not None:
                        records.append(record)
        return records
