"""DOM extractors (DOM1-5): infobox row parsing.

A DOM extractor maps a row label ("Born", "Director") to a predicate.
Good extractors resolve labels *per subject type* (they know, post-linkage,
that the subject is a film); cheap ones use a single global label map, so
cross-type label collisions ("Headquarters", "Publisher") become
predicate-linkage errors.  Merged rows (the Wikipedia ``Born`` row packing
name, date and place) are flattened by extractors without merged-row
handling — every cell lands on the label's one predicate, the paper's
flagship triple-identification error.

DOM extractors whose profile includes the TBL content type also process web
tables the way a tree-walker would ("an extractor targeted at DOM can also
extract from TBL since Web tables are in DOM-tree format"): each header
becomes a row label — which is exactly how the small TBL/DOM triple
overlap of Figure 3 arises.
"""

from __future__ import annotations

import numpy as np

from repro.extract.base import Extractor, ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.records import ExtractionRecord
from repro.extract.synthesis import emit_plan
from repro.kb.schema import Schema
from repro.rng import split_seed
from repro.world.content import DomRow, DomTree, Mention, WebTable
from repro.world.labels import dom_label, tbl_header
from repro.world.webgen import WebPage

__all__ = ["DomExtractor"]

#: Merged-row cell routing when the generator recorded no explicit
#: sub-labels: dates are birth dates, entities are birthplaces.
_MERGED_CELL_SUB = {"date": "date", "entity": "place"}


class DomExtractor(Extractor):
    """Row-label driven extraction from DOM trees (and optionally tables)."""

    record_content_type = "DOM"

    def __init__(
        self,
        profile: ExtractorProfile,
        schema: Schema,
        linker: EntityLinker,
        seed: int,
        patterned: bool = False,
    ) -> None:
        super().__init__(profile, schema, linker, seed)
        self.patterned = patterned
        # Per-type label maps: (type_id, label) -> pid.
        self._typed_map: dict[tuple[str, str], str] = {}
        # Global label map: label -> pid; collisions resolved by pid order,
        # which is precisely where a global map goes wrong.
        self._global_map: dict[str, str] = {}
        # Memo for _resolve_label(): pure in (label, subject_type), and
        # the same row labels recur on every page of a type.
        self._label_cache: dict[tuple[str, str | None], str | None] = {}
        # Batched-kernel memos, all pure in their keys: per-row emit
        # plans, the merged-row Born / Birthplace plan pairs, and
        # per-header plans for the table-as-DOM walk.
        self._row_plans: dict[tuple[str, str], tuple | None] = {}
        self._merged_preds: dict[tuple[str, str], tuple] = {}
        self._tbl_plans: dict[tuple[str, str], tuple | None] = {}
        for pid in sorted(schema.predicates):
            predicate = schema.predicates[pid]
            label = dom_label(pid)
            self._typed_map.setdefault((predicate.type_id, label), pid)
            self._global_map.setdefault(label, pid)
            header = tbl_header(pid)
            self._typed_map.setdefault((predicate.type_id, header), pid)
            self._global_map.setdefault(header, pid)

    @property
    def n_patterns(self) -> int | None:
        """Patterned DOM extractors report a library size (Table 2)."""
        if not self.patterned:
            return None
        return len(self._typed_map)

    # ------------------------------------------------------------------
    def _resolve_label(self, label: str, subject_type: str | None) -> str | None:
        """Label -> predicate id, honouring the global-map knob and the
        wrong-predicate corruption rate.  Memoized: the resolution is a
        pure function of ``(label, subject_type)``, including the
        corruption draws (``split_seed``-derived, no shared RNG)."""
        memo_key = (label, subject_type)
        if memo_key in self._label_cache:
            return self._label_cache[memo_key]
        pid = self._resolve_label_uncached(label, subject_type)
        self._label_cache[memo_key] = pid
        return pid

    def _resolve_label_uncached(
        self, label: str, subject_type: str | None
    ) -> str | None:
        if self.profile.global_label_map or subject_type is None:
            pid = self._global_map.get(label)
        else:
            pid = self._typed_map.get((subject_type, label))
            if pid is None:
                pid = self._global_map.get(label)
        if pid is None:
            return None
        if self.profile.wrong_predicate_rate > 0:
            draw = (
                split_seed(self.seed, "domwrong", self.name, subject_type or "-", label)
                % 1_000_000
            ) / 1_000_000.0
            if draw < self.profile.wrong_predicate_rate:
                predicate = self.schema.predicates[pid]
                if predicate.confusable_with is not None:
                    return predicate.confusable_with
                siblings = [
                    p.pid
                    for p in self.schema.predicates_of_type(predicate.type_id)
                    if p.pid != pid
                ]
                if siblings:
                    index = split_seed(self.seed, "domsib", self.name, label) % len(
                        siblings
                    )
                    return siblings[index]
        return pid

    def _pattern_id(self, subject_type: str | None, label: str) -> str | None:
        if not self.patterned:
            return None
        return f"{self.name}:{subject_type or 'any'}:{label}"

    # ------------------------------------------------------------------
    def extract_page(self, page: WebPage) -> list[ExtractionRecord]:
        rng = self.page_rng(page.url)
        records: list[ExtractionRecord] = []
        for element in page.elements:
            if isinstance(element, DomTree):
                records.extend(self._extract_tree(page, element, rng))
            elif isinstance(element, WebTable) and "TBL" in self.profile.content_types:
                records.extend(self._extract_table_as_dom(page, element, rng))
        return records

    def _extract_tree(
        self, page: WebPage, tree: DomTree, rng: np.random.Generator
    ) -> list[ExtractionRecord]:
        subject_id = self.link_subject(tree.subject)
        if subject_id is None:
            return []
        subject_type = self.linker.registry.get(subject_id).primary_type
        pool = tuple(cell for row in tree.rows for cell in row.cells)
        records: list[ExtractionRecord] = []
        for row in tree.rows:
            records.extend(
                self._extract_row(page, subject_id, subject_type, row, pool, rng)
            )
        return records

    def _extract_row(
        self,
        page: WebPage,
        subject_id: str,
        subject_type: str,
        row: DomRow,
        pool: tuple[Mention, ...],
        rng: np.random.Generator,
    ) -> list[ExtractionRecord]:
        records: list[ExtractionRecord] = []
        if row.merged and self.profile.handles_merged:
            # Understands the nested structure: route each cell to the
            # right predicate by sub-label (when rendered) or value kind.
            for index, cell in enumerate(row.cells):
                sub = (
                    row.cell_labels[index]
                    if row.cell_labels is not None
                    else {"date": "date", "entity": "place"}.get(cell.kind)
                )
                if sub == "date":
                    pid = self._typed_map.get((subject_type, "Born"))
                elif sub == "place":
                    pid = self._typed_map.get((subject_type, "Birthplace"))
                else:
                    continue  # the name cell — correctly skipped
                if pid is None:
                    continue
                predicate = self.schema.predicates[pid]
                record = self.emit(
                    page=page,
                    subject_id=subject_id,
                    predicate=predicate,
                    mention=cell,
                    rng=rng,
                    pattern=self._pattern_id(subject_type, row.label),
                    reliability=self.reliability_for(f"{subject_type}:{row.label}"),
                )
                if record is not None:
                    records.append(record)
            return records

        pid = self._resolve_label(row.label, subject_type)
        if pid is None:
            return records
        predicate = self.schema.predicates.get(pid)
        if predicate is None:
            return records
        reliability = self.reliability_for(f"{subject_type}:{row.label}")
        structure_penalty = 0.55 if row.merged else 1.0
        for cell in row.cells:
            record = self.emit(
                page=page,
                subject_id=subject_id,
                predicate=predicate,
                mention=cell,
                rng=rng,
                pattern=self._pattern_id(subject_type, row.label),
                reliability=reliability,
                structure_penalty=structure_penalty,
                slot_mismatch=row.merged,
                alternates=pool,
            )
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------------
    def _extract_table_as_dom(
        self, page: WebPage, table: WebTable, rng: np.random.Generator
    ) -> list[ExtractionRecord]:
        """Walk a table the way a generic tree-walker would: assume the
        first column is the subject and headers are row labels."""
        records: list[ExtractionRecord] = []
        for row in table.rows:
            if not row:
                continue
            subject_mention = row[0]
            if subject_mention.kind != "entity":
                continue
            subject_id = self.link_subject(subject_mention)
            if subject_id is None:
                continue
            subject_type = self.linker.registry.get(subject_id).primary_type
            row_pool = tuple(row[1:])
            for column in range(1, min(len(row), len(table.headers))):
                pid = self._resolve_label(table.headers[column], subject_type)
                if pid is None:
                    continue
                predicate = self.schema.predicates.get(pid)
                if predicate is None:
                    continue
                record = self.emit(
                    page=page,
                    subject_id=subject_id,
                    predicate=predicate,
                    mention=row[column],
                    rng=rng,
                    pattern=self._pattern_id(subject_type, table.headers[column]),
                    reliability=self.reliability_for(f"tbl:{table.headers[column]}"),
                    alternates=row_pool,
                )
                if record is not None:
                    records.append(record)
        return records

    # ------------------------------------------------------------------
    # Batched synthesis kernel (bitwise twin of extract_page)
    # ------------------------------------------------------------------
    def _row_plan(self, subject_type: str, label: str) -> tuple | None:
        """The :func:`~repro.extract.synthesis.emit_plan` for a plain row
        (or None for unmapped labels) — the per-row derivations of
        ``_extract_row``, pure in the key."""
        plan = self._row_plans.get((subject_type, label), False)
        if plan is False:
            pid = self._resolve_label(label, subject_type)
            predicate = None if pid is None else self.schema.predicates.get(pid)
            plan = self._row_plans[(subject_type, label)] = (
                None
                if predicate is None
                else emit_plan(
                    self,
                    predicate,
                    self._pattern_id(subject_type, label),
                    self.reliability_for(f"{subject_type}:{label}"),
                )
            )
        return plan

    def _merged_row_plan(self, subject_type: str, label: str) -> tuple:
        """(Born emit_plan | None, Birthplace emit_plan | None) for a
        merged row the extractor understands — sub-label routing targets
        with the row's shared reliability/pattern baked in."""
        plans = self._merged_preds.get((subject_type, label))
        if plans is None:
            born = self._typed_map.get((subject_type, "Born"))
            place = self._typed_map.get((subject_type, "Birthplace"))
            pattern = self._pattern_id(subject_type, label)
            reliability = self.reliability_for(f"{subject_type}:{label}")
            plans = self._merged_preds[(subject_type, label)] = (
                None
                if born is None
                else emit_plan(self, self.schema.predicates[born], pattern, reliability),
                None
                if place is None
                else emit_plan(self, self.schema.predicates[place], pattern, reliability),
            )
        return plans

    def _synthesize_tree(self, page, tree, emit, records) -> None:
        resolve = self.linker.resolve
        subject_id = resolve(tree.subject.surface)
        if subject_id is None:
            return
        subject_type = self.linker.registry.get(subject_id).primary_type
        handles_merged = self.profile.handles_merged
        append = records.append
        row_plans = self._row_plans
        build_plan = self._row_plan
        merged_sub = _MERGED_CELL_SUB
        rows = tree.rows
        pool = None
        for row in rows:
            label = row.label
            if row.merged and handles_merged:
                born_plan, place_plan = self._merged_row_plan(subject_type, label)
                cell_labels = row.cell_labels
                for index, cell in enumerate(row.cells):
                    if cell_labels is not None:
                        sub = cell_labels[index]
                    else:
                        sub = merged_sub.get(cell.kind)
                    if sub == "date":
                        plan = born_plan
                    elif sub == "place":
                        plan = place_plan
                    else:
                        continue
                    if plan is None:
                        continue
                    record = emit(page, subject_id, plan, cell)
                    if record is not None:
                        append(record)
                continue
            plan = row_plans.get((subject_type, label), False)
            if plan is False:
                plan = build_plan(subject_type, label)
            if plan is None:
                continue
            structure_penalty = 0.55 if row.merged else 1.0
            if pool is None:
                pool = tuple(cell for pooled in rows for cell in pooled.cells)
            for cell in row.cells:
                record = emit(
                    page, subject_id, plan, cell,
                    structure_penalty, row.merged, pool,
                )
                if record is not None:
                    append(record)

    def _synthesize_table_as_dom(self, page, table, emit, records) -> None:
        resolve = self.linker.resolve
        registry_get = self.linker.registry.get
        tbl_plans = self._tbl_plans
        append = records.append
        headers = table.headers
        n_headers = len(headers)
        for row in table.rows:
            if not row:
                continue
            subject_mention = row[0]
            if subject_mention.kind != "entity":
                continue
            subject_id = resolve(subject_mention.surface)
            if subject_id is None:
                continue
            subject_type = registry_get(subject_id).primary_type
            row_pool = tuple(row[1:])
            for column in range(1, min(len(row), n_headers)):
                header = headers[column]
                plan = tbl_plans.get((subject_type, header), False)
                if plan is False:
                    pid = self._resolve_label(header, subject_type)
                    predicate = (
                        None if pid is None else self.schema.predicates.get(pid)
                    )
                    plan = tbl_plans[(subject_type, header)] = (
                        None
                        if predicate is None
                        else emit_plan(
                            self,
                            predicate,
                            self._pattern_id(subject_type, header),
                            self.reliability_for(f"tbl:{header}"),
                        )
                    )
                if plan is None:
                    continue
                record = emit(
                    page, subject_id, plan, row[column],
                    1.0, False, row_pool,
                )
                if record is not None:
                    append(record)

    def _synthesize_page(self, page: WebPage, emit) -> list[ExtractionRecord]:
        records: list[ExtractionRecord] = []
        handles_tbl = "TBL" in self.profile.content_types
        for element in page.elements:
            if isinstance(element, DomTree):
                self._synthesize_tree(page, element, emit, records)
            elif handles_tbl and isinstance(element, WebTable):
                self._synthesize_table_as_dom(page, element, emit, records)
        return records
