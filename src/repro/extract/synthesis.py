"""Batched record synthesis: the ``extract_pages_batch`` kernel layer.

Record synthesis (:meth:`~repro.extract.base.Extractor.extract_page`) is
the last un-vectorised extraction stage: template matching, linkage,
reliability/ambiguity lookups, RNG draws and per-record object
construction, one page at a time.  This module batches it the way
classification was batched (:mod:`repro.extract.kernels`): the scalar
``extract_page`` stays the **bitwise parity reference**, and the batched
path must reproduce its record stream byte-for-byte — the same
reference-plus-kernel twin convention as ``classify_record`` /
``classify_batch``.

Why the draws themselves cannot be columnised: a page's generator is
``default_rng(split_seed(seed, "extract", name, url))`` and its draw
*sequence* is data-dependent (a misgrab draw may or may not consume an
``integers`` draw before the mangle draw; ``beta``/``normal`` use
rejection sampling with variable bitstream consumption).  Reordering or
batching the draws would change every downstream value and break the
golden metrics.  What *can* be vectorised is everything around them:

- **Seed-array keying** — per-page seeds ``(seed, extractor, url)`` are
  produced by one :func:`seed_array` call (the shared ``split_seed``
  prefix is folded once per extractor, then one hash per URL, the same
  factoring ``coverage_mask`` uses).
- **Generator provisioning** — ``default_rng(seed)`` costs ~10 µs/page,
  ~90% of it ``SeedSequence`` pool mixing and object construction.
  :class:`PageRNGBank` reimplements the ``SeedSequence`` → PCG64 seeding
  pipeline as uint32/uint64 column arithmetic over the whole seed array
  (verified bitwise against ``np.random.PCG64(seed).state`` by the unit
  suite), then *reuses one* ``Generator`` whose PCG64 state is reset per
  page — the draw stream is bit-identical to a fresh
  ``default_rng(seed)`` at a fraction of the cost.
- **Pure lookups** — ambiguity, literal parsing and value construction
  are pure functions of their inputs; :class:`SynthesisCaches` memoises
  them batch-wide, which is bitwise-safe because equal inputs produce
  equal (``==``) values.
- **Emission** — :func:`make_emitter` builds a closure twin of
  :meth:`Extractor.emit` with every attribute/method resolved once per
  batch instead of once per record.

:func:`synthesize_batch` drives a whole fleet over a page list in the
pipeline's canonical order (page-major, extractor-major) and is the one
batching entry point behind ``ExtractionPipeline.run`` and
``Extractor.extract_corpus``.  Extractors without a family kernel fall
back to scalar ``extract_page`` inside the batch — tagged by
:func:`fallback_names` so pipeline diagnostics can report it.
"""

from __future__ import annotations

import gc
import math
from contextlib import contextmanager
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.extract.records import ExtractionDebug, ExtractionRecord
from repro.kb.triples import Triple
from repro.kb.values import EntityRef, StringValue
from repro.rng import split_seed, stream_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.extract.base import Extractor
    from repro.world.webgen import WebPage

__all__ = [
    "PageRNGBank",
    "SynthesisCaches",
    "emit_plan",
    "fallback_names",
    "make_emitter",
    "seed_array",
    "synthesize_batch",
]


@contextmanager
def _gc_paused():
    """Pause the cyclic GC for a batch-allocation burst.

    Synthesis allocates ~3 tracked objects per record and keeps them all
    live, so every generation-0 pass rescans a growing survivor set for
    cycles that record graphs (frozen, acyclic) cannot contain.  Pausing
    collection for the batch removes that quadratic-ish scan cost;
    nothing is leaked — allocation still happens normally and the GC
    resumes (and catches up) on exit.  Nested pauses are no-ops.
    """
    if gc.isenabled():
        gc.disable()
        try:
            yield
        finally:
            gc.enable()
    else:
        yield

# ---------------------------------------------------------------------------
# Seed arrays
# ---------------------------------------------------------------------------


def seed_array(master_seed: int, names: Sequence[str], leaves: Sequence[str]) -> np.ndarray:
    """Per-leaf ``split_seed`` values as one uint64 array.

    ``seed_array(seed, ("extract", name), urls)[i]`` equals
    ``split_seed(seed, "extract", name, urls[i])`` exactly: ``split_seed``
    folds left-to-right, so the shared prefix is hashed once and each
    leaf costs a single ``stream_seed`` — one sha256 per page instead of
    one per path component.
    """
    prefix = split_seed(master_seed, *names)
    n = len(leaves)
    return np.fromiter(
        (stream_seed(prefix, leaf) for leaf in leaves), np.uint64, count=n
    )


# ---------------------------------------------------------------------------
# Vectorised SeedSequence -> PCG64 seeding
# ---------------------------------------------------------------------------
# Constants from numpy's _seed_seq hash mixer (bit_generator.pyx) and the
# PCG64 LCG (pcg64.h).  The uint32 hashing below is the exact algorithm
# ``SeedSequence(seed).generate_state(4, uint64)`` runs, evaluated as
# column operations over all seeds at once; ``hash_const`` is a *shared
# scalar* sequence (it advances per hash call, independent of the data),
# kept as a masked python int so scalar-overflow warnings never fire —
# array multiplies wrap silently, which is the semantics the mixer wants.

_XSHIFT = np.uint32(16)
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_MASK32 = 0xFFFFFFFF

_PCG_MULT_HI = np.uint64(0x2360ED051FC65DA4)
_PCG_MULT_LO = np.uint64(0x4385DF649FCCF645)
_U64_MASK32 = np.uint64(0xFFFFFFFF)
_U64_1 = np.uint64(1)
_U64_32 = np.uint64(32)
_U64_63 = np.uint64(63)


def _seedseq_words(seeds: np.ndarray) -> np.ndarray:
    """``SeedSequence(seed).generate_state(4, uint64)`` for every seed.

    ``seeds`` is a uint64 array; returns an ``(n, 4)`` uint64 array.  The
    entropy of a 64-bit seed is its two little-endian uint32 limbs; a
    seed below 2**32 has one-limb entropy in numpy, but the pool slot it
    leaves empty is filled with ``hash(0)`` — identical to hashing an
    explicit zero limb, so the two-limb spelling is exact for all seeds.
    """
    n = seeds.shape[0]
    entropy = (
        (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32),
        (seeds >> _U64_32).astype(np.uint32),
        np.zeros(n, dtype=np.uint32),
        np.zeros(n, dtype=np.uint32),
    )
    pool = np.empty((4, n), dtype=np.uint32)
    hash_const = _INIT_A
    for index in range(4):
        value = entropy[index] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & _MASK32
        value = value * np.uint32(hash_const)
        value ^= value >> _XSHIFT
        pool[index] = value
    for i_src in range(4):
        for i_dst in range(4):
            if i_src == i_dst:
                continue
            hashed = pool[i_src] ^ np.uint32(hash_const)
            hash_const = (hash_const * _MULT_A) & _MASK32
            hashed = hashed * np.uint32(hash_const)
            hashed ^= hashed >> _XSHIFT
            mixed = (pool[i_dst] * _MIX_MULT_L) - (hashed * _MIX_MULT_R)
            mixed ^= mixed >> _XSHIFT
            pool[i_dst] = mixed
    words32 = np.empty((8, n), dtype=np.uint32)
    hash_const = _INIT_B
    for index in range(8):
        value = pool[index % 4] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _MASK32
        value = value * np.uint32(hash_const)
        value ^= value >> _XSHIFT
        words32[index] = value
    words = np.empty((n, 4), dtype=np.uint64)
    for k in range(4):
        low = words32[2 * k].astype(np.uint64)
        high = words32[2 * k + 1].astype(np.uint64)
        words[:, k] = low | (high << _U64_32)
    return words


def _mul128_lo(a_hi, a_lo, b_hi, b_lo):
    """Low 128 bits of ``(a_hi:a_lo) * (b_hi:b_lo)`` as (hi, lo) uint64
    columns, with the 64×64 full product done in 32-bit halves."""
    lo = a_lo * b_lo
    a0 = a_lo & _U64_MASK32
    a1 = a_lo >> _U64_32
    b0 = b_lo & _U64_MASK32
    b1 = b_lo >> _U64_32
    m0 = a0 * b0
    m1 = a0 * b1
    m2 = a1 * b0
    carry = ((m0 >> _U64_32) + (m1 & _U64_MASK32) + (m2 & _U64_MASK32)) >> _U64_32
    hi = a1 * b1 + (m1 >> _U64_32) + (m2 >> _U64_32) + carry
    hi = hi + a_lo * b_hi + a_hi * b_lo
    return hi, lo


def _pcg64_states(words: np.ndarray):
    """The PCG64 ``srandom`` seeding for every 4-word row of ``words``.

    Mirrors ``pcg_setseq_128_srandom_r``: ``inc = (initseq << 1) | 1``,
    ``state = (inc + initstate) * PCG_MULT + inc`` (mod 2**128), where
    ``initstate = words[0]:words[1]`` and ``initseq = words[2]:words[3]``
    (high:low).  Returns (state_hi, state_lo, inc_hi, inc_lo) columns.
    """
    is_hi, is_lo = words[:, 0], words[:, 1]
    iq_hi, iq_lo = words[:, 2], words[:, 3]
    inc_hi = (iq_hi << _U64_1) | (iq_lo >> _U64_63)
    inc_lo = (iq_lo << _U64_1) | _U64_1
    s_lo = inc_lo + is_lo
    s_hi = inc_hi + is_hi + (s_lo < inc_lo).astype(np.uint64)
    t_hi, t_lo = _mul128_lo(s_hi, s_lo, _PCG_MULT_HI, _PCG_MULT_LO)
    state_lo = t_lo + inc_lo
    state_hi = t_hi + inc_hi + (state_lo < t_lo).astype(np.uint64)
    return state_hi, state_lo, inc_hi, inc_lo


class PageRNGBank:
    """One reusable ``Generator`` over per-page PCG64 streams.

    Seeding all pages is a handful of array passes; :meth:`reset`
    switches the bank's single generator onto page ``slot``'s stream by
    writing the precomputed 128-bit ``(state, inc)`` pair into its
    ``PCG64`` — bit-identical draws to
    ``np.random.default_rng(seeds[slot])``, without a per-page
    ``SeedSequence``/``Generator`` construction.
    """

    __slots__ = ("generator", "_bit_generator", "_states")

    def __init__(self, seeds: np.ndarray) -> None:
        seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
        state_hi, state_lo, inc_hi, inc_lo = _pcg64_states(_seedseq_words(seeds))
        # Fully-formed state dicts up front: reset() then costs exactly
        # one state-setter call (~1 µs vs ~10 µs for default_rng).  The
        # dicts are build-once state, not per-reset garbage — banks are
        # memoised per extractor across batches.
        self._states = [
            {
                "bit_generator": "PCG64",
                "state": {"state": (s_hi << 64) | s_lo, "inc": (i_hi << 64) | i_lo},
                "has_uint32": 0,
                "uinteger": 0,
            }
            for s_hi, s_lo, i_hi, i_lo in zip(
                state_hi.tolist(),
                state_lo.tolist(),
                inc_hi.tolist(),
                inc_lo.tolist(),
            )
        ]
        self._bit_generator = np.random.PCG64(0)
        self.generator = np.random.Generator(self._bit_generator)

    def __len__(self) -> int:
        return len(self._states)

    def reset(self, slot: int) -> np.random.Generator:
        """Point the bank's generator at page ``slot``'s stream."""
        self._bit_generator.state = self._states[slot]
        return self.generator


# ---------------------------------------------------------------------------
# Batch-wide memoisation
# ---------------------------------------------------------------------------


class SynthesisCaches:
    """Pure-lookup memos shared across one ``synthesize_batch`` call.

    Everything cached here is a deterministic function of its key —
    linker ambiguity counts, parsed literals, and interned value objects
    — so reuse across pages *and extractors* is bitwise-safe: records
    compare by value (dataclass ``__eq__`` over every field), and an
    interned ``StringValue``/``EntityRef`` equals a freshly constructed
    one.
    """

    __slots__ = ("ambiguity", "parse", "entity_refs", "strings")

    def __init__(self) -> None:
        # linker_name -> {surface -> max(1, linker.ambiguity(surface))};
        # nested so the per-record lookup hashes a bare surface string
        # (its hash is cached on the str object) instead of building and
        # hashing a key tuple per record.
        self.ambiguity: dict[str, dict[str, int]] = {}
        # naive_dates -> {(kind, surface) -> parsed Value | None}
        self.parse: dict[bool, dict[tuple[str, str], object]] = {}
        self.entity_refs: dict[str, EntityRef] = {}
        self.strings: dict[str, StringValue] = {}


_MISSING = object()


def emit_plan(extractor: "Extractor", predicate, pattern, reliability: float) -> tuple:
    """Per-callsite constants the scalar ``emit`` re-derives per record.

    Pure in ``(extractor profile, predicate, pattern, reliability)`` —
    family kernels build one plan per memo key (template slot, DOM row
    label, table column, itemprop) and hand it to the batch emitter.
    The thresholds are the exact products the scalar reference computes
    (``rate * (1.0 - reliability)``), precomputed once.  The reference's
    *draw-consumption* gates test the raw rate, not the threshold (a
    zero threshold with a positive rate still consumes a draw) — those
    gates are profile-level constants, so :func:`make_emitter` binds
    them once per extractor rather than carrying them per plan.
    """
    from repro.extract.base import _KIND_OF_VALUEKIND

    profile = extractor.profile
    return (
        predicate.pid,
        pattern,
        reliability,
        profile.misgrab_rate * (1.0 - reliability),
        profile.mangle_rate * (1.0 - reliability),
        _KIND_OF_VALUEKIND[predicate.value_kind],
        predicate.object_type_id if profile.use_type_hints else None,
    )


def _confidence_twin(model, generator: np.random.Generator):
    """A prebound twin of ``model.transform(signal, generator)``.

    Each branch repeats its model's float arithmetic with two
    value-preserving rewrites, both verified bitwise against the
    reference:

    - ``float(rng.normal(0.0, noise))`` becomes
      ``float(standard_normal()) * noise`` — ``Generator.normal``
      consumes exactly one standard-normal variate and computes
      ``loc + scale * z`` in IEEE doubles, so with ``loc = 0.0`` the
      product is the identical value (multiplication is bitwise
      commutative; adding ``0.0`` is the identity for every non-negative
      addend this model produces) while skipping the loc/scale argument
      broadcast;
    - ``float(min(1.0, max(0.0, x)))`` becomes a chained-comparison
      conditional — same selected object for in-range ``x`` and the same
      literal bound otherwise (``x`` is never ``-0.0``: every clipped
      quantity is a sum or product of non-negative terms).

    ``np.tanh`` is kept as-is: numpy routes scalars through its own
    SIMD tanh, which does *not* match ``math.tanh`` bit-for-bit.
    Unknown models fall through to the generic ``transform`` call.
    """
    if model is None:
        return None
    name = model.name
    standard_normal = generator.standard_normal
    if name == "calibrated":
        noise = model.noise

        def twin(signal):
            x = signal + float(standard_normal()) * noise
            return x if 0.0 <= x <= 1.0 else (1.0 if x > 1.0 else 0.0)

        return twin
    if name == "extreme":
        noise = model.noise
        sharpness = model.sharpness
        tanh = np.tanh

        def twin(signal):
            noisy = signal + float(standard_normal()) * noise
            if not 0.0 <= noisy <= 1.0:
                noisy = 1.0 if noisy > 1.0 else 0.0
            x = 0.5 + 0.5 * float(tanh((noisy - 0.5) * sharpness))
            return x if 0.0 <= x <= 1.0 else (1.0 if x > 1.0 else 0.0)

        return twin
    if name == "centered":
        noise = model.noise
        compression = model.compression

        def twin(signal):
            noisy = signal + float(standard_normal()) * noise
            if not 0.0 <= noisy <= 1.0:
                noisy = 1.0 if noisy > 1.0 else 0.0
            x = 0.5 + (noisy - 0.5) * compression
            return x if 0.0 <= x <= 1.0 else (1.0 if x > 1.0 else 0.0)

        return twin
    if name == "peaked":
        noise = model.noise

        def twin(signal):
            x = 1.0 - abs(signal - 0.55) * 1.6 + float(standard_normal()) * noise
            return x if 0.0 <= x <= 1.0 else (1.0 if x > 1.0 else 0.0)

        return twin
    if name == "uninformative":
        beta = generator.beta

        def twin(signal):
            return float(beta(0.4, 0.4))

        return twin
    transform = model.transform

    def twin(signal):
        return transform(signal, generator)

    return twin


def make_emitter(extractor: "Extractor", generator: np.random.Generator, caches: SynthesisCaches):
    """A closure twin of :meth:`Extractor.emit`, locals prebound.

    The returned ``emit(page, subject_id, plan, mention,
    structure_penalty, slot_mismatch, alternates)`` consumes draws from
    ``generator`` in exactly the scalar order (misgrab → misgrab index →
    mangle → confidence), so a page synthesised through it is
    bit-identical to ``extract_page`` — every branch below mirrors the
    reference line-for-line, with profile/linker/cache lookups hoisted
    out of the per-record path and the per-predicate derivations carried
    by an :func:`emit_plan` tuple.
    """
    from repro.world.literals import parse_literal, parse_literal_naive

    profile = extractor.profile
    linker = extractor.linker
    naive_dates = profile.naive_dates

    # Every hoisted constant rides in as a keyword-only default so the
    # hot path reads them as function locals (LOAD_FAST), not closure
    # cells; callers never pass them.  ``_pool_memo`` is a one-slot
    # identity memo for the misgrab pool's empty-mention prefilter —
    # callers reuse one ``alternates`` tuple across an element's
    # mentions, and list-comprehension filtering is order-preserving, so
    # splitting the reference's one filter into a memoised base pass
    # plus a per-mention pass yields the identical pool list.
    def emit(
        page,
        subject_id,
        plan,
        mention,
        structure_penalty=1.0,
        slot_mismatch=False,
        alternates=(),
        *,
        value_kinds=profile.value_kinds,
        kind_checking=profile.kind_checking,
        string_fallback=profile.string_fallback,
        do_misgrab=profile.misgrab_rate > 0,
        do_mangle=profile.mangle_rate > 0,
        extractor_name=extractor.name,
        content_type=extractor.record_content_type,
        resolve=linker.resolve,
        raw_ambiguity=linker.ambiguity,
        ambiguity_cache=caches.ambiguity.setdefault(linker.name, {}),
        parse_cache=caches.parse.setdefault(naive_dates, {}),
        entity_refs=caches.entity_refs,
        strings=caches.strings,
        rng_random=generator.random,
        rng_integers=generator.integers,
        twin=_confidence_twin(extractor.confidence_model, generator),
        parse=parse_literal_naive if naive_dates else parse_literal,
        sqrt=math.sqrt,
        record_type=ExtractionRecord,
        debug_type=ExtractionDebug,
        triple_type=Triple,
        _missing=_MISSING,
        _pool_memo=[(), ()],
    ):
        (
            pid,
            pattern,
            reliability,
            misgrab_threshold,
            mangle_threshold,
            expected_kind,
            type_hint,
        ) = plan
        if alternates and do_misgrab and rng_random() < misgrab_threshold:
            if _pool_memo[0] is alternates:
                base = _pool_memo[1]
            else:
                base = [m for m in alternates if m.kind != "empty"]
                _pool_memo[0] = alternates
                _pool_memo[1] = base
            surface = mention.surface
            kind = mention.kind
            pool = [m for m in base if m.surface != surface or m.kind != kind]
            if pool:
                mention = pool[int(rng_integers(len(pool)))]
                slot_mismatch = True
                structure_penalty *= 0.8
        kind = mention.kind
        if kind == "empty":
            return None
        if value_kinds is not None and kind not in value_kinds:
            return None
        if kind_checking and kind != expected_kind:
            if not (
                kind == "entity" and expected_kind == "string" and string_fallback
            ):
                return None

        span_corrupted = False
        surface = mention.surface
        if do_mangle and rng_random() < mangle_threshold and " " in surface:
            surface = surface.rsplit(" ", 1)[-1]
            span_corrupted = True

        ambiguity = 1
        if kind == "entity" and kind_checking and expected_kind == "string":
            value = strings.get(surface)
            if value is None:
                value = strings[surface] = StringValue(surface)
        elif kind == "entity":
            ambiguity = ambiguity_cache.get(surface)
            if ambiguity is None:
                ambiguity = ambiguity_cache[surface] = max(
                    1, raw_ambiguity(surface)
                )
            linked = resolve(surface, type_hint)
            if linked is not None:
                value = entity_refs.get(linked)
                if value is None:
                    value = entity_refs[linked] = EntityRef(linked)
            elif string_fallback and not kind_checking:
                value = strings.get(surface)
                if value is None:
                    value = strings[surface] = StringValue(surface)
            else:
                return None
        else:
            value = parse_cache.get((kind, surface), _missing)
            if value is _missing:
                value = parse_cache[(kind, surface)] = parse(surface, kind)
            if value is None:
                return None

        signal = reliability * structure_penalty * (1.0 / sqrt(ambiguity))
        confidence = None if twin is None else twin(signal)

        return record_type(
            triple_type(subject_id, pid, value),
            extractor_name,
            page.url,
            page.site,
            content_type,
            pattern,
            confidence,
            debug_type(mention.fact_ref, None, False, span_corrupted, slot_mismatch),
        )

    return emit


# ---------------------------------------------------------------------------
# Fleet-level driver
# ---------------------------------------------------------------------------


def fallback_names(extractors: Sequence["Extractor"]) -> tuple[str, ...]:
    """Names of fleet members lacking a family synthesis kernel.

    These run scalar ``extract_page`` inside ``synthesize_batch`` (still
    bit-identical); the pipeline surfaces them in its diagnostics the way
    fusion tags its hybrid fallback.
    """
    return tuple(
        extractor.name
        for extractor in extractors
        if not extractor.has_synthesis_kernel
    )


def synthesize_batch(
    extractors: Sequence["Extractor"],
    pages: Sequence["WebPage"],
    masks: Sequence[np.ndarray] | None = None,
    caches: SynthesisCaches | None = None,
) -> list[list[ExtractionRecord]]:
    """Batched synthesis for a whole fleet: one record list per page.

    Bit-identical to the scalar loop ``[extractor.extract_page(page) for
    covered extractor]`` in the pipeline's canonical order (page-major,
    extractor-major within a page) — each extractor's per-page sublists
    are produced by :meth:`Extractor.extract_pages_batch` and stitched
    back in fleet order.  ``masks`` (one boolean coverage mask per
    extractor, as from :meth:`Extractor.coverage_mask`) and ``caches``
    are computed fresh when not supplied.
    """
    if caches is None:
        caches = SynthesisCaches()
    if masks is None:
        masks = [extractor.coverage_mask(pages) for extractor in extractors]
    # One pause across synthesis *and* stitching: re-enabling mid-way
    # would hand the accumulated allocation debt to the very next
    # allocation — the stitch loop — as one giant collection.
    with _gc_paused():
        per_extractor = [
            extractor.extract_pages_batch(pages, mask=mask, caches=caches)
            for extractor, mask in zip(extractors, masks)
        ]
        per_page: list[list[ExtractionRecord]] = []
        for index in range(len(pages)):
            records: list[ExtractionRecord] = []
            for sublists in per_extractor:
                page_records = sublists[index]
                if page_records:
                    records.extend(page_records)
            per_page.append(records)
    return per_page
