"""Automated error analysis (the paper's §4.4 / Figure 17).

The paper manually inspected 20 false positives and 20 false negatives of
POPACCU+.  The synthetic scenario knows the true cause of every error, so
the same categorisation is computed exhaustively:

False positives (high predicted probability, gold says false):

- ``common_extraction_error`` — the triple is false in the world and its
  records carry injected extraction errors (sub-categorised into triple
  identification / entity linkage / predicate linkage);
- ``source_error`` — the triple is false but was genuinely asserted by
  pages (the paper found only 4% of these among sampled false triples);
- ``closed_world_assumption`` — the triple is *true* in the world but
  Freebase lacks it: an additional correct value for a non-functional
  item;
- ``more_specific_value`` / ``more_general_value`` — true value related to
  Freebase's stored value through the containment hierarchy;
- ``wrong_value_in_freebase`` — the triple matches the world but Freebase
  stores an outright wrong value for the item.

False negatives (low predicted probability, gold says true):

- ``multiple_truths`` — the data item has several true values and the
  single-truth assumption gave the mass to a sibling;
- ``specific_general`` — a hierarchy-related sibling took the mass;
- ``low_support`` — everything else (too few provenances to win).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.datasets.scenario import Scenario
from repro.errors import EvaluationError
from repro.extract.records import ErrorKind
from repro.kb.triples import Triple
from repro.kb.values import EntityRef

__all__ = ["ErrorBreakdown", "analyze_errors"]


@dataclass
class ErrorBreakdown:
    """Categorised false positives and false negatives."""

    fp_threshold: float
    fn_threshold: float
    n_false_positives: int
    n_false_negatives: int
    fp_categories: Counter = field(default_factory=Counter)
    fp_extraction_kinds: Counter = field(default_factory=Counter)
    fn_categories: Counter = field(default_factory=Counter)
    fp_examples: dict[str, Triple] = field(default_factory=dict)
    fn_examples: dict[str, Triple] = field(default_factory=dict)

    def fp_shares(self) -> dict[str, float]:
        total = sum(self.fp_categories.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.fp_categories.items())}

    def fn_shares(self) -> dict[str, float]:
        total = sum(self.fn_categories.values())
        if total == 0:
            return {}
        return {k: v / total for k, v in sorted(self.fn_categories.items())}


def _categorize_fp(scenario: Scenario, triple: Triple, records) -> tuple[str, ErrorKind | None]:
    world = scenario.world
    freebase = scenario.freebase
    if world.is_true_exact(triple) or world.is_generalization(triple):
        stored = freebase.values_for(triple.data_item)
        truths = set(world.truth_values(triple.data_item))
        if stored and not (set(stored) & truths):
            # Freebase's value(s) for this item are not world truths at all.
            stored_general = any(
                isinstance(v, EntityRef)
                and any(
                    isinstance(t, EntityRef)
                    and world.hierarchy.is_ancestor(v.entity_id, t.entity_id)
                    for t in truths
                )
                for v in stored
            )
            if not stored_general:
                return "wrong_value_in_freebase", None
        if isinstance(triple.obj, EntityRef):
            for value in stored:
                if isinstance(value, EntityRef):
                    if world.hierarchy.is_ancestor(
                        value.entity_id, triple.obj.entity_id
                    ):
                        return "more_specific_value", None
                    if world.hierarchy.is_ancestor(
                        triple.obj.entity_id, value.entity_id
                    ):
                        return "more_general_value", None
        return "closed_world_assumption", None
    # Genuinely false in the world: extraction or source error?
    kinds = Counter(
        record.debug.error_kind
        for record in records
        if record.debug is not None and record.debug.error_kind is not None
    )
    if kinds:
        top_kind = kinds.most_common(1)[0][0]
        return "common_extraction_error", top_kind
    return "source_error", None


def _categorize_fn(scenario: Scenario, triple: Triple, gold_true_siblings) -> str:
    world = scenario.world
    siblings = [t for t in gold_true_siblings if t != triple]
    if isinstance(triple.obj, EntityRef):
        for sibling in siblings:
            if isinstance(sibling.obj, EntityRef) and world.hierarchy.related(
                triple.obj.entity_id, sibling.obj.entity_id
            ):
                return "specific_general"
    if siblings or world.truth_count(triple.data_item) > 1:
        return "multiple_truths"
    return "low_support"


def analyze_errors(
    scenario: Scenario,
    probabilities: dict[Triple, float],
    fp_threshold: float = 0.9,
    fn_threshold: float = 0.1,
) -> ErrorBreakdown:
    """Categorise every false positive / negative of ``probabilities``.

    A false positive is a triple predicted ≥ ``fp_threshold`` whose gold
    label is False; a false negative is predicted ≤ ``fn_threshold`` with
    gold label True (the paper sampled p=1.0 and p=0.0 triples; thresholds
    generalise that to non-degenerate sets).
    """
    if not 0.0 <= fn_threshold <= fp_threshold <= 1.0:
        raise EvaluationError(
            f"thresholds must satisfy 0 <= fn <= fp <= 1, got "
            f"({fn_threshold}, {fp_threshold})"
        )
    gold = scenario.gold
    records_by_triple = defaultdict(list)
    for record in scenario.records:
        records_by_triple[record.triple].append(record)
    gold_true_by_item: dict = defaultdict(list)
    for triple, label in gold.items():
        if label:
            gold_true_by_item[triple.data_item].append(triple)

    breakdown = ErrorBreakdown(
        fp_threshold=fp_threshold,
        fn_threshold=fn_threshold,
        n_false_positives=0,
        n_false_negatives=0,
    )
    for triple, probability in probabilities.items():
        label = gold.get(triple)
        if label is None:
            continue
        if probability >= fp_threshold and not label:
            breakdown.n_false_positives += 1
            category, kind = _categorize_fp(
                scenario, triple, records_by_triple[triple]
            )
            breakdown.fp_categories[category] += 1
            if kind is not None:
                breakdown.fp_extraction_kinds[kind.value] += 1
            breakdown.fp_examples.setdefault(category, triple)
        elif probability <= fn_threshold and label:
            breakdown.n_false_negatives += 1
            category = _categorize_fn(
                scenario, triple, gold_true_by_item[triple.data_item]
            )
            breakdown.fn_categories[category] += 1
            breakdown.fn_examples.setdefault(category, triple)
    return breakdown
