"""Distribution statistics behind the paper's tables and figures.

Generic building blocks (skew summaries, accuracy-by-integer-count,
histograms) plus the specific slices used by Figures 4-7, 16, 18, 20-22.
All functions take plain data (triples, gold labels, extraction records)
so they are reusable outside the packaged experiments.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.extract.records import ExtractionRecord
from repro.kb.triples import Triple

__all__ = [
    "skew_summary",
    "accuracy_by_int",
    "bucketize_accuracy",
    "probability_histogram",
    "truth_count_distribution",
    "confidence_accuracy_curve",
    "confidence_coverage_curve",
    "coverage_by_confidence_threshold",
    "triple_support",
]


def skew_summary(counts: Sequence[int]) -> dict[str, float]:
    """Mean / median / min / max — the Table 1 skew row format."""
    if not counts:
        raise EvaluationError("skew_summary needs at least one count")
    array = np.asarray(counts, dtype=float)
    return {
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "min": float(array.min()),
        "max": float(array.max()),
    }


@dataclass(frozen=True)
class AccuracyPoint:
    """One x-bucket of an accuracy curve."""

    x: float
    n: int
    accuracy: float


def accuracy_by_int(
    pairs: Iterable[tuple[int, bool]],
    max_exact: int | None = None,
) -> list[AccuracyPoint]:
    """Accuracy grouped by an integer covariate (e.g. #extractors).

    ``max_exact`` folds every count ≥ max_exact into one bucket (Figure 6
    stops at 9 extractors).
    """
    groups: dict[int, list[bool]] = defaultdict(list)
    for count, label in pairs:
        key = count if max_exact is None else min(count, max_exact)
        groups[key].append(label)
    return [
        AccuracyPoint(x=float(k), n=len(v), accuracy=sum(v) / len(v))
        for k, v in sorted(groups.items())
    ]


def bucketize_accuracy(
    pairs: Iterable[tuple[float, bool]],
    edges: Sequence[float],
) -> list[AccuracyPoint]:
    """Accuracy grouped by a float covariate over half-open buckets.

    ``edges`` are ascending bucket starts; a value lands in the last edge
    whose start it reaches.  Bucket x is reported as its start.
    """
    if not edges:
        raise EvaluationError("bucketize_accuracy needs bucket edges")
    sorted_edges = sorted(edges)
    groups: dict[float, list[bool]] = defaultdict(list)
    for value, label in pairs:
        bucket = sorted_edges[0]
        for edge in sorted_edges:
            if value >= edge:
                bucket = edge
            else:
                break
        groups[bucket].append(label)
    return [
        AccuracyPoint(x=float(k), n=len(v), accuracy=sum(v) / len(v))
        for k, v in sorted(groups.items())
    ]


def probability_histogram(
    probabilities: dict[Triple, float], n_buckets: int = 20
) -> list[tuple[float, float]]:
    """Fraction of triples per predicted-probability bucket (Figure 16)."""
    if not probabilities:
        raise EvaluationError("no probabilities to histogram")
    counts = [0] * (n_buckets + 1)
    for probability in probabilities.values():
        index = n_buckets if probability >= 1.0 else int(probability * n_buckets)
        counts[index] += 1
    total = len(probabilities)
    return [(i / n_buckets, c / total) for i, c in enumerate(counts)]


def truth_count_distribution(
    truth_counts: Iterable[int], max_exact: int = 5
) -> list[tuple[str, float]]:
    """Share of data items per #truths (Figure 20); folds >max into one bin."""
    counter: Counter = Counter()
    total = 0
    for count in truth_counts:
        key = str(count) if count <= max_exact else f">{max_exact}"
        counter[key] += 1
        total += 1
    if total == 0:
        raise EvaluationError("no truth counts given")
    order = [str(i) for i in range(0, max_exact + 1)] + [f">{max_exact}"]
    return [(key, counter.get(key, 0) / total) for key in order]


def confidence_accuracy_curve(
    records: Iterable[ExtractionRecord],
    gold: dict[Triple, bool],
    n_buckets: int = 10,
) -> list[AccuracyPoint]:
    """Accuracy by extraction-confidence bucket (Figure 21, right panel).

    Records without a confidence are excluded (the paper's no-confidence
    extractors are likewise absent from its Figure 21).
    """
    pairs = [
        (record.confidence, gold[record.triple])
        for record in records
        if record.confidence is not None and record.triple in gold
    ]
    edges = [i / n_buckets for i in range(n_buckets)]
    return bucketize_accuracy(pairs, edges)


def confidence_coverage_curve(
    records: Iterable[ExtractionRecord], n_buckets: int = 10
) -> list[tuple[float, float]]:
    """Cumulative share of records with confidence ≤ x (Figure 21, left)."""
    confidences = sorted(
        record.confidence for record in records if record.confidence is not None
    )
    if not confidences:
        raise EvaluationError("no records carry a confidence")
    total = len(confidences)
    points = []
    for i in range(n_buckets + 1):
        x = i / n_buckets
        covered = sum(1 for c in confidences if c <= x)
        points.append((x, covered / total))
    return points


def coverage_by_confidence_threshold(
    records: Iterable[ExtractionRecord],
    thresholds: Sequence[float] = tuple(i / 10 for i in range(1, 11)),
) -> list[tuple[float, float]]:
    """Share of unique triples retained when filtering by confidence ≥ t
    (Figure 22).  A triple survives if *any* of its records does; records
    without confidence count as unfiltered support (they cannot be
    filtered by a confidence they don't have)."""
    by_triple: dict[Triple, list[float | None]] = defaultdict(list)
    for record in records:
        by_triple[record.triple].append(record.confidence)
    if not by_triple:
        raise EvaluationError("no records given")
    total = len(by_triple)
    points = []
    for threshold in thresholds:
        kept = sum(
            1
            for confs in by_triple.values()
            if any(c is None or c >= threshold for c in confs)
        )
        points.append((threshold, kept / total))
    return points


def triple_support(
    records: Iterable[ExtractionRecord],
) -> dict[Triple, dict[str, int]]:
    """Per-triple support counts: #extractors, #urls, #(extractor, url).

    The covariates of Figures 6, 7 and 18.
    """
    extractors: dict[Triple, set[str]] = defaultdict(set)
    urls: dict[Triple, set[str]] = defaultdict(set)
    pairs: dict[Triple, set[tuple[str, str]]] = defaultdict(set)
    for record in records:
        extractors[record.triple].add(record.extractor)
        urls[record.triple].add(record.url)
        pairs[record.triple].add((record.extractor, record.url))
    return {
        triple: {
            "extractors": len(extractors[triple]),
            "urls": len(urls[triple]),
            "provenances": len(pairs[triple]),
        }
        for triple in extractors
    }
