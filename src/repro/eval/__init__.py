"""Evaluation: metrics and analyses from §4.2 and §4.4.

- :mod:`repro.eval.calibration` — calibration curves, deviation, weighted
  deviation (the paper's primary quality measure);
- :mod:`repro.eval.pr` — precision-recall curves and AUC-PR;
- :mod:`repro.eval.kappa` — the extractor-correlation Kappa measure of
  Eq. (1) / Figure 19;
- :mod:`repro.eval.stats` — the accuracy-by-X curves behind Figures 4-7,
  16, 18, 20-22 and the skew summaries of Table 1;
- :mod:`repro.eval.analysis` — automated error categorisation (Figure 17),
  possible here because the scenario knows the true cause of every error.
"""

from repro.eval.calibration import (
    CalibrationCurve,
    calibration_curve,
    deviation,
    weighted_deviation,
)
from repro.eval.pr import PRCurve, pr_curve, auc_pr
from repro.eval.kappa import kappa
from repro.eval.analysis import ErrorBreakdown, analyze_errors
from repro.eval.gold import GoldStandard

__all__ = [
    "GoldStandard",
    "CalibrationCurve",
    "calibration_curve",
    "deviation",
    "weighted_deviation",
    "PRCurve",
    "pr_curve",
    "auc_pr",
    "kappa",
    "ErrorBreakdown",
    "analyze_errors",
]
