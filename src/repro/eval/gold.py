"""Gold-standard wrapper: sliced views over LCWA labels.

The raw gold standard is a ``dict[Triple, bool]``; experiments repeatedly
need the same derived views — accuracy over a triple set, per-predicate
slices, per-data-item truth counts, coverage.  :class:`GoldStandard` wraps
the dict with those views (computed lazily, cached), so experiment code
stops re-deriving them ad hoc.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import EvaluationError
from repro.kb.triples import DataItem, Triple

__all__ = ["GoldStandard"]


@dataclass
class GoldStandard:
    """LCWA labels plus derived views."""

    labels: dict[Triple, bool]
    _by_predicate: dict[str, list[Triple]] | None = field(
        default=None, repr=False
    )
    _true_counts: Counter | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self.labels

    def label(self, triple: Triple) -> bool | None:
        return self.labels.get(triple)

    # ------------------------------------------------------------------
    def accuracy(self, triples: Iterable[Triple]) -> float | None:
        """Fraction of the labelled subset of ``triples`` that is true."""
        labelled = [self.labels[t] for t in triples if t in self.labels]
        if not labelled:
            return None
        return sum(labelled) / len(labelled)

    def coverage(self, triples: Iterable[Triple]) -> float:
        """Fraction of ``triples`` that carry a label."""
        triples = list(triples)
        if not triples:
            raise EvaluationError("coverage of an empty triple set is undefined")
        return sum(1 for t in triples if t in self.labels) / len(triples)

    # ------------------------------------------------------------------
    def by_predicate(self) -> dict[str, list[Triple]]:
        """Labelled triples grouped by predicate (cached)."""
        if self._by_predicate is None:
            grouped: dict[str, list[Triple]] = defaultdict(list)
            for triple in self.labels:
                grouped[triple.predicate].append(triple)
            self._by_predicate = dict(grouped)
        return self._by_predicate

    def predicate_accuracy(self, min_labelled: int = 1) -> dict[str, float]:
        """Per-predicate accuracy over predicates with enough labels."""
        result = {}
        for predicate, triples in self.by_predicate().items():
            if len(triples) >= min_labelled:
                accuracy = self.accuracy(triples)
                if accuracy is not None:
                    result[predicate] = accuracy
        return result

    # ------------------------------------------------------------------
    def truth_counts(self) -> Counter:
        """#gold-true triples per labelled data item (Figure 20's input)."""
        if self._true_counts is None:
            counts: Counter = Counter()
            for triple, label in self.labels.items():
                counts.setdefault(triple.data_item, 0)
                if label:
                    counts[triple.data_item] += 1
            self._true_counts = counts
        return self._true_counts

    def items_with_truths(self, at_least: int = 1) -> list[DataItem]:
        return [
            item
            for item, count in self.truth_counts().items()
            if count >= at_least
        ]

    def true_triples(self) -> list[Triple]:
        return [t for t, label in self.labels.items() if label]

    def false_triples(self) -> list[Triple]:
        return [t for t, label in self.labels.items() if not label]
