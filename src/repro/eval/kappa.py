"""The extractor-correlation Kappa measure, Eq. (1) of the paper.

For two extractors' triple sets ``T1, T2`` within an overall set ``KB``:

    κ = (|T1 ∩ T2|·|KB| − |T1|·|T2|) / (|KB|² − |T1|·|T2|)

"A positive Kappa measure indicates positive correlation; a negative one
indicates negative correlation; and one close to 0 indicates independence."
Figure 19 plots its distribution over all extractor pairs, split by whether
the pair targets the same type of web content.
"""

from __future__ import annotations

from typing import Collection, Hashable

from repro.errors import EvaluationError

__all__ = ["kappa"]


def kappa(
    t1: Collection[Hashable],
    t2: Collection[Hashable],
    universe: Collection[Hashable],
) -> float:
    """Eq. (1): correlation of two triple sets within ``universe``."""
    set1, set2, kb = set(t1), set(t2), set(universe)
    if not kb:
        raise EvaluationError("kappa needs a non-empty universe")
    if not set1 <= kb or not set2 <= kb:
        raise EvaluationError("kappa operands must be subsets of the universe")
    n1, n2, n_kb = len(set1), len(set2), len(kb)
    denominator = n_kb * n_kb - n1 * n2
    if denominator == 0:
        # Both sets are the whole universe: perfectly correlated.
        return 1.0
    intersection = len(set1 & set2)
    return (intersection * n_kb - n1 * n2) / denominator
