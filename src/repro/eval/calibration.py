"""Calibration curves, deviation and weighted deviation (§4.2).

The paper buckets triples by predicted probability — ``l = 20`` equal-width
buckets ``[i/l, (i+1)/l)`` plus a dedicated bucket for probability exactly
1.0 — and compares each bucket's *real probability* (fraction of gold-true
triples) to its predicted centre:

- **deviation**: mean squared (predicted − real) over non-empty buckets;
- **weighted deviation**: the same, weighting each bucket by its triple
  count — "essentially the average square loss of each predicted
  probability".

Only gold-labelled triples participate; unlabelled triples are invisible to
the metric, exactly as in the paper's gold-standard protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.kb.triples import Triple

__all__ = [
    "CalibrationBucket",
    "CalibrationCurve",
    "calibration_curve",
    "deviation",
    "weighted_deviation",
]

DEFAULT_BUCKETS = 20


@dataclass(frozen=True)
class CalibrationBucket:
    """One probability bucket.

    ``predicted`` is the mean predicted probability of the bucket's triples
    (the paper plots bucket centres; the mean is strictly more faithful to
    the data and converges to the centre for dense buckets).
    """

    low: float
    high: float
    count: int
    predicted: float
    real: float


@dataclass(frozen=True)
class CalibrationCurve:
    """All buckets of one method's predictions."""

    buckets: tuple[CalibrationBucket, ...]
    n_labelled: int

    def points(self) -> list[tuple[float, float]]:
        """(predicted, real) pairs for non-empty buckets — the plotted curve."""
        return [(b.predicted, b.real) for b in self.buckets if b.count > 0]

    def deviation(self) -> float:
        return deviation(self)

    def weighted_deviation(self) -> float:
        return weighted_deviation(self)


def calibration_curve(
    probabilities: dict[Triple, float],
    gold: dict[Triple, bool],
    n_buckets: int = DEFAULT_BUCKETS,
) -> CalibrationCurve:
    """Bucket ``probabilities`` against ``gold`` labels.

    Buckets 0..n-1 cover ``[i/n, (i+1)/n)``; bucket n holds exactly 1.0.
    """
    if n_buckets < 1:
        raise EvaluationError(f"n_buckets must be >= 1, got {n_buckets}")
    sums = [0.0] * (n_buckets + 1)
    trues = [0] * (n_buckets + 1)
    counts = [0] * (n_buckets + 1)
    for triple, probability in probabilities.items():
        label = gold.get(triple)
        if label is None:
            continue
        if not 0.0 <= probability <= 1.0:
            raise EvaluationError(
                f"probability out of range for {triple.canonical()}: {probability}"
            )
        if probability >= 1.0:
            index = n_buckets
        else:
            index = int(probability * n_buckets)
        counts[index] += 1
        sums[index] += probability
        trues[index] += int(label)
    buckets = []
    for index in range(n_buckets + 1):
        low = index / n_buckets if index < n_buckets else 1.0
        high = (index + 1) / n_buckets if index < n_buckets else 1.0
        count = counts[index]
        buckets.append(
            CalibrationBucket(
                low=low,
                high=high,
                count=count,
                predicted=(sums[index] / count) if count else (low + high) / 2,
                real=(trues[index] / count) if count else 0.0,
            )
        )
    return CalibrationCurve(buckets=tuple(buckets), n_labelled=sum(counts))


def deviation(curve: CalibrationCurve) -> float:
    """Mean squared bucket error over non-empty buckets."""
    populated = [b for b in curve.buckets if b.count > 0]
    if not populated:
        raise EvaluationError("calibration curve has no labelled triples")
    return sum((b.predicted - b.real) ** 2 for b in populated) / len(populated)


def weighted_deviation(curve: CalibrationCurve) -> float:
    """Triple-count-weighted mean squared bucket error."""
    populated = [b for b in curve.buckets if b.count > 0]
    if not populated:
        raise EvaluationError("calibration curve has no labelled triples")
    total = sum(b.count for b in populated)
    return sum(b.count * (b.predicted - b.real) ** 2 for b in populated) / total
