"""Precision-recall curves and AUC-PR (§4.2).

"We order the triples in decreasing order of the predicted probability.
As we gradually add new triples, we plot the precision versus the recall
of the considered triples."  Ties in predicted probability are handled as
one block (the curve gains a single point per distinct threshold), and the
area is the trapezoid integral over recall — the standard treatment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.kb.triples import Triple

__all__ = ["PRCurve", "pr_curve", "auc_pr"]


@dataclass(frozen=True)
class PRCurve:
    """Precision/recall points in threshold order (recall increasing)."""

    recalls: tuple[float, ...]
    precisions: tuple[float, ...]
    n_true: int
    n_labelled: int

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.recalls, self.precisions))

    def auc(self) -> float:
        return auc_pr(self)


def pr_curve(
    probabilities: dict[Triple, float], gold: dict[Triple, bool]
) -> PRCurve:
    """PR curve of ``probabilities`` against ``gold``."""
    scored = [
        (probability, gold[triple])
        for triple, probability in probabilities.items()
        if triple in gold
    ]
    if not scored:
        raise EvaluationError("no labelled triples to build a PR curve from")
    n_true = sum(1 for _p, label in scored if label)
    if n_true == 0:
        raise EvaluationError("no true triples in the gold standard slice")
    scored.sort(key=lambda pair: -pair[0])

    recalls: list[float] = []
    precisions: list[float] = []
    seen = 0
    seen_true = 0
    index = 0
    while index < len(scored):
        # Consume a whole tie-block at once.
        threshold = scored[index][0]
        while index < len(scored) and scored[index][0] == threshold:
            seen += 1
            seen_true += int(scored[index][1])
            index += 1
        recalls.append(seen_true / n_true)
        precisions.append(seen_true / seen)
    return PRCurve(
        recalls=tuple(recalls),
        precisions=tuple(precisions),
        n_true=n_true,
        n_labelled=len(scored),
    )


def auc_pr(curve: PRCurve) -> float:
    """Trapezoid area under the PR curve (anchored at recall 0)."""
    recalls = (0.0, *curve.recalls)
    precisions = (curve.precisions[0], *curve.precisions)
    area = 0.0
    for i in range(1, len(recalls)):
        width = recalls[i] - recalls[i - 1]
        area += width * (precisions[i] + precisions[i - 1]) / 2.0
    return area
