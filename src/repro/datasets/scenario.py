"""Scenario: the one-stop bundle for fusion experiments.

``build_scenario(config)`` generates (deterministically, from one seed):

1. the latent :class:`~repro.world.facts.World`;
2. the Freebase snapshot (imperfect reference KB);
3. the :class:`~repro.world.webgen.WebCorpus`;
4. the two shared entity linkers and the 12 extractors;
5. all extraction records, with injected-error classification;
6. the LCWA gold standard over the unique extracted triples.

Scenarios are cached in-process by config, because every benchmark and
experiment shares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.artifacts import setup_worldgen
from repro.datasets.profiles import EXTRACTOR_PROFILES
from repro.extract.base import ExtractorProfile
from repro.extract.linkage import EntityLinker
from repro.extract.pipeline import ExtractionPipeline, build_extractor
from repro.extract.records import ExtractionRecord
from repro.fusion.observations import FusionInput
from repro.kb.lcwa import LCWALabeler
from repro.kb.store import KnowledgeBase
from repro.kb.triples import Triple
from repro.world.config import WebConfig, WorldConfig
from repro.world.facts import World
from repro.world.labels import build_templates
from repro.world.webgen import WebCorpus

__all__ = [
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "build_extraction_pipeline",
    "label_gold",
    "label_gold_triples",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that determines a scenario, hashable for caching."""

    seed: int = 0
    world: WorldConfig = field(default_factory=WorldConfig)
    web: WebConfig = field(default_factory=WebConfig)
    extractors: tuple[ExtractorProfile, ...] = EXTRACTOR_PROFILES

    def cache_key(self) -> str:
        return repr((self.seed, self.world, self.web, self.extractors))


@dataclass
class Scenario:
    """A fully generated experimental environment."""

    config: ScenarioConfig
    world: World
    freebase: KnowledgeBase
    corpus: WebCorpus
    pipeline: ExtractionPipeline
    records: list[ExtractionRecord]
    gold: dict[Triple, bool]

    _fusion_input: FusionInput | None = field(default=None, repr=False)

    def fusion_input(self) -> FusionInput:
        """The (cached) fusion input over all extraction records."""
        if self._fusion_input is None:
            self._fusion_input = FusionInput(self.records)
        return self._fusion_input

    def unique_triples(self) -> list[Triple]:
        return self.fusion_input().unique_triples()

    def labeler(self) -> LCWALabeler:
        return LCWALabeler(self.freebase)

    def page_by_url(self, url: str):
        for page in self.corpus.pages:
            if page.url == url:
                return page
        raise KeyError(url)

    # ------------------------------------------------------------------
    # Headline statistics (Table 1 shape)
    # ------------------------------------------------------------------
    def extraction_stats(self) -> dict[str, float]:
        unique = self.unique_triples()
        labelled = [t for t in unique if t in self.gold]
        true_count = sum(1 for t in labelled if self.gold[t])
        return {
            "extracted_records": len(self.records),
            "unique_triples": len(unique),
            "data_items": len({t.data_item for t in unique}),
            "gold_coverage": len(labelled) / len(unique) if unique else 0.0,
            "gold_accuracy": true_count / len(labelled) if labelled else 0.0,
        }


_SCENARIO_CACHE: dict[str, Scenario] = {}


def build_extraction_pipeline(config: ScenarioConfig, world: World) -> ExtractionPipeline:
    """The 12-extractor pipeline for ``config`` over an already-built world
    (shared by :func:`build_scenario` and the ``repro-kf extract`` CLI)."""
    templates = build_templates(world.schema)
    linkers = {
        name: EntityLinker(
            name=name,
            registry=world.entities,
            popularity=world.popularity,
            seed=config.seed,
        )
        for name in ("EL-A", "EL-B")
    }
    extractors = [
        build_extractor(
            profile, world.schema, linkers[profile.linker], templates, config.seed
        )
        for profile in config.extractors
    ]
    return ExtractionPipeline(extractors)


def label_gold(
    freebase: KnowledgeBase, records: list[ExtractionRecord]
) -> dict[Triple, bool]:
    """The LCWA gold standard over the unique extracted triples.

    One definition shared by :func:`build_scenario` and
    :func:`repro.endtoend.run_end_to_end`, so the two construction paths
    cannot drift.
    """
    return label_gold_triples(freebase, sorted({record.triple for record in records}))


def label_gold_triples(
    freebase: KnowledgeBase, unique: list[Triple]
) -> dict[Triple, bool]:
    """LCWA labels for an already-deduplicated sorted triple list.

    The streaming pipeline never holds its extraction records, only the
    accumulated claim rows — this is :func:`label_gold` with the
    dedup/sort step supplied by the caller (the rows are exactly the
    unique triples, so the two definitions coincide).
    """
    return LCWALabeler(freebase).label_many(unique)


def build_scenario(
    config: ScenarioConfig,
    use_cache: bool = True,
    backend: str = "serial",
    n_workers: int | None = None,
    executor=None,
    cache_dir: str | Path | None = None,
) -> Scenario:
    """Generate (or fetch from cache) the scenario for ``config``.

    ``backend`` selects the extraction execution backend (``serial`` or
    ``parallel``); the records are bit-identical either way, so it is not
    part of the cache key.  ``executor`` optionally supplies a
    caller-managed executor for the extraction stage (the caller closes
    it), for callers that share one worker pool across scenario builds or
    with downstream fusion.  (:func:`repro.endtoend.run_end_to_end`
    builds the stages directly — it needs per-stage timings — but shares
    :func:`build_extraction_pipeline` and :func:`label_gold` with this
    path.)

    ``cache_dir`` points worldgen at the on-disk scenario artifact cache
    (:func:`repro.artifacts.setup_worldgen`): a hit loads the world,
    Freebase snapshot and corpus bit-identically in milliseconds, a miss
    generates them and publishes the artifact for next time.  It layers
    under the in-process ``use_cache`` — the in-process cache still wins
    when warm, and the artifact key already covers everything worldgen
    depends on (seed, configs, code version), so ``cache_dir`` is not
    part of the in-process key.
    """
    key = config.cache_key()
    if use_cache and key in _SCENARIO_CACHE:
        return _SCENARIO_CACHE[key]

    world, freebase, corpus, _status = setup_worldgen(
        config.seed, config.world, config.web, cache_dir
    )

    pipeline = build_extraction_pipeline(config, world)
    records = pipeline.run(
        corpus, backend=backend, n_workers=n_workers, executor=executor
    )

    gold = label_gold(freebase, records)

    scenario = Scenario(
        config=config,
        world=world,
        freebase=freebase,
        corpus=corpus,
        pipeline=pipeline,
        records=records,
        gold=gold,
    )
    if use_cache:
        _SCENARIO_CACHE[key] = scenario
    return scenario
