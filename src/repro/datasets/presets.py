"""Scenario size presets.

- ``tiny``: seconds to build; unit/integration tests.
- ``small``: the default experiment scale (~10⁵ extraction records); all
  benchmarks run against it.
- ``medium``: a few × larger for stability checks of the headline results.
- ``web``: the out-of-core tier (~10⁶ extraction records); only the
  streaming pipeline (:func:`repro.endtoend.run_streaming_pipeline`)
  runs it in bounded memory — see ``docs/SCALING.md``.

All presets keep the paper's *shape* knobs (skew exponents, error rates,
content mix) identical — only the budget scales, so statistics computed on
``small`` and ``medium`` should agree in shape.
"""

from __future__ import annotations

from repro.datasets.scenario import ScenarioConfig
from repro.world.config import WebConfig, WorldConfig

__all__ = [
    "tiny_config",
    "small_config",
    "medium_config",
    "web_config",
    "STREAMING_SCALES",
]

#: Scale names whose corpus must be streamed, never materialised; the
#: CLI/bench route these through the streaming pipeline.
STREAMING_SCALES = frozenset({"web"})


def tiny_config(seed: int = 0) -> ScenarioConfig:
    """A scenario that builds in well under a second."""
    return ScenarioConfig(
        seed=seed,
        world=WorldConfig(n_types=6, n_entities=120),
        web=WebConfig(n_sites=12, n_pages=80),
    )


def small_config(seed: int = 0) -> ScenarioConfig:
    """The default experiment scale (used by all benchmarks)."""
    return ScenarioConfig(
        seed=seed,
        world=WorldConfig(n_types=12, n_entities=1500),
        web=WebConfig(n_sites=150, n_pages=2500),
    )


def medium_config(seed: int = 0) -> ScenarioConfig:
    """A few × larger; for stability checks of headline results."""
    return ScenarioConfig(
        seed=seed,
        world=WorldConfig(n_types=12, n_entities=4000),
        web=WebConfig(n_sites=400, n_pages=8000),
    )


def web_config(seed: int = 0) -> ScenarioConfig:
    """The out-of-core tier: ~10⁶ extraction records (~28× ``small``).

    Sized so the *materialised* corpus + record list would be multiple
    gigabytes — the point of the tier is that the streaming pipeline
    never holds them.  Build it with chunked generation + extraction and
    mapped claim columns only.
    """
    return ScenarioConfig(
        seed=seed,
        world=WorldConfig(n_types=12, n_entities=6000),
        web=WebConfig(n_sites=800, n_pages=72_000),
    )
