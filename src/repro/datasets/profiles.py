"""The 12 extractor profiles, calibrated against Table 2.

The paper's extractors differ along: which content they parse, which pages
they run on, how many patterns they have, how often those patterns are
wrong, how careful their structural handling is, which shared linker they
use (and whether they pass type hints), and how they report confidence.
The profiles below encode those differences; the resulting per-extractor
accuracies and volume ordering are validated against Table 2 in
``tests/integration`` and reported in EXPERIMENTS.md.

Paper reference points (Table 2):

====== ======== ===== ============== ====================
name   #Triples Accu  Accu(conf≥.7)  notes
====== ======== ===== ============== ====================
TXT1   274M     0.36  0.52           all pages, mediocre confidence
TXT2   31M      0.18  0.80           normal pages; noisy but well-calibrated
TXT3   8.8M     0.25  0.81           newswire
TXT4   2.9M     0.78  0.91           Wikipedia; precise
DOM1   804M     0.43  0.63           all pages, patterned
DOM2   431M     0.09  0.62           all pages, sloppy; extreme confidence
DOM3   45M      0.58  0.93           entity-type focussed; careful
DOM4   52M      0.26  0.34           literal-value focussed; sloppy
DOM5   0.7M     0.13  (no conf)      Wikipedia only, poor
TBL1   3.1M     0.24  0.24           naive header mapping
TBL2   7.4M     0.69  (no conf)      value-based schema mapping
ANO    145M     0.28  0.30           corrupted ontology map
====== ======== ===== ============== ====================
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.extract.base import ExtractorProfile

__all__ = ["EXTRACTOR_PROFILES", "profile_by_name"]


EXTRACTOR_PROFILES: tuple[ExtractorProfile, ...] = (
    # ----------------------------------------------------------------- TXT
    ExtractorProfile(
        name="TXT1",
        content_types=("TXT",),
        site_categories=None,  # "a different implementation, runs on all Webpages"
        page_coverage=0.92,
        linker="EL-A",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        pattern_coverage=0.85,
        wrong_predicate_rate=0.14,
        reliability_mean=0.4,
        reliability_concentration=5.0,
        mangle_rate=0.6,
        misgrab_rate=0.85,
        confidence="centered",
    ),
    ExtractorProfile(
        name="TXT2",
        content_types=("TXT",),
        site_categories=("general",),  # "normal Webpages"
        page_coverage=0.85,
        linker="EL-A",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        pattern_coverage=0.95,
        wrong_predicate_rate=0.45,  # many learned-but-wrong patterns...
        reliability_mean=0.26,
        reliability_concentration=1.6,  # ...with a wide reliability spread,
        mangle_rate=0.5,
        misgrab_rate=0.95,
        confidence="calibrated",  # which a good confidence model separates
    ),
    ExtractorProfile(
        name="TXT3",
        content_types=("TXT",),
        site_categories=("news",),  # "newswire"
        page_coverage=0.95,
        linker="EL-A",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=False,
        string_fallback=True,
        pattern_coverage=0.9,
        wrong_predicate_rate=0.3,
        reliability_mean=0.3,
        reliability_concentration=2.0,
        mangle_rate=0.4,
        misgrab_rate=0.92,
        confidence="calibrated",
    ),
    ExtractorProfile(
        name="TXT4",
        content_types=("TXT",),
        site_categories=("wiki",),  # "Wikipedia"
        page_coverage=1.0,
        linker="EL-A",
        use_type_hints=True,
        kind_checking=True,
        handles_merged=True,
        naive_dates=False,
        string_fallback=False,
        pattern_coverage=0.8,
        wrong_predicate_rate=0.02,
        reliability_mean=0.85,
        reliability_concentration=18.0,
        mangle_rate=0.15,
        misgrab_rate=0.55,
        confidence="calibrated",
    ),
    # ----------------------------------------------------------------- DOM
    ExtractorProfile(
        name="DOM1",
        content_types=("DOM", "TBL"),  # a tree-walker also sees tables
        site_categories=None,
        page_coverage=0.95,
        linker="EL-A",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=False,
        string_fallback=True,
        wrong_predicate_rate=0.08,
        reliability_mean=0.5,
        reliability_concentration=6.0,
        mangle_rate=0.25,
        misgrab_rate=0.78,
        confidence="calibrated",
    ),
    ExtractorProfile(
        name="DOM2",
        content_types=("DOM", "TBL"),
        site_categories=None,
        page_coverage=0.85,
        linker="EL-A",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        wrong_predicate_rate=0.3,
        reliability_mean=0.15,
        reliability_concentration=3.0,
        mangle_rate=0.8,
        misgrab_rate=1.0,
        confidence="extreme",
        global_label_map=True,  # cross-type label collisions
    ),
    ExtractorProfile(
        name="DOM3",
        content_types=("DOM",),
        site_categories=None,  # "focus on identifying entity types"
        page_coverage=0.4,
        linker="EL-B",
        use_type_hints=True,
        kind_checking=True,
        handles_merged=True,
        naive_dates=False,
        string_fallback=False,
        wrong_predicate_rate=0.03,
        reliability_mean=0.6,
        reliability_concentration=5.0,
        mangle_rate=0.05,
        misgrab_rate=0.55,
        confidence="calibrated",
        value_kinds=("entity",),
    ),
    ExtractorProfile(
        name="DOM4",
        content_types=("DOM",),
        site_categories=None,
        page_coverage=0.45,
        linker="EL-B",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        wrong_predicate_rate=0.22,
        reliability_mean=0.3,
        reliability_concentration=4.0,
        mangle_rate=0.45,
        misgrab_rate=0.95,
        confidence="centered",
        value_kinds=("string", "number", "date"),
    ),
    ExtractorProfile(
        name="DOM5",
        content_types=("DOM",),
        site_categories=("wiki",),  # "runs only on Wikipedia"
        page_coverage=0.6,
        linker="EL-B",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        wrong_predicate_rate=0.4,
        reliability_mean=0.15,
        reliability_concentration=3.0,
        mangle_rate=0.7,
        misgrab_rate=1.0,
        confidence="none",
        global_label_map=True,
    ),
    # ----------------------------------------------------------------- TBL
    ExtractorProfile(
        name="TBL1",
        content_types=("TBL",),
        site_categories=None,
        page_coverage=0.8,
        linker="EL-B",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        wrong_predicate_rate=0.0,  # errors come from ambiguous headers
        reliability_mean=0.5,
        reliability_concentration=5.0,
        mangle_rate=0.2,
        misgrab_rate=0.8,
        confidence="peaked",
        detect_subject_col=False,
        type_aware_headers=False,
    ),
    ExtractorProfile(
        name="TBL2",
        content_types=("TBL",),
        site_categories=None,
        page_coverage=0.95,
        linker="EL-B",
        use_type_hints=True,
        kind_checking=True,
        handles_merged=False,
        naive_dates=False,
        string_fallback=False,
        wrong_predicate_rate=0.0,
        reliability_mean=0.8,
        reliability_concentration=10.0,
        mangle_rate=0.05,
        misgrab_rate=0.1,
        confidence="none",
        detect_subject_col=True,
        type_aware_headers=True,
    ),
    # ----------------------------------------------------------------- ANO
    ExtractorProfile(
        name="ANO",
        content_types=("ANO",),
        site_categories=None,
        page_coverage=0.92,
        linker="EL-A",
        use_type_hints=False,
        kind_checking=False,
        handles_merged=False,
        naive_dates=True,
        string_fallback=True,
        pattern_coverage=0.8,  # the semi-automatic map has holes...
        wrong_predicate_rate=0.35,  # ...and wrong entries
        reliability_mean=0.3,
        reliability_concentration=4.0,
        mangle_rate=0.4,
        misgrab_rate=0.9,
        confidence="uninformative",
    ),
)


def profile_by_name(name: str) -> ExtractorProfile:
    """Look up one of the 12 built-in profiles."""
    for profile in EXTRACTOR_PROFILES:
        if profile.name == name:
            return profile
    raise ConfigError(
        f"unknown extractor {name!r}; available: "
        f"{[p.name for p in EXTRACTOR_PROFILES]}"
    )
