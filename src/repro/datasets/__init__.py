"""Scenario builders: world → web → extraction → gold standard.

A :class:`~repro.datasets.scenario.Scenario` bundles everything one fusion
experiment needs: the latent world, the web corpus, the Freebase snapshot,
the 12 extractors' output and the LCWA gold standard.  Presets provide
laptop-scale configurations (``tiny`` for tests, ``small`` for benches,
``medium`` for longer runs); profiles carry the per-extractor knobs
calibrated against the paper's Table 2.
"""

from repro.datasets.profiles import EXTRACTOR_PROFILES, profile_by_name
from repro.datasets.presets import (
    STREAMING_SCALES,
    medium_config,
    small_config,
    tiny_config,
    web_config,
)
from repro.datasets.scenario import (
    Scenario,
    ScenarioConfig,
    build_extraction_pipeline,
    build_scenario,
)

__all__ = [
    "EXTRACTOR_PROFILES",
    "profile_by_name",
    "tiny_config",
    "small_config",
    "medium_config",
    "web_config",
    "STREAMING_SCALES",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "build_extraction_pipeline",
]
