"""Plain-text rendering helpers for experiment output.

Every experiment renders its result as the same kind of artifact the paper
prints: a small table of rows, or a series of (x, y) points.  These helpers
keep that rendering consistent across the 20+ experiment modules and the
CLI, and avoid any dependency on plotting libraries (the environment is
offline; the *numbers* are the deliverable).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _cell(value: object, float_digits: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned monospace table.

    Floats are formatted with ``float_digits`` decimals; all other values via
    ``str``.  Returns the table as a single string (no trailing newline).
    """
    rendered = [[_cell(v, float_digits) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Iterable[tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
    float_digits: int = 3,
) -> str:
    """Render a named (x, y) series, one point per line."""
    return format_table(
        [x_label, y_label], list(points), title=name, float_digits=float_digits
    )


def format_kv(pairs: Iterable[tuple[str, object]], float_digits: int = 3) -> str:
    """Render ``key: value`` lines with floats formatted consistently."""
    return "\n".join(f"{k}: {_cell(v, float_digits)}" for k, v in pairs)
