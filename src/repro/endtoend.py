"""The end-to-end pipeline: extraction → fusion on one shared executor.

The paper's system is one pipeline — extract triples from a web corpus,
then fuse them — and both stages here run on the same executor protocol
(:mod:`repro.mapreduce.executors`).  :func:`run_end_to_end` wires that up
explicitly: a single :class:`~repro.mapreduce.executors.ParallelExecutor`
(or :class:`~repro.mapreduce.executors.SerialExecutor`) carries the
extraction shards *and* every fusion round, so worker processes are paid
for once per run, not once per stage.  Pool-resident state makes the
hand-off cheap: extraction installs the 12-extractor fleet, fusion
installs the columnar claim index; the pool restarts exactly once at the
stage boundary and never re-ships state per shard.

``backend="parallel"`` output is **bit-identical to the serial path**:
the record stream, gold labels, fused probabilities, accuracies and
unpredicted set equal the serial reference exactly (the regression suite
asserts this at several worker counts and under both fork and spawn start
methods).  ``backend="hybrid"`` keeps extraction bit-identical but runs
fusion through the batched in-shard kernels, honouring the documented
1e-9 **tolerance** parity contract instead
(``result.diagnostics["parity"]`` records which contract applied).

``repro-kf pipeline`` is the CLI face of this function; the headline
metrics it reports (calibration deviation, AUC-PR, coverage) are the
quantities the golden regression test freezes for the ``small`` scenario.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.artifacts import setup_worldgen
from repro.datasets.scenario import (
    Scenario,
    ScenarioConfig,
    build_extraction_pipeline,
    label_gold,
    label_gold_triples,
)
from repro.errors import ConfigError
from repro.experiments.common import metrics_for
from repro.fusion.base import FusionConfig, FusionResult, Fuser
from repro.fusion.matrix import (
    ClaimAccumulator,
    ColumnarFusionInput,
    MappedColumnarClaims,
    persist_columns,
)
from repro.fusion.presets import accu, popaccu, popaccu_plus, popaccu_plus_unsup, vote
from repro.kb.triples import Triple
from repro.mapreduce.executors import Executor, ParallelExecutor, SerialExecutor
from repro.world.facts import build_freebase_snapshot
from repro.world.webgen import stream_corpus
from repro.world.worldgen import generate_world

__all__ = [
    "PIPELINE_BACKENDS",
    "PIPELINE_METHODS",
    "STREAMING_PIPELINE_BACKENDS",
    "EndToEndResult",
    "StreamingResult",
    "make_fuser",
    "peak_rss_mb",
    "run_end_to_end",
    "run_streaming_pipeline",
]

#: Fusion method presets the pipeline (and the CLI) can run.
PIPELINE_METHODS = ("vote", "accu", "popaccu", "popaccu+unsup", "popaccu+")

#: Execution backends the pipeline can run both stages under.
#: ``batched`` keeps the serial executor but routes extraction synthesis
#: through the vectorised kernels (fusion stays serial), so it is
#: bit-identical to ``serial`` end to end.  ``hybrid`` shares the
#: parallel executor across stages and runs batched kernels inside each
#: shard: extraction synthesis stays bitwise, fusion honours the
#: tolerance contract.
PIPELINE_BACKENDS = ("serial", "batched", "parallel", "hybrid")

#: Fusion backend each pipeline backend runs its fusion stage under.
#: ``batched`` is an extraction-stage notion — fusion has no
#: serial-executor batched mode, so it drops to plain serial (bitwise)
#: there.  DET006 audits this mapping: every pipeline backend must
#: resolve to a fusion backend with a declared parity contract.
_FUSION_BACKEND = {
    "serial": "serial",
    "batched": "serial",
    "parallel": "parallel",
    "hybrid": "hybrid",
}

#: Backends the *streaming* pipeline supports.  ``serial`` is excluded
#: by design: serial fusion materialises the dict claim views, which is
#: exactly what the out-of-core tier must never do (docs/SCALING.md has
#: the memory model).  Each remaining backend maps to a column-native
#: fusion backend with a declared parity contract — ``batched`` runs
#: fusion vectorized (the serial-executor column path), not serial.
STREAMING_PIPELINE_BACKENDS = ("batched", "parallel", "hybrid")

_STREAM_FUSION_BACKEND = {
    "batched": "vectorized",
    "parallel": "parallel",
    "hybrid": "hybrid",
}


def peak_rss_mb() -> float:
    """This process's peak resident set size, in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the web-tier
    bench envelope records this number and asserts it against the
    documented ceiling.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def make_fuser(
    method: str,
    config: FusionConfig,
    gold_labels: dict[Triple, bool] | None = None,
) -> Fuser:
    """Resolve a method name from :data:`PIPELINE_METHODS` to a fuser."""
    if method == "vote":
        return vote(config)
    if method == "accu":
        return accu(config)
    if method == "popaccu":
        return popaccu(config)
    if method == "popaccu+unsup":
        return popaccu_plus_unsup(config)
    if method == "popaccu+":
        return popaccu_plus(gold_labels, config)
    raise ConfigError(
        f"unknown fusion method {method!r}; expected one of {PIPELINE_METHODS}"
    )


@dataclass
class EndToEndResult:
    """Everything one pipeline run produced.

    ``timings`` holds per-stage wall-clock seconds under the keys
    ``setup`` (world + corpus + extractor construction), ``extraction``,
    ``labeling`` (LCWA gold), ``fusion``, and ``total``.  ``metrics``
    holds the headline numbers against the gold standard: calibration
    ``deviation`` / ``weighted_deviation``, ``auc_pr``, ``coverage``
    (fraction of unique triples scored), and ``gold_accuracy`` (fraction
    of gold-labelled predictions on the right side of p = 0.5).
    """

    scenario: Scenario
    fusion: FusionResult
    backend: str
    n_workers: int | None
    timings: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)


def headline_metrics(
    result: FusionResult, gold: dict[Triple, bool]
) -> dict[str, float]:
    """The frozen-by-the-golden-test summary of one fusion run.

    Delegates the calibration/PR numbers to
    :func:`repro.experiments.common.metrics_for` — the same derivation
    the figure experiments use — and adds the threshold accuracy.
    """
    metrics = metrics_for(result.probabilities, gold, coverage=result.coverage())
    labelled = [
        (probability, gold[triple])
        for triple, probability in result.probabilities.items()
        if triple in gold
    ]
    correct = sum(1 for probability, label in labelled if (probability >= 0.5) == label)
    return {
        "deviation": metrics.dev,
        "weighted_deviation": metrics.wdev,
        "auc_pr": metrics.auc_pr,
        "coverage": metrics.coverage,
        "gold_accuracy": correct / len(labelled) if labelled else 0.0,
        "n_labelled": len(labelled),
    }


def run_end_to_end(
    config: ScenarioConfig,
    method: str = "popaccu+",
    fusion_config: FusionConfig | None = None,
    backend: str = "serial",
    n_workers: int | None = None,
    executor: Executor | None = None,
    cache_dir: str | Path | None = None,
) -> EndToEndResult:
    """Run extraction → gold labeling → fusion on one shared executor.

    ``backend`` selects the execution mode for *both* stages: ``serial``,
    ``batched`` (serial executor, vectorised synthesis kernels —
    bit-identical to serial), ``parallel`` (bit-identical to serial), or
    ``hybrid`` (batched kernels inside each parallel shard for both
    stages — extraction synthesis stays bitwise-identical, fusion is
    tolerance parity; see :mod:`repro.fusion.runner`).  A
    caller-managed ``executor`` overrides the executor choice (and is not
    closed here).  The fusion configuration inherits the scenario seed
    and the requested backend unless ``fusion_config`` pins them
    explicitly.  ``cache_dir`` enables the on-disk scenario artifact
    cache (:func:`repro.artifacts.setup_worldgen`) for the setup stage —
    bit-identical to a fresh build; ``diagnostics["scenario_cache"]``
    reports ``hit`` / ``miss`` / ``off``.
    """
    if backend not in PIPELINE_BACKENDS:
        raise ConfigError(
            f"pipeline backend must be one of {PIPELINE_BACKENDS}, got {backend!r}"
        )
    if method not in PIPELINE_METHODS:
        # Validate up front: extraction at the larger scales is minutes of
        # work a typo should not get to waste.
        raise ConfigError(
            f"unknown fusion method {method!r}; expected one of {PIPELINE_METHODS}"
        )
    if fusion_config is None:
        fusion_config = FusionConfig(
            seed=config.seed, backend=_FUSION_BACKEND[backend], n_workers=n_workers
        )

    owns_executor = executor is None
    if executor is None:
        executor = (
            ParallelExecutor(max_workers=n_workers)
            if backend in ("parallel", "hybrid")
            else SerialExecutor()
        )
    # "hybrid" mirrors fusion's meaning for extraction too: parallel
    # shards whose synthesis runs the batched kernel (bitwise parity,
    # unlike fusion's tolerance parity).  "batched" passes through as
    # the serial-executor batched-synthesis mode.
    extraction_backend = {
        "serial": "serial",
        "batched": "batched",
        "hybrid": "hybrid",
    }.get(backend, "parallel")

    timings: dict[str, float] = {}
    start_total = time.perf_counter()
    try:
        start = time.perf_counter()
        world, freebase, corpus, cache_status = setup_worldgen(
            config.seed, config.world, config.web, cache_dir
        )
        pipeline = build_extraction_pipeline(config, world)
        timings["setup"] = time.perf_counter() - start

        start = time.perf_counter()
        records = pipeline.run(corpus, backend=extraction_backend, executor=executor)
        # pipeline.run withdraws the fleet from the shared executor at the
        # stage boundary, so the pool restart (when fusion installs the
        # claim columns) does not re-ship it to workers that never use it.
        timings["extraction"] = time.perf_counter() - start

        start = time.perf_counter()
        gold = label_gold(freebase, records)
        timings["labeling"] = time.perf_counter() - start

        scenario = Scenario(
            config=config,
            world=world,
            freebase=freebase,
            corpus=corpus,
            pipeline=pipeline,
            records=records,
            gold=gold,
        )

        start = time.perf_counter()
        fuser = make_fuser(method, fusion_config, gold)
        fusion_result = fuser.fuse(scenario.fusion_input(), executor=executor)
        timings["fusion"] = time.perf_counter() - start
    finally:
        if owns_executor:
            executor.close()
    timings["total"] = time.perf_counter() - start_total

    diagnostics = dict(fusion_result.diagnostics)
    diagnostics["n_records"] = len(records)
    diagnostics["n_pages"] = len(corpus.pages)
    diagnostics["scenario_cache"] = cache_status
    diagnostics["extraction_synthesis"] = (
        "batched" if extraction_backend in ("batched", "hybrid") else "scalar"
    )
    fallbacks = pipeline.synthesis_fallbacks()
    if fallbacks:
        diagnostics["synthesis_fallbacks"] = ",".join(fallbacks)
    if isinstance(executor, ParallelExecutor):
        diagnostics["fallbacks_tiny"] = executor.fallbacks_tiny
        diagnostics["fallbacks_unpicklable"] = executor.fallbacks_unpicklable
        diagnostics["fallbacks_shm"] = executor.fallbacks_shm
        diagnostics["n_workers"] = executor.max_workers
        diagnostics["round_state"] = executor.round_state_channel
        diagnostics["state_bytes_shipped"] = executor.state_bytes_shipped

    return EndToEndResult(
        scenario=scenario,
        fusion=fusion_result,
        backend=backend,
        n_workers=n_workers,
        timings=timings,
        metrics=headline_metrics(fusion_result, gold),
        diagnostics=diagnostics,
    )


@dataclass
class StreamingResult:
    """Everything one out-of-core pipeline run produced.

    The streaming twin of :class:`EndToEndResult` — there is no
    ``scenario`` because nothing corpus-sized survives the run: pages
    and records exist one chunk at a time and the claim matrix lives in
    (optionally memory-mapped) columns.  ``timings`` adds a ``matrix``
    stage (claim-column assembly + persistence) to the usual keys.
    """

    fusion: FusionResult
    backend: str
    n_workers: int | None
    n_pages: int
    n_records: int
    timings: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)


def run_streaming_pipeline(
    config: ScenarioConfig,
    method: str = "popaccu+",
    fusion_config: FusionConfig | None = None,
    backend: str = "hybrid",
    n_workers: int | None = None,
    chunk_pages: int = 2048,
    copy_window: int | None = 1024,
    cache_dir: str | Path | None = None,
) -> StreamingResult:
    """Run the pipeline out of core: chunked worldgen + extraction,
    accumulated claim columns, memory-mapped fusion.

    The ``web`` scale tier's entry point.  Pages are generated and
    extracted ``chunk_pages`` at a time
    (:func:`repro.world.webgen.stream_corpus` →
    :meth:`~repro.extract.pipeline.ExtractionPipeline.run_stream`) and
    folded straight into a
    :class:`~repro.fusion.matrix.ClaimAccumulator`; the corpus and the
    record list are never materialised.  With ``cache_dir`` set the
    claim columns are published to the content-addressed column store
    and fusion runs over read-only memory-mapped views
    (``diagnostics["column_store"] = "mapped"``); workers receive a
    ~300-byte :class:`~repro.artifacts.ColumnHandle` and re-map the
    files zero-copy.  Without it fusion runs over the in-memory columns
    (``"memory"``) — bitwise-identical either way, by test.

    ``backend`` must be one of :data:`STREAMING_PIPELINE_BACKENDS`;
    ``serial`` is rejected because serial fusion rebuilds the dict claim
    views.  ``diagnostics["peak_rss_mb"]`` records the process peak RSS
    after the run.
    """
    if backend not in STREAMING_PIPELINE_BACKENDS:
        raise ConfigError(
            f"streaming pipeline backend must be one of "
            f"{STREAMING_PIPELINE_BACKENDS}, got {backend!r} — the serial "
            "path materialises dict claim views, which the out-of-core "
            "tier forbids (see docs/SCALING.md)"
        )
    if method not in PIPELINE_METHODS:
        raise ConfigError(
            f"unknown fusion method {method!r}; expected one of {PIPELINE_METHODS}"
        )
    if fusion_config is None:
        fusion_config = FusionConfig(
            seed=config.seed,
            backend=_STREAM_FUSION_BACKEND[backend],
            n_workers=n_workers,
        )
    # The fuser preset decides the effective provenance granularity
    # (POPACCU+ overrides it); the accumulator must fold records at that
    # granularity, so resolve it from a gold-less probe fuser up front.
    granularity = make_fuser(method, fusion_config, {}).config.granularity

    executor = (
        ParallelExecutor(max_workers=n_workers)
        if backend in ("parallel", "hybrid")
        else SerialExecutor()
    )
    timings: dict[str, float] = {}
    start_total = time.perf_counter()
    mapped: MappedColumnarClaims | None = None
    try:
        start = time.perf_counter()
        world = generate_world(config.world, config.seed)
        freebase = build_freebase_snapshot(world)
        pipeline = build_extraction_pipeline(config, world)
        timings["setup"] = time.perf_counter() - start

        start = time.perf_counter()
        accumulator = ClaimAccumulator(granularity)
        n_pages = 0
        n_records = 0
        n_chunks = 0

        def counted_chunks():
            nonlocal n_pages
            for pages in stream_corpus(
                world, config.web, config.seed, chunk_pages, copy_window
            ):
                n_pages += len(pages)
                yield pages

        for records in pipeline.run_stream(
            counted_chunks(), backend=backend, executor=executor
        ):
            accumulator.add_records(records)
            n_records += len(records)
            n_chunks += 1
        timings["extraction"] = time.perf_counter() - start

        start = time.perf_counter()
        gold = label_gold_triples(freebase, accumulator.unique_triples())
        timings["labeling"] = time.perf_counter() - start

        start = time.perf_counter()
        cols = accumulator.build()
        accumulator.release()
        column_store = "memory"
        if cache_dir is not None:
            try:
                mapped = persist_columns(cols, cache_dir)
                cols = mapped
                column_store = "mapped"
            except OSError:
                # An unwritable/full cache directory degrades to the
                # in-memory columns — same bits, higher RSS.
                column_store = "memory (persist fallback)"
        timings["matrix"] = time.perf_counter() - start

        start = time.perf_counter()
        fuser = make_fuser(method, fusion_config, gold)
        fusion_result = fuser.fuse(ColumnarFusionInput(cols), executor=executor)
        timings["fusion"] = time.perf_counter() - start
    finally:
        executor.close()
        if mapped is not None:
            mapped.close()
    timings["total"] = time.perf_counter() - start_total

    diagnostics = dict(fusion_result.diagnostics)
    diagnostics["n_records"] = n_records
    diagnostics["n_pages"] = n_pages
    diagnostics["n_chunks"] = n_chunks
    diagnostics["chunk_pages"] = chunk_pages
    diagnostics["copy_window"] = copy_window
    diagnostics["column_store"] = column_store
    diagnostics["extraction_synthesis"] = (
        "batched" if backend in ("batched", "hybrid") else "scalar"
    )
    fallbacks = pipeline.synthesis_fallbacks()
    if fallbacks:
        diagnostics["synthesis_fallbacks"] = ",".join(fallbacks)
    if isinstance(executor, ParallelExecutor):
        diagnostics["fallbacks_tiny"] = executor.fallbacks_tiny
        diagnostics["fallbacks_unpicklable"] = executor.fallbacks_unpicklable
        diagnostics["fallbacks_shm"] = executor.fallbacks_shm
        diagnostics["n_workers"] = executor.max_workers
        diagnostics["round_state"] = executor.round_state_channel
        diagnostics["state_bytes_shipped"] = executor.state_bytes_shipped
    diagnostics["peak_rss_mb"] = round(peak_rss_mb(), 1)

    return StreamingResult(
        fusion=fusion_result,
        backend=backend,
        n_workers=n_workers,
        n_pages=n_pages,
        n_records=n_records,
        timings=timings,
        metrics=headline_metrics(fusion_result, gold),
        diagnostics=diagnostics,
    )
