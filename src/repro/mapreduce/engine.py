"""Map-shuffle-reduce with deterministic ordering and reducer sampling.

The engine is deliberately faithful to the MapReduce contract the paper's
implementation relies on:

- the **mapper** turns each input record into zero or more ``(key, value)``
  pairs;
- the **shuffle** groups values by key; reducers see keys in sorted order,
  so runs are reproducible regardless of input order;
- the **reducer** sees ``(key, values)`` and emits zero or more outputs;
- when a key's value list exceeds ``sample_limit`` (the paper's ``L``,
  §4.1: "we sample L triples each time instead of using all triples"), a
  deterministic per-key sample is taken before reducing — the skew-taming
  trick the paper uses against 2.7M-claim data items.

*Where* the reduce runs is delegated to an executor
(:mod:`repro.mapreduce.executors`): the default
:class:`~repro.mapreduce.executors.SerialExecutor` reduces in-process;
:class:`~repro.mapreduce.executors.ParallelExecutor` shards the shuffle by
stable key hash across a process pool while preserving sorted-key output
order and per-key sampling, so both backends produce identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import FusionError
from repro.mapreduce.executors import (
    Executor,
    SerialExecutor,
    map_and_shuffle,
    reduce_serial,
    sample_values,
)

__all__ = ["MapReduceJob", "MapReduceEngine"]

Mapper = Callable[[Any], Iterable[tuple[Any, Any]]]
Reducer = Callable[[Any, list], Iterable[Any]]


@dataclass(frozen=True)
class MapReduceJob:
    """One map+reduce stage.

    ``sample_limit`` bounds the number of values any reducer sees for one
    key (None = unbounded); sampling is deterministic in ``seed`` and the
    key, so re-running the job reproduces the result exactly.

    ``sample_key`` opts the job into the *canonical-order sampling
    contract*: when sampling engages for a key, its values are first
    sorted by this key, so the sampled subset is a function of the value
    *set* rather than the arrival order.  Jobs whose sampled subsets must
    be reproducible by sharded backends that enumerate values in a
    different (but canonically sortable) order — the fusion stages over
    the columnar shuffle — must set it; ``None`` keeps the legacy
    value-order draw.  The callable must be picklable (module-level) so
    parallel reduce shards can apply it in workers.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    sample_limit: int | None = None
    seed: int = 0
    sample_key: Callable[[Any], Any] | None = None

    def __post_init__(self) -> None:
        if self.sample_limit is not None and self.sample_limit < 1:
            raise FusionError(
                f"job {self.name}: sample_limit must be >= 1 or None, "
                f"got {self.sample_limit}"
            )


class MapReduceEngine:
    """In-process engine running one job at a time through an executor."""

    def __init__(self, executor: Executor | None = None) -> None:
        self.executor: Executor = executor if executor is not None else SerialExecutor()

    def run(self, records: Iterable[Any], job: MapReduceJob) -> list[Any]:
        """Execute ``job`` over ``records`` and return all reducer outputs."""
        return self.executor.run(records, job)

    def map_and_shuffle(
        self, records: Iterable[Any], mapper: Mapper
    ) -> dict[Any, list]:
        """The map phase plus grouping; exposed for tests and diagnostics."""
        return map_and_shuffle(records, mapper)

    def reduce(self, groups: dict[Any, list], job: MapReduceJob) -> list[Any]:
        """The reduce phase over pre-grouped data, keys in sorted order."""
        return reduce_serial(groups, job)

    @staticmethod
    def sample_values(values: list, key: Any, job: MapReduceJob) -> list:
        """Deterministic per-key sample of reducer input (the paper's L)."""
        return sample_values(
            values, key, job.name, job.sample_limit, job.seed, job.sample_key
        )
