"""The wire-codec layer: what shard payloads look like on the boundary.

Every byte a parallel job ships between the parent and a worker process
goes through :mod:`pickle`; *what* gets pickled is the difference between
a shuffle that scales and one that drowns in serialization.  This module
is the single place that contract lives:

- :class:`WireCodec` — a symmetric ``encode`` (worker side, before the
  payload crosses back to the parent) / ``decode`` (parent side) pair.
  :class:`~repro.mapreduce.executors.ShardedMapJob` accepts one; the
  extraction stage's compact-tuple record codec
  (:func:`repro.extract.records.records_to_wire` /
  ``records_from_wire``) is the canonical instance.
- :func:`scan_payload_types` — a recursive audit of a payload's value
  types, used by the test suite to *prove* that shard payloads carry no
  heavyweight domain objects (``Claim``/``Triple``/``ExtractionRecord``),
  only primitives, tuples, and contiguous numpy buffers.

The contract both producers follow (see ``mapreduce/README.md``):

1. **Shard task payloads are flat.**  Work items cross as primitives
   (ints, strings) or numpy arrays.
2. **Heavyweight invariant state never rides in a payload.**  Objects
   that every shard needs but no shard changes (the extractor fleet, the
   columnar claim index) are installed *pool-resident* via
   :meth:`~repro.mapreduce.executors.ParallelExecutor.install_state`,
   crossing once per pool — not once per shard — on both ``fork`` and
   ``spawn`` start methods.
3. **Per-round state never rides in a payload either.**  Buffers that
   change each round but are shared by every shard of the round (a
   fusion round's accuracy/posterior/active vectors) cross through the
   executors' round-state channel
   (:meth:`~repro.mapreduce.executors.ParallelExecutor.install_round_state`
   — shared-memory segments, pickled-inline fallback); the spec carries
   only the tiny :class:`~repro.mapreduce.executors.RoundStateHandle`.
4. **Codecs are exact.**  ``decode(encode(x))`` must round-trip ``x``
   bit-for-bit; the serial path skips the codec entirely, so any lossy
   codec would break serial/parallel parity.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["WireCodec", "scan_payload_types"]


@dataclass(frozen=True)
class WireCodec:
    """A symmetric shard-output codec.

    ``encode`` runs in the worker, compacting one shard output before it
    crosses the process boundary; ``decode`` runs in the parent and must
    invert it exactly.  ``encode`` must be picklable (it ships inside the
    job spec); ``decode`` runs only in the parent and may be a closure.
    """

    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]


def scan_payload_types(payload: Any, _seen: set[int] | None = None) -> set[type]:
    """Every concrete type reachable inside ``payload``.

    Walks tuples/lists/sets/frozensets/deques/dicts (including
    ``defaultdict`` factories), numpy array dtypes (via one scalar probe
    for object arrays), and ``memoryview`` backing objects, so tests can
    assert shard payloads are free of domain objects.  Dataclass payload
    wrappers are descended into via ``__dict__`` / ``__slots__`` so
    smuggling an object inside a spec does not escape the audit.
    """
    if _seen is None:
        _seen = set()
    if id(payload) in _seen:
        return set()
    _seen.add(id(payload))

    types: set[type] = {type(payload)}
    if isinstance(payload, np.ndarray):
        if payload.dtype == object:
            for element in payload.flat:
                types |= scan_payload_types(element, _seen)
        return types
    if isinstance(payload, (bytes, bytearray, str)):
        # Leaf buffers: iterating them would report int/str per element.
        return types
    if isinstance(payload, memoryview):
        # A memoryview is a window onto another object's buffer; audit
        # the backing object — that is what actually gets shipped.
        types |= scan_payload_types(payload.obj, _seen)
        return types
    if isinstance(
        payload, (tuple, list, set, frozenset, collections.deque)
    ):
        for element in payload:
            types |= scan_payload_types(element, _seen)
        return types
    if isinstance(payload, dict):
        factory = getattr(payload, "default_factory", None)
        if factory is not None and not isinstance(factory, type):
            # A defaultdict whose factory is a closure/lambda/partial can
            # smuggle captured state; audit it.  Bare type factories
            # (list, set, int) carry nothing.
            types |= scan_payload_types(factory, _seen)
        for key, value in payload.items():
            types |= scan_payload_types(key, _seen)
            types |= scan_payload_types(value, _seen)
        return types
    for attrs in (getattr(payload, "__dict__", None),):
        if attrs:
            types |= scan_payload_types(attrs, _seen)
    for slot in getattr(type(payload), "__slots__", ()) or ():
        if hasattr(payload, slot):
            types |= scan_payload_types(getattr(payload, slot), _seen)
    return types
