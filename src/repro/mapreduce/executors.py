"""Pluggable execution backends for the MapReduce engine.

The engine's dataflow contract (map → deterministic grouped shuffle →
sorted-key reduce with per-key sampling) is fixed; *where* the reduce work
runs is an :class:`Executor` policy:

- :class:`SerialExecutor` — everything in-process, keys reduced in sorted
  order.  The default, and the reference behaviour.
- :class:`ParallelExecutor` — map and shuffle stay in-process; the grouped
  keys are sharded by a *stable* hash (crc32 of ``repr(key)``, immune to
  ``PYTHONHASHSEED``) and each shard's reduce runs in a
  ``concurrent.futures.ProcessPoolExecutor`` worker.  Workers return
  ``(key, outputs)`` pairs and the parent re-emits them in globally sorted
  key order, so the output sequence — and the deterministic per-key
  sampling, which depends only on ``(seed, job name, key)`` — is
  bit-identical to the serial backend.

Bit-identity across start methods requires reducers whose float summation
order does not depend on hash randomization: a reducer that sums a set in
iteration order gives ``PYTHONHASHSEED``-dependent last-ulp results, and a
``spawn`` worker draws its own hash seed.  The fusion reducers therefore
sum in canonical (sorted) order, which makes serial, ``fork``-parallel and
``spawn``-parallel output bit-identical; pools default to ``fork`` where
available (cheapest state inheritance) and accept an explicit
``start_method`` otherwise.

Reducers shipped to workers must be picklable (module-level functions or
dataclasses; the fusion stages satisfy this).  When a reducer cannot be
pickled — e.g. the closure-based reducers third-party extensions may pass —
the parallel executor transparently falls back to in-process reduction and
counts the event in ``fallbacks_unpicklable``; jobs too small for dispatch
overhead to pay off are counted in ``fallbacks_tiny``; round-state installs
that had to cross inline instead of through shared memory are counted in
``fallbacks_shm`` (``fallbacks`` sums all three).

**Per-round state.**  State that changes once per *round* but is read by
every shard of that round (fusion's accuracy/posterior/active-mask
vectors) gets its own channel: :meth:`install_round_state` places the
round's arrays in ``multiprocessing.shared_memory`` segments and returns a
tiny :class:`RoundStateHandle` — shard callables carry only the handle
(segment name + array layout, a few hundred bytes) and resolve the arrays
with ``handle.load()``, attaching each segment at most once per worker per
round.  The buffers therefore cross the process boundary **zero** times
(the parent writes them straight into shared memory once per round)
instead of once per shard dispatch.  Where shared memory is unavailable
the channel degrades to an inline pickled payload (counted in
``fallbacks_shm``); in-process executors and fallback paths resolve the
handle from the parent-side registry without any copy at all.

Besides the keyed map-reduce contract, executors also run *map-only* jobs
(:class:`ShardedMapJob`): an order-insensitive map over keyed items,
sharded by the same stable key hash, with outputs re-emitted in the input
order.  This is the protocol the extraction stage runs on — each shard of
pages is extracted in a worker and the parent reassembles the corpus-order
record stream, bit-identical to the serial loop — and, since the columnar
shuffle, the fusion stages as well (items are integer item/provenance ids
into pool-resident columns; see :mod:`repro.fusion.shuffle`).

**Pool-resident worker state.**  Heavyweight invariant objects (the
extraction stage's 12-extractor fleet, fusion's columnar claim index) are
*installed* on an executor via :meth:`install_state` and cross the process
boundary exactly once per pool — through the pool initializer, on both
``fork`` and ``spawn`` — instead of once per shard task.  Shard callables
fetch them back with :func:`worker_state`, which also resolves in-process
(serial execution and fallback paths) because installs mirror into the
parent's registry.  Installing new state after the pool has started
restarts the pool (once per pipeline stage, not per job); see
``mapreduce/README.md`` for the full protocol.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

import numpy as np

from repro.mapreduce.codec import WireCodec
from repro.rng import split_seed

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "RoundStateHandle",
    "ShardedMapJob",
    "shard_for_key",
    "map_serial",
    "reduce_serial",
    "sample_positions",
    "worker_state",
]


# ---------------------------------------------------------------------------
# Pool-resident worker state
# ---------------------------------------------------------------------------
# One process-wide registry.  In a worker it is filled exactly once, by the
# pool initializer; in the parent it mirrors whatever the executors running
# in this process have installed, so the same shard callables work on the
# serial path and on the parallel fallback paths.  Keys are namespaced by
# producer ("extract.fleet", "fusion.columns"); later installs win.

_WORKER_STATE: dict[str, Any] = {}


def _init_worker_state(blobs: dict[str, bytes]) -> None:
    """Pool initializer: unpickle each installed state once per worker."""
    for key, blob in blobs.items():
        _WORKER_STATE[key] = pickle.loads(blob)


def worker_state(key: str) -> Any:
    """Fetch pool-resident state installed under ``key``.

    Works in workers (filled by the pool initializer) and in the parent
    (filled directly by :meth:`SerialExecutor.install_state` /
    :meth:`ParallelExecutor.install_state`), so shard callables are
    agnostic to where they run.
    """
    try:
        return _WORKER_STATE[key]
    except KeyError:
        raise RuntimeError(
            f"no pool-resident state installed under {key!r}; call "
            "executor.install_state(key, value) before running the job"
        ) from None


def _release_parent_state(installed: dict[str, Any], key: str) -> None:
    """Remove one executor's parent-side registry entry for ``key``.

    Guarded by identity: if another executor has since installed its own
    value under the same key (later installs win), that live value is
    left untouched — only our own is withdrawn.
    """
    if key not in installed:
        return
    value = installed.pop(key)
    if key in _WORKER_STATE and _WORKER_STATE[key] is value:
        del _WORKER_STATE[key]


# ---------------------------------------------------------------------------
# Per-round state: shared-memory buffers behind a tiny picklable handle
# ---------------------------------------------------------------------------
# Round state (fusion's per-round accuracy/posterior/active vectors) changes
# too often for the pool initializer (restarting the pool every round would
# dwarf the work) but is identical across every shard of a round — so it
# crosses through named shared-memory segments instead.  The parent writes
# the arrays into a segment once per install; shard payloads carry only a
# RoundStateHandle (segment name + array layout), and each worker attaches
# the segment at most once per generation.  Generations are globally unique
# (one process-wide counter), so caches never confuse two executors reusing
# the same key.

_ROUND_GENERATIONS = itertools.count(1)

#: Per-process cache of resolved round state: key -> (generation, arrays,
#: attached SharedMemory or None).  In the parent it is filled directly by
#: ``install_round_state`` (zero-copy); in a worker, lazily by
#: :meth:`RoundStateHandle.load`.
_ROUND_CACHE: dict[str, tuple[int, dict[str, np.ndarray], Any]] = {}

#: Segment offsets are padded to this alignment so every array view is
#: safely aligned for its dtype.
_SHM_ALIGN = 16


def _evict_round_cache(key: str) -> None:
    """Drop one cached round state, unmapping its segment if attached."""
    cached = _ROUND_CACHE.pop(key, None)
    if cached is None:
        return
    _generation, arrays, shm = cached
    if shm is not None:
        arrays.clear()  # release the buffer views before unmapping
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view escaped; GC will unmap
            pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment; the parent owns its lifecycle.

    The parent unlinks every segment it created (on the next install and
    on ``close()``).  Python 3.13+ exposes ``track=False`` so the attach
    leaves no tracker registration at all; on older versions the
    attach-side registration lands in the process tree's *shared*
    resource tracker, where it is an idempotent duplicate of the parent's
    create-side registration and is removed by the parent's ``unlink()``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: track= does not exist yet
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class _ShmArraySpec:
    """Where one named array lives inside a round-state segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class RoundStateHandle:
    """A tiny picklable reference to one round's array state.

    Exactly one of three channels backs it:

    - ``segment`` — the arrays live in a named shared-memory segment;
      ``load()`` attaches it (once per worker per generation) and returns
      read-only zero-copy views.
    - ``inline`` — the pickled-fallback path: the arrays ride pickled
      inside the handle itself (so inside the job spec, as before shared
      memory existed); still decoded at most once per worker per
      generation.
    - neither — parent-resident only (``SerialExecutor``, and the
      in-process resolution every handle also supports): ``load()`` hits
      the parent-side cache without any copy.
    """

    key: str
    generation: int
    segment: str | None = None
    layout: tuple[_ShmArraySpec, ...] = ()
    inline: bytes | None = None

    def load(self) -> dict[str, np.ndarray]:
        """Resolve the round's arrays, attaching/decoding at most once."""
        cached = _ROUND_CACHE.get(self.key)
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        _evict_round_cache(self.key)
        if self.segment is not None:
            shm = _attach_segment(self.segment)
            arrays: dict[str, np.ndarray] = {}
            for spec in self.layout:
                view = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=shm.buf,
                    offset=spec.offset,
                )
                view.setflags(write=False)
                arrays[spec.key] = view
            _ROUND_CACHE[self.key] = (self.generation, arrays, shm)
        elif self.inline is not None:
            # Same read-only contract as the shared-memory views, so a
            # shard that writes into round state fails identically on
            # every channel instead of only on multi-core hosts.
            arrays = _readonly_views(pickle.loads(self.inline))
            _ROUND_CACHE[self.key] = (self.generation, arrays, None)
        else:
            raise RuntimeError(
                f"round state {self.key!r} (generation {self.generation}) is "
                "parent-resident only and cannot be resolved in this process"
            )
        return arrays


def _readonly_views(arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Read-only views sharing each array's memory (originals untouched).

    Every channel hands shards the same contract: writing into round
    state raises, whether the arrays came from shared memory, the inline
    fallback, or the parent-side registry — while the installer's own
    arrays stay writable (the fusion runner updates its accuracy vector
    in place between rounds).
    """
    views: dict[str, np.ndarray] = {}
    for key, array in arrays.items():
        view = array.view()
        view.setflags(write=False)
        views[key] = view
    return views


def _round_segment_layout(
    arrays: dict[str, np.ndarray]
) -> tuple[tuple[_ShmArraySpec, ...], int]:
    """Aligned per-array offsets plus total segment size, computed once.

    The single source of truth for both the segment allocation and the
    write loop, so the two can never disagree about where an array lives.
    """
    layout: list[_ShmArraySpec] = []
    offset = 0
    for key, array in arrays.items():
        offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
        layout.append(_ShmArraySpec(key, array.dtype.str, array.shape, offset))
        offset += array.nbytes
    return tuple(layout), max(offset, 1)


def map_and_shuffle(records: Iterable[Any], mapper: Callable) -> dict[Any, list]:
    """The map phase plus grouping (insertion-ordered value lists)."""
    groups: dict[Any, list] = {}
    for record in records:
        for key, value in mapper(record):
            groups.setdefault(key, []).append(value)
    return groups


def sample_positions(
    n_values: int, key: Any, name: str, sample_limit: int | None, seed: int
) -> list[int] | None:
    """The deterministic position draw behind reducer-input sampling (L).

    Returns the ascending positions to keep out of ``n_values`` ordered
    values, or None when sampling does not engage.  The draw depends only
    on ``(seed, name, repr(key))`` and ``n_values`` — never on where the
    values live — so any backend that can enumerate a key's values *in the
    same order* reproduces the same subset bit-for-bit.  The fusion stages
    pin that order to the canonical (sorted) one via ``sample_key``; the
    columnar shard workers re-draw these positions against the
    pool-resident columns (whose layout *is* the canonical order) instead
    of falling back to serial.
    """
    if sample_limit is None or n_values <= sample_limit:
        return None
    rng = np.random.default_rng(split_seed(seed, name, repr(key)))
    picked = rng.choice(n_values, size=sample_limit, replace=False)
    return sorted(int(x) for x in picked)


def sample_values(
    values: list,
    key: Any,
    name: str,
    sample_limit: int | None,
    seed: int,
    sample_key: Callable[[Any], Any] | None = None,
) -> list:
    """Deterministic per-key sample of reducer input (the paper's L).

    Without ``sample_key`` the sample depends on ``(seed, name, key)`` and
    the *value order* — historically the scalar dataflow's arrival order,
    which no sharded backend can reproduce.  With ``sample_key`` the values
    are put in canonical order before the positional draw, making the
    sampled subset a property of the key's value *set*: any backend that
    enumerates the same values canonically (the columnar shuffle does, by
    construction of its sorted CSR layout) picks the identical subset.
    """
    positions = sample_positions(len(values), key, name, sample_limit, seed)
    if positions is None:
        return values
    if sample_key is not None:
        values = sorted(values, key=sample_key)
    return [values[i] for i in positions]


def shard_for_key(key: Any, n_shards: int) -> int:
    """Stable shard assignment: crc32 of ``repr(key)``, not ``hash()``."""
    return zlib.crc32(repr(key).encode("utf-8")) % n_shards


@dataclass(frozen=True)
class _ReduceSpec:
    """The picklable slice of a job a reduce worker needs."""

    name: str
    reducer: Callable
    sample_limit: int | None
    seed: int
    sample_key: Callable | None = None


def _reduce_shard(
    spec_bytes: bytes, items: list[tuple[Any, list]]
) -> list[tuple[Any, list]]:
    """Worker body: sample + reduce each key of one shard.

    In-shard order is irrelevant — the parent re-emits outputs in global
    sorted-key order, and sampling depends only on ``(seed, name, key)``.
    The spec arrives pre-pickled so the parent serializes it exactly once
    per job instead of once per shard.
    """
    spec: _ReduceSpec = pickle.loads(spec_bytes)
    outputs: list[tuple[Any, list]] = []
    for key, values in items:
        sampled = sample_values(
            values, key, spec.name, spec.sample_limit, spec.seed, spec.sample_key
        )
        outputs.append((key, list(spec.reducer(key, sampled))))
    return outputs


@dataclass(frozen=True)
class ShardedMapJob:
    """A map-only job: order-insensitive work over keyed items.

    ``map_shard(items)`` processes one shard's items (in the order given)
    and returns exactly one output per item; the executor re-emits outputs
    in the original input order, so serial and parallel execution are
    indistinguishable.  The map must be *order-insensitive*: an item's
    output may depend only on the item itself (the extraction stage
    satisfies this — every noisy draw derives from the page URL).

    ``key_fn`` yields the stable shard key for an item (hashed with
    :func:`shard_for_key`; it runs only in the parent and need not
    pickle).  ``map_shard`` and the optional wire codec must be picklable
    for the parallel backend; ``encode`` compacts each output in the
    worker before it crosses the process boundary and ``decode`` restores
    it in the parent — the extraction stage uses this to ship records as
    compact tuples instead of full pickled dataclass lists.  A
    :class:`~repro.mapreduce.codec.WireCodec` can be passed as ``codec``
    instead of the two callables (the shared codec-layer spelling); the
    two forms are mutually exclusive.
    """

    name: str
    map_shard: Callable[[list], list]
    key_fn: Callable[[Any], Any]
    encode: Callable[[Any], Any] | None = None
    decode: Callable[[Any], Any] | None = None
    codec: WireCodec | None = None

    def __post_init__(self) -> None:
        if self.codec is not None:
            if self.encode is not None or self.decode is not None:
                raise ValueError(
                    f"job {self.name}: pass either codec= or encode=/decode=, "
                    "not both"
                )
            object.__setattr__(self, "encode", self.codec.encode)
            object.__setattr__(self, "decode", self.codec.decode)


def _map_shard_worker(
    spec_bytes: bytes, indexed_items: list[tuple[int, Any]]
) -> list[tuple[int, Any]]:
    """Worker body for one :class:`ShardedMapJob` shard.

    Returns ``(input_index, encoded_output)`` pairs; the parent slots each
    output back at its input index, restoring the serial emission order.
    """
    map_shard, encode = pickle.loads(spec_bytes)
    outputs = map_shard([item for _index, item in indexed_items])
    if len(outputs) != len(indexed_items):
        raise ValueError(
            f"map_shard returned {len(outputs)} outputs for "
            f"{len(indexed_items)} items; the contract is one per item"
        )
    if encode is not None:
        outputs = [encode(output) for output in outputs]
    return [(index, output) for (index, _item), output in zip(indexed_items, outputs)]


def map_serial(items: list, job: ShardedMapJob) -> list:
    """The reference map-only path: one in-process pass, no wire codec."""
    outputs = list(job.map_shard(items))
    if len(outputs) != len(items):
        raise ValueError(
            f"job {job.name}: map_shard returned {len(outputs)} outputs "
            f"for {len(items)} items; the contract is one per item"
        )
    return outputs


def reduce_serial(groups: dict[Any, list], job) -> list[Any]:
    """The reference reduce: sorted keys, per-key sampling, in-process."""
    sample_key = getattr(job, "sample_key", None)
    outputs: list[Any] = []
    for key in sorted(groups):
        sampled = sample_values(
            groups[key], key, job.name, job.sample_limit, job.seed, sample_key
        )
        outputs.extend(job.reducer(key, sampled))
    return outputs


@runtime_checkable
class Executor(Protocol):
    """Execution policy: run one job over records, return reducer outputs.

    ``run`` executes a keyed map-reduce job; ``run_map`` a map-only
    :class:`ShardedMapJob` (outputs in input order).  ``install_state``
    makes a heavyweight invariant object available to shard callables via
    :func:`worker_state` (crossing the process boundary once per pool, or
    not at all for in-process execution).  ``install_round_state`` is the
    faster-changing channel: it publishes one round's numpy arrays (via
    shared memory where available) and returns the
    :class:`RoundStateHandle` shard callables resolve them with — the
    arrays cross once per round, never per shard.  ``close()`` releases
    any held resources (worker pools, installed state, shared-memory
    segments); it must be safe to call repeatedly and on executors that
    never ran a job.
    """

    def run(self, records: Iterable[Any], job) -> list[Any]: ...

    def run_map(self, items: Iterable[Any], job: ShardedMapJob) -> list[Any]: ...

    def install_state(self, key: str, value: Any) -> None: ...

    def uninstall_state(self, key: str) -> None: ...

    def install_round_state(
        self, key: str, arrays: dict[str, np.ndarray]
    ) -> RoundStateHandle: ...

    def uninstall_round_state(self, key: str) -> None: ...

    def close(self) -> None: ...


class SerialExecutor:
    """In-process map, shuffle, and sorted-key reduce (reference behaviour)."""

    name = "serial"

    #: In-process executors resolve round state straight from the parent
    #: registry; nothing ever crosses a process boundary.
    round_state_channel = "in-process"

    def __init__(self) -> None:
        self._installed: dict[str, Any] = {}
        self._round_installed: dict[str, int] = {}

    def run(self, records: Iterable[Any], job) -> list[Any]:
        return reduce_serial(map_and_shuffle(records, job.mapper), job)

    def run_map(self, items: Iterable[Any], job: ShardedMapJob) -> list[Any]:
        return map_serial(list(items), job)

    def install_state(self, key: str, value: Any) -> None:
        """Register ``value`` for :func:`worker_state` lookup (in-process)."""
        _WORKER_STATE[key] = value
        self._installed[key] = value

    def uninstall_state(self, key: str) -> None:
        """Drop ``key`` from the registry (no-op if absent)."""
        _release_parent_state(self._installed, key)

    def install_round_state(
        self, key: str, arrays: dict[str, np.ndarray]
    ) -> RoundStateHandle:
        """Register one round's arrays parent-side (zero copy, no segment)."""
        generation = next(_ROUND_GENERATIONS)
        _evict_round_cache(key)
        _ROUND_CACHE[key] = (generation, _readonly_views(arrays), None)
        self._round_installed[key] = generation
        return RoundStateHandle(key=key, generation=generation)

    def uninstall_round_state(self, key: str) -> None:
        """Drop this executor's round state under ``key`` (no-op if absent)."""
        generation = self._round_installed.pop(key, None)
        cached = _ROUND_CACHE.get(key)
        if generation is not None and cached is not None and cached[0] == generation:
            _evict_round_cache(key)

    def close(self) -> None:
        for key in list(self._installed):
            _release_parent_state(self._installed, key)
        for key in list(self._round_installed):
            self.uninstall_round_state(key)

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ParallelExecutor:
    """Process-pool reduce, sharded by stable key hash.

    ``max_workers`` defaults to the CPU count (minimum 2, so the backend is
    exercised even on single-core hosts); ``min_keys`` is the group-count
    threshold below which dispatch overhead cannot pay off and the reduce
    runs in-process.  ``start_method`` pins the multiprocessing start
    method (``"fork"``/``"spawn"``/``"forkserver"``; None prefers fork
    where available — cheapest pool start, and installed state is
    inherited by memory copy).  The pool is created lazily and reused
    across jobs (fusion runs many rounds through one executor); call
    :meth:`close` or use the executor as a context manager to release it.

    State installed with :meth:`install_state` reaches workers through the
    pool initializer; installing *after* the pool has started restarts it
    so new workers see the full registry — once per pipeline stage, never
    per shard.  Per-round state (:meth:`install_round_state`) never
    restarts the pool: it crosses through shared-memory segments workers
    attach lazily (``use_shared_memory=False``, or a failing
    ``multiprocessing.shared_memory``, degrades it to an inline pickled
    payload, counted per install in ``fallbacks_shm``).
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        min_keys: int = 2,
        start_method: str | None = None,
        use_shared_memory: bool = True,
    ) -> None:
        self.max_workers = max_workers or max(2, os.cpu_count() or 1)
        self.min_keys = min_keys
        self.start_method = start_method
        self.use_shared_memory = use_shared_memory
        self.fallbacks_tiny = 0  # jobs too small for dispatch to pay off
        self.fallbacks_unpicklable = 0  # jobs whose work unit cannot pickle
        self.fallbacks_shm = 0  # round-state installs that crossed inline
        self.state_bytes_shipped = 0  # cumulative pickled install payloads
        self._pool: ProcessPoolExecutor | None = None
        self._state_blobs: dict[str, bytes] = {}
        self._installed: dict[str, Any] = {}
        self._unpicklable_state: set[str] = set()
        self._round_segments: dict[str, shared_memory.SharedMemory] = {}
        self._round_installed: dict[str, int] = {}

    @property
    def fallbacks(self) -> int:
        """Total degraded events despite the parallel backend: jobs that
        ran in-process (tiny or unpicklable) plus round-state installs
        that crossed inline rather than through shared memory."""
        return (
            self.fallbacks_tiny
            + self.fallbacks_unpicklable
            + self.fallbacks_shm
        )

    @property
    def state_bytes(self) -> int:
        """Pickled bytes of the currently installed pool-resident state.

        What a pool (re)start ships to *each* worker.  The out-of-core
        tier's headline: memory-mapped claim columns install as a
        ~kilobyte :class:`~repro.artifacts.ColumnHandle` here where the
        in-memory columns would ship megabytes per worker
        (``state_bytes_shipped`` accumulates the same quantity across
        the executor's whole life).
        """
        return sum(len(blob) for blob in self._state_blobs.values())

    @property
    def round_state_channel(self) -> str:
        """How this executor's round state crosses to workers.

        ``"shared-memory"`` when every install so far went through a
        segment; ``"inline (shm fallback)"`` once any install had to ride
        pickled inside the shard specs instead.
        """
        if self.fallbacks_shm > 0 or not self.use_shared_memory:
            return "inline (shm fallback)"
        return "shared-memory"

    def install_state(self, key: str, value: Any) -> None:
        """Make ``value`` pool-resident under ``key``.

        The value is pickled once, here; workers unpickle it once each, in
        the pool initializer.  It is also registered in the parent so
        :func:`worker_state` resolves on the in-process fallback paths.
        Reinstalling an identical value is a no-op; new state after the
        pool has started triggers one pool restart.

        A value that cannot pickle is registered parent-side only and the
        executor degrades to in-process execution (counted per job in
        ``fallbacks_unpicklable``) until the key is replaced or
        uninstalled — the same graceful path an unpicklable work unit
        takes.
        """
        self._installed[key] = value
        _WORKER_STATE[key] = value
        try:
            blob = pickle.dumps(value)
        except Exception:
            self._unpicklable_state.add(key)
            self._state_blobs.pop(key, None)
            return
        self._unpicklable_state.discard(key)
        if self._state_blobs.get(key) == blob:
            return
        self._state_blobs[key] = blob
        self.state_bytes_shipped += len(blob)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def uninstall_state(self, key: str) -> None:
        """Drop ``key``: future pools will not carry it (no-op if absent).

        Already-running workers keep their copy — harmless dead weight —
        but the next pool (re)start omits it, so a later stage's
        ``install_state`` does not re-ship state only an earlier stage
        needed.
        """
        _release_parent_state(self._installed, key)
        self._state_blobs.pop(key, None)
        self._unpicklable_state.discard(key)

    def install_round_state(
        self, key: str, arrays: dict[str, np.ndarray]
    ) -> RoundStateHandle:
        """Publish one round's arrays; returns the handle shards carry.

        The arrays are written into a fresh shared-memory segment (the
        previous round's segment under ``key`` is unlinked first, so at
        most one segment per key is ever live) and the returned handle
        names it — shard payloads stay a few hundred bytes no matter how
        many provenances the round tracks.  The live arrays are also
        cached parent-side so the in-process fallback paths resolve the
        handle with zero copies.  Arrays must not be mutated between the
        install and the last job that reads the handle (the next install
        snapshots them afresh).

        When shared memory is unavailable the handle carries the arrays
        pickled inline instead — they ride in the job spec as they did
        before this channel existed — and the degrade is counted in
        ``fallbacks_shm``.
        """
        arrays = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        generation = next(_ROUND_GENERATIONS)
        self._release_round_segment(key)
        handle: RoundStateHandle | None = None
        if self.use_shared_memory:
            layout, size = _round_segment_layout(arrays)
            try:
                segment = shared_memory.SharedMemory(create=True, size=size)
            except Exception:
                # No usable /dev/shm (or equivalent): degrade for the rest
                # of this executor's life rather than probing every round.
                self.use_shared_memory = False
            else:
                for spec in layout:
                    np.ndarray(
                        spec.shape,
                        dtype=np.dtype(spec.dtype),
                        buffer=segment.buf,
                        offset=spec.offset,
                    )[...] = arrays[spec.key]
                self._round_segments[key] = segment
                handle = RoundStateHandle(
                    key=key,
                    generation=generation,
                    segment=segment.name,
                    layout=layout,
                )
        if handle is None:
            self.fallbacks_shm += 1
            handle = RoundStateHandle(
                key=key, generation=generation, inline=pickle.dumps(arrays)
            )
        _evict_round_cache(key)
        _ROUND_CACHE[key] = (generation, _readonly_views(arrays), None)
        self._round_installed[key] = generation
        return handle

    def uninstall_round_state(self, key: str) -> None:
        """Unlink ``key``'s segment and drop its parent cache entry."""
        self._release_round_segment(key)
        generation = self._round_installed.pop(key, None)
        cached = _ROUND_CACHE.get(key)
        if generation is not None and cached is not None and cached[0] == generation:
            _evict_round_cache(key)

    def _release_round_segment(self, key: str) -> None:
        segment = self._round_segments.pop(key, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a parent view escaped
            pass
        segment.unlink()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            method = self.start_method
            if method is None:
                method = (
                    "fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else None
                )
            mp_context = (
                multiprocessing.get_context(method) if method is not None else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=mp_context,
                initializer=_init_worker_state if self._state_blobs else None,
                initargs=(dict(self._state_blobs),) if self._state_blobs else (),
            )
        return self._pool

    def run(self, records: Iterable[Any], job) -> list[Any]:
        groups = map_and_shuffle(records, job.mapper)
        sorted_keys = sorted(groups)
        if len(sorted_keys) < self.min_keys:
            self.fallbacks_tiny += 1
            return reduce_serial(groups, job)
        if self._unpicklable_state:
            # Installed state never reached the workers; the parent-side
            # registry still resolves, so run the job in-process.
            self.fallbacks_unpicklable += 1
            return reduce_serial(groups, job)
        spec = _ReduceSpec(
            name=job.name,
            reducer=job.reducer,
            sample_limit=job.sample_limit,
            seed=job.seed,
            sample_key=getattr(job, "sample_key", None),
        )
        try:
            spec_bytes = pickle.dumps(spec)
        except Exception:
            self.fallbacks_unpicklable += 1
            return reduce_serial(groups, job)

        n_shards = min(self.max_workers * 4, len(sorted_keys))
        shards: list[list[tuple[Any, list]]] = [[] for _ in range(n_shards)]
        for key in sorted_keys:
            shards[shard_for_key(key, n_shards)].append((key, groups[key]))

        pool = self._ensure_pool()
        futures = [
            pool.submit(_reduce_shard, spec_bytes, shard) for shard in shards if shard
        ]
        by_key: dict[Any, list] = {}
        for future in futures:
            for key, outputs in future.result():
                by_key[key] = outputs
        # Re-emit in global sorted-key order: bit-identical to serial.
        return [output for key in sorted_keys for output in by_key[key]]

    def run_map(self, items: Iterable[Any], job: ShardedMapJob) -> list[Any]:
        """Run a map-only job over a process pool, outputs in input order."""
        items = list(items)
        if len(items) < self.min_keys:
            self.fallbacks_tiny += 1
            return map_serial(items, job)
        if self._unpicklable_state:
            # Installed state never reached the workers; the parent-side
            # registry still resolves, so run the job in-process.
            self.fallbacks_unpicklable += 1
            return map_serial(items, job)
        try:
            spec_bytes = pickle.dumps((job.map_shard, job.encode))
        except Exception:
            self.fallbacks_unpicklable += 1
            return map_serial(items, job)

        n_shards = min(self.max_workers * 4, len(items))
        shards: list[list[tuple[int, Any]]] = [[] for _ in range(n_shards)]
        for index, item in enumerate(items):
            shards[shard_for_key(job.key_fn(item), n_shards)].append((index, item))

        pool = self._ensure_pool()
        futures = [
            pool.submit(_map_shard_worker, spec_bytes, shard)
            for shard in shards
            if shard
        ]
        outputs: list[Any] = [None] * len(items)
        for future in futures:
            for index, output in future.result():
                outputs[index] = job.decode(output) if job.decode else output
        return outputs

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for key in list(self._installed):
            _release_parent_state(self._installed, key)
        for key in list(self._round_installed) + list(self._round_segments):
            self.uninstall_round_state(key)
        self._state_blobs.clear()
        self._unpicklable_state.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
