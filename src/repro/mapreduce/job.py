"""Iterative multi-stage jobs with convergence and forced termination.

The fusion pipeline of Figure 8 alternates two stages (triple-probability
estimation, provenance-accuracy evaluation) "until convergence", with a
forced cut-off after ``R`` rounds because "there might be many rounds
before convergence and even a single round can take a long time".
:func:`run_iterative` provides that loop shape generically: a *state* is
refined round by round until the caller-supplied distance between
successive states drops below tolerance or the round budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import FusionError

__all__ = ["IterativeJob", "run_iterative"]


@dataclass(frozen=True)
class IterativeJob:
    """One iterative computation.

    ``step(state, round_index)`` produces the next state;
    ``distance(old, new)`` measures change (convergence when
    ``distance < tol``).  ``max_rounds`` is the paper's ``R``.
    """

    name: str
    step: Callable[[Any, int], Any]
    distance: Callable[[Any, Any], float]
    max_rounds: int = 5
    tol: float = 1e-4

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise FusionError(f"job {self.name}: max_rounds must be >= 1")
        if self.tol < 0:
            raise FusionError(f"job {self.name}: tol must be >= 0")


@dataclass
class IterationTrace:
    """What happened each round (feeds the Figure 14 experiment)."""

    rounds: int
    converged: bool
    distances: list[float]
    states: list[Any]


def run_iterative(job: IterativeJob, initial_state: Any, keep_states: bool = False) -> IterationTrace:
    """Run ``job`` from ``initial_state``; return the trace.

    The final state is ``trace.states[-1]`` (states are retained only when
    ``keep_states`` is set; otherwise the list holds just the last state).
    """
    state = initial_state
    distances: list[float] = []
    states: list[Any] = [state] if keep_states else []
    converged = False
    rounds = 0
    for round_index in range(job.max_rounds):
        new_state = job.step(state, round_index)
        delta = job.distance(state, new_state)
        distances.append(delta)
        state = new_state
        rounds = round_index + 1
        if keep_states:
            states.append(state)
        if delta < job.tol:
            converged = True
            break
    if not keep_states:
        states = [state]
    return IterationTrace(
        rounds=rounds, converged=converged, distances=distances, states=states
    )
