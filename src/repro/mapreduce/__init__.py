"""Local MapReduce engine.

The paper scales fusion with a three-stage MapReduce pipeline (Figure 8).
This package provides the same dataflow semantics — map, shuffle (grouped,
deterministically ordered), reduce, with per-reducer input *sampling*
(the paper's ``L``) and multi-stage iteration with forced termination
(the paper's ``R``) — as an in-process engine suitable for laptop scale.
"""

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.job import IterativeJob, run_iterative

__all__ = ["MapReduceEngine", "MapReduceJob", "IterativeJob", "run_iterative"]
