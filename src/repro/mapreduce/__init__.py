"""Local MapReduce engine.

The paper scales fusion with a three-stage MapReduce pipeline (Figure 8).
This package provides the same dataflow semantics — map, shuffle (grouped,
deterministically ordered), reduce, with per-reducer input *sampling*
(the paper's ``L``) and multi-stage iteration with forced termination
(the paper's ``R``) — as an in-process engine suitable for laptop scale.
Execution is pluggable: the reduce phase runs through an
:class:`~repro.mapreduce.executors.Executor` — serial in-process by
default, or sharded across a process pool by
:class:`~repro.mapreduce.executors.ParallelExecutor` with bit-identical
output.  Executors also run map-only jobs
(:class:`~repro.mapreduce.executors.ShardedMapJob`, key-hash-sharded with
outputs in input order) — the protocol the extraction stage scales on.
"""

from repro.mapreduce.codec import WireCodec
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import (
    Executor,
    ParallelExecutor,
    RoundStateHandle,
    SerialExecutor,
    ShardedMapJob,
    worker_state,
)
from repro.mapreduce.job import IterativeJob, run_iterative

__all__ = [
    "MapReduceEngine",
    "MapReduceJob",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "RoundStateHandle",
    "ShardedMapJob",
    "WireCodec",
    "worker_state",
    "IterativeJob",
    "run_iterative",
]
