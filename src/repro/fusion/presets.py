"""Named fusion configurations from the paper.

- :func:`vote`, :func:`accu`, :func:`popaccu` — the three basic methods at
  (Extractor, URL) granularity with paper defaults (N=100, A=0.8, R=5,
  L=1M);
- :func:`popaccu_plus_unsup` — POPACCU + refinements I-III (coverage
  filter, (Extractor, Site, Predicate, Pattern) granularity, θ=0.5
  accuracy filter); still unsupervised;
- :func:`popaccu_plus` — the semi-supervised flagship: all of the above
  plus gold-standard accuracy initialisation.

Every preset accepts ``backend=``
(``serial``/``parallel``/``vectorized``/``hybrid``) as a convenience
override of ``FusionConfig.backend``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigError
from repro.fusion.accu import Accu
from repro.fusion.base import FusionConfig
from repro.fusion.popaccu import PopAccu
from repro.fusion.provenance import Granularity
from repro.fusion.vote import Vote
from repro.kb.triples import Triple

__all__ = ["vote", "accu", "popaccu", "popaccu_plus_unsup", "popaccu_plus"]


def _with_backend(config: FusionConfig, backend: str | None) -> FusionConfig:
    if backend is None:
        return config
    return replace(config, backend=backend)


def vote(config: FusionConfig | None = None, backend: str | None = None) -> Vote:
    """The VOTE baseline."""
    return Vote(_with_backend(config or FusionConfig(), backend))


def accu(config: FusionConfig | None = None, backend: str | None = None) -> Accu:
    """Basic ACCU with paper defaults."""
    return Accu(_with_backend(config or FusionConfig(), backend))


def popaccu(
    config: FusionConfig | None = None, backend: str | None = None
) -> PopAccu:
    """Basic POPACCU with paper defaults."""
    return PopAccu(_with_backend(config or FusionConfig(), backend))


def _plus_config(base: FusionConfig | None, theta: float) -> FusionConfig:
    config = base or FusionConfig()
    return replace(
        config,
        granularity=Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN,
        filter_by_coverage=True,
        min_accuracy=theta,
    )


class PopAccuPlusUnsup(PopAccu):
    """POPACCU with refinements I-III (§4.3.4), still unsupervised."""

    @property
    def name(self) -> str:
        return "POPACCU+(unsup)"


class PopAccuPlus(PopAccu):
    """POPACCU with refinements I-IV (§4.3.4), semi-supervised."""

    @property
    def name(self) -> str:
        return "POPACCU+"


def popaccu_plus_unsup(
    config: FusionConfig | None = None,
    theta: float = 0.5,
    backend: str | None = None,
) -> PopAccu:
    """POPACCU+ without the gold standard (changes I-III of §4.3.4)."""
    return PopAccuPlusUnsup(_with_backend(_plus_config(config, theta), backend))


def popaccu_plus(
    gold_labels: dict[Triple, bool] | None = None,
    config: FusionConfig | None = None,
    theta: float = 0.5,
    backend: str | None = None,
) -> PopAccu:
    """POPACCU+ (changes I-IV of §4.3.4).

    ``gold_labels`` are LCWA labels used for accuracy initialisation; when
    omitted the preset degrades to the unsupervised variant but keeps the
    POPACCU+ name, which is almost never what you want — pass the labels.
    """
    if gold_labels is not None and not isinstance(gold_labels, dict):
        raise ConfigError("gold_labels must be a dict[Triple, bool]")
    return PopAccuPlus(
        _with_backend(_plus_config(config, theta), backend), gold_labels=gold_labels
    )
