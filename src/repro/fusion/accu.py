"""ACCU: Bayesian fusion with uniformly-distributed false values.

The model of Dong et al. (PVLDB 2009), as summarised in §4.1 of the paper:
each data item has one true value and ``N`` uniformly-distributed false
values; provenances are independent, each with accuracy ``A(S)``.

- vote count of a provenance: ``τ(S) = ln(N·A(S) / (1 − A(S)))``;
- vote count of a value: ``C(v) = Σ_{S claims v} τ(S)``;
- posterior: softmax over the *full domain* — the observed values plus the
  ``N + 1 − k`` unobserved values, each at vote count 0.  Keeping the
  unobserved mass is what stops ACCU's probabilities "sticking" to the
  default accuracy the way POPACCU's do (§4.2), and it is why a single
  default-accuracy provenance yields exactly p = A.

Iteration (accuracy re-estimation) lives in :mod:`repro.fusion.runner`.

Two cross-backend contracts anchor here.  *Canonical-order summation*:
the scalar posterior sums floats in sorted order (see
:func:`accu_item_posteriors`), which is what makes serial and parallel
runs bit-identical.  *Canonical-order sampling*: when the reducer-input
bound ``L`` engages, a data item's claims are sampled against their
``(triple, provenance)`` canonical order
(:func:`repro.fusion.runner.stage1_sample_key`) — the columnar claim
layout's native order — so sampled subsets are identical whether drawn by
the serial engine or re-drawn inside a parallel shard
(:class:`repro.fusion.shuffle.Stage1ColumnarShard`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fusion import kernels
from repro.fusion.base import Fuser, FusionResult
from repro.fusion.observations import ColumnarClaims, FusionInput, ProvKey
from repro.fusion.runner import run_bayesian_fusion
from repro.kb.triples import Triple

__all__ = ["accu_item_posteriors", "AccuKernel", "Accu"]


def _clamped(accuracy: float) -> float:
    return min(max(accuracy, kernels.ACC_FLOOR), kernels.ACC_CEIL)


def accu_item_posteriors(
    claims: dict[Triple, set[ProvKey]],
    accuracies: dict[ProvKey, float],
    n_false: int,
) -> dict[Triple, float]:
    """Posterior probability of each observed value of one data item.

    ``claims`` maps each observed triple to its supporting provenances;
    ``n_false`` is the paper's ``N`` (default 100).

    Floats are summed in canonical (sorted) order, never in set/dict
    iteration order, so the result is independent of ``PYTHONHASHSEED``
    and of how the claims dict was assembled — the bit-identity contract
    between the serial backend and process-pool workers (including
    ``spawn`` workers, which draw their own hash seed) rests on this.
    """
    if not claims:
        return {}
    vote_counts: dict[Triple, float] = {}
    for triple in sorted(claims):
        count = 0.0
        for prov in sorted(claims[triple]):
            accuracy = _clamped(accuracies[prov])
            count += math.log(n_false * accuracy / (1.0 - accuracy))
        vote_counts[triple] = count
    k = len(vote_counts)
    peak = max(vote_counts.values())
    peak = max(peak, 0.0)  # unobserved values sit at vote count 0
    denominator = sum(math.exp(c - peak) for c in vote_counts.values())
    denominator += max(n_false + 1 - k, 0) * math.exp(-peak)
    return {
        triple: math.exp(count - peak) / denominator
        for triple, count in vote_counts.items()
    }


@dataclass(frozen=True)
class AccuKernel:
    """The ACCU posterior as a pluggable, picklable kernel.

    Calling it scores one item through the scalar reference
    (:func:`accu_item_posteriors`); :meth:`batch_round` scores every item
    of a round at once through the numpy kernel
    (:func:`repro.fusion.kernels.accu_round`).  Being a frozen dataclass —
    not a closure — it survives pickling into the parallel backend's
    worker processes.
    """

    n_false: int = 100

    def __call__(
        self,
        claims: dict[Triple, set[ProvKey]],
        accuracies: dict[ProvKey, float],
    ) -> dict[Triple, float]:
        return accu_item_posteriors(claims, accuracies, self.n_false)

    def batch_round(
        self, cols: ColumnarClaims, accuracies, active, require_repeated: bool
    ) -> kernels.RoundPosteriors:
        return kernels.accu_round(
            cols, accuracies, active, self.n_false, require_repeated
        )


class Accu(Fuser):
    """Iterative ACCU (default N=100, A=0.8, R=5, L=1M)."""

    @property
    def name(self) -> str:
        return "ACCU"

    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        return run_bayesian_fusion(
            fusion_input=fusion_input,
            config=self.config,
            item_posterior_fn=AccuKernel(self.config.n_false_values),
            method_name=self.name,
            gold_labels=self.gold_labels,
            executor=executor,
        )
