"""Batched numpy posterior kernels over the columnar claim layout.

The scalar per-item posteriors (``accu_item_posteriors``,
``popaccu_item_posteriors``, ``vote_item_posteriors``) are the reference
implementations; this module recomputes the same Stage-I math for *all*
data items of a round in a handful of array operations over a
:class:`~repro.fusion.observations.ColumnarClaims` index.  The layout
invariant the kernels rely on: rows (unique triples) are contiguous per
item and claims contiguous per row, so every per-item / per-row aggregate
is one ``np.add.reduceat`` (or ``np.maximum.reduceat``) over a pointer
array — no Python loop, no ``Triple`` hashing.

Each kernel returns a :class:`RoundPosteriors`: a posterior per row plus a
``scored`` mask (rows whose item passed the round's filters and that kept
at least one active provenance).  :func:`stage2_accuracies` is the matching
batched Stage-II update (mean posterior of each provenance's scored
triples, via the transposed CSR).

The kernels are consumed two ways: whole-matrix by the ``vectorized``
backend, and shard-at-a-time by the ``hybrid`` backend — each parallel
worker calls ``batch_round`` on a
:class:`~repro.fusion.observations.ColumnarSlice` of the pool-resident
columns, so the kernels must only touch the CSR pointer/index attributes
(``item_ptr``/``row_ptr``/``row_item``/``claim_prov``/``n_rows``), which
both views provide.  In hybrid workers the ``accuracies``/``active``
inputs are **read-only views over shared-memory round state**
(:meth:`~repro.mapreduce.executors.RoundStateHandle.load`), so kernels
must never write into their inputs — derive new arrays (as ``np.clip``
etc. already do) instead of mutating in place.

**Numerical parity contract** (``tolerance``, see
:data:`repro.fusion.base.PARITY_TOLERANCE_ABS`): results match the scalar
references to ~1e-12 in practice; the contractual bound tests and
benchmarks assert is 1e-9 absolute.  Exact bitwise equality is *not*
guaranteed, because ``np.add.reduceat`` visits the same addends in array
order (with pairwise blocking) while the scalar references sum in
canonical (sorted) order.  The scalar references' canonical-order
summation is itself load-bearing: it is what makes the serial and
scalar-parallel backends independent of ``PYTHONHASHSEED`` (a dict/set
iteration order would leak each worker's hash seed into the last ulp) and
therefore bit-identical to each other — the ``bitwise`` contract the
golden tests freeze.  The batched kernels inherit hash-seed independence
trivially: they never iterate a hash-ordered container at all, only
integer-indexed arrays whose layout is canonically sorted at build time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fusion.observations import ColumnarClaims

__all__ = [
    "ACC_FLOOR",
    "ACC_CEIL",
    "RoundPosteriors",
    "accu_round",
    "popaccu_round",
    "vote_round",
    "stage2_accuracies",
    "theta_fallback_probabilities",
]

#: Accuracy clamp shared by the scalar references (accu.py, popaccu.py) and
#: the batched kernels below — the scalar↔vectorized parity contract
#: depends on both paths clamping identically.
ACC_FLOOR = 1e-3
ACC_CEIL = 1.0 - 1e-3


@dataclass(eq=False)  # ndarray fields: generated __eq__ would raise
class RoundPosteriors:
    """Stage-I output of one round: per-row posterior + validity mask."""

    posteriors: np.ndarray  # float64 per row; meaningful only where scored
    scored: np.ndarray  # bool per row


def _empty_round() -> RoundPosteriors:
    return RoundPosteriors(
        posteriors=np.zeros(0, dtype=np.float64), scored=np.zeros(0, dtype=bool)
    )


def _segment_sum(values: np.ndarray, ptr: np.ndarray) -> np.ndarray:
    """Sum of ``values`` per CSR segment (segments must be non-empty)."""
    return np.add.reduceat(values, ptr[:-1])


def _support_and_activity(
    cols: ColumnarClaims, active: np.ndarray, require_repeated: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-claim activity, per-row support, observed-row and item masks."""
    claim_active = active[cols.claim_prov]
    m_row = _segment_sum(claim_active.astype(np.float64), cols.row_ptr)
    observed = m_row > 0
    row_support_max = np.maximum.reduceat(m_row, cols.item_ptr[:-1])
    item_ok = row_support_max >= (2.0 if require_repeated else 1.0)
    return claim_active, m_row, observed, item_ok


def accu_round(
    cols: ColumnarClaims,
    accuracies: np.ndarray,
    active: np.ndarray,
    n_false: int,
    require_repeated: bool = False,
) -> RoundPosteriors:
    """Batched ACCU: softmax of summed vote counts over the full domain.

    Mirrors ``accu_item_posteriors``: vote count ``τ(S) = ln(N·A/(1−A))``
    summed per row, softmax per item against the observed rows plus
    ``max(N + 1 − k, 0)`` unobserved values at vote count 0.
    """
    if cols.n_rows == 0:
        return _empty_round()
    claim_active, m_row, observed, item_ok = _support_and_activity(
        cols, active, require_repeated
    )
    acc = np.clip(accuracies, ACC_FLOOR, ACC_CEIL)[cols.claim_prov]
    tau = np.log(n_false * acc / (1.0 - acc)) * claim_active
    vote_row = _segment_sum(tau, cols.row_ptr)

    k_item = _segment_sum(observed.astype(np.float64), cols.item_ptr)
    vote_masked = np.where(observed, vote_row, -np.inf)
    peak = np.maximum(np.maximum.reduceat(vote_masked, cols.item_ptr[:-1]), 0.0)
    expv = np.where(observed, np.exp(vote_row - peak[cols.row_item]), 0.0)
    unobserved = np.maximum(n_false + 1 - k_item, 0.0)
    denom = _segment_sum(expv, cols.item_ptr) + unobserved * np.exp(-peak)
    posteriors = expv / denom[cols.row_item]
    return RoundPosteriors(
        posteriors=posteriors, scored=observed & item_ok[cols.row_item]
    )


def popaccu_round(
    cols: ColumnarClaims,
    accuracies: np.ndarray,
    active: np.ndarray,
    require_repeated: bool = False,
) -> RoundPosteriors:
    """Batched POPACCU: empirical false-value popularity, explicit OTHER.

    Mirrors ``popaccu_item_posteriors``.  With per-row aggregates
    ``lt = Σ ln A``, ``lf = Σ ln(1−A)``, support ``m``, and per-item totals
    ``LF = Σ lf``, ``T = Σ m·ln m``, ``m(D) = Σ m``, the scalar candidate
    score telescopes to

        score(v) = lt_v + (LF − lf_v) + (T − m_v·ln m_v)
                   − (m(D) − m_v)·ln(m(D) − m_v)

    (empty rest-sum when ``v`` is unanimous), and the OTHER candidate to
    ``LF + T − m(D)·ln m(D)``; posteriors are the normalised exponentials.
    """
    if cols.n_rows == 0:
        return _empty_round()
    claim_active, m_row, observed, item_ok = _support_and_activity(
        cols, active, require_repeated
    )
    acc = np.clip(accuracies, ACC_FLOOR, ACC_CEIL)[cols.claim_prov]
    lt_row = _segment_sum(np.log(acc) * claim_active, cols.row_ptr)
    lf_row = _segment_sum(np.log(1.0 - acc) * claim_active, cols.row_ptr)

    safe_m = np.where(observed, m_row, 1.0)
    mlogm = np.where(observed, m_row * np.log(safe_m), 0.0)
    lf_item = _segment_sum(lf_row, cols.item_ptr)
    t_item = _segment_sum(mlogm, cols.item_ptr)
    total_item = _segment_sum(m_row, cols.item_ptr)

    rest = total_item[cols.row_item] - m_row
    rest_term = np.where(rest > 0, rest * np.log(np.maximum(rest, 1.0)), 0.0)
    score_row = (
        lt_row
        + (lf_item[cols.row_item] - lf_row)
        + (t_item[cols.row_item] - mlogm)
        - rest_term
    )
    safe_total = np.maximum(total_item, 1.0)
    other = lf_item + t_item - np.where(
        total_item > 0, total_item * np.log(safe_total), 0.0
    )

    score_masked = np.where(observed, score_row, -np.inf)
    peak = np.maximum(np.maximum.reduceat(score_masked, cols.item_ptr[:-1]), other)
    exps = np.where(observed, np.exp(score_row - peak[cols.row_item]), 0.0)
    denom = _segment_sum(exps, cols.item_ptr) + np.exp(other - peak)
    posteriors = exps / denom[cols.row_item]
    return RoundPosteriors(
        posteriors=posteriors, scored=observed & item_ok[cols.row_item]
    )


def vote_round(
    cols: ColumnarClaims,
    active: np.ndarray | None = None,
    require_repeated: bool = False,
) -> RoundPosteriors:
    """Batched VOTE: ``p(T) = m/n`` per row (``vote_item_posteriors``)."""
    if cols.n_rows == 0:
        return _empty_round()
    if active is None:
        active = np.ones(len(cols.provenances), dtype=bool)
    _claim_active, m_row, observed, item_ok = _support_and_activity(
        cols, active, require_repeated
    )
    total_item = _segment_sum(m_row, cols.item_ptr)
    posteriors = m_row / np.maximum(total_item, 1.0)[cols.row_item]
    return RoundPosteriors(
        posteriors=posteriors, scored=observed & item_ok[cols.row_item]
    )


def stage2_accuracies(
    cols: ColumnarClaims,
    round_result: RoundPosteriors,
    active: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Stage II: mean scored-triple posterior per active provenance.

    Returns ``(accuracies, updated)``: the new accuracy estimate per
    provenance and a mask of provenances that actually received one (were
    active and supported at least one scored row this round) — exactly the
    provenances the scalar Stage-II reducer emits.
    """
    scored_here = round_result.scored[cols.prov_rows]
    contrib = np.where(scored_here, round_result.posteriors[cols.prov_rows], 0.0)
    sums = _segment_sum(contrib, cols.prov_ptr)
    counts = _segment_sum(scored_here.astype(np.float64), cols.prov_ptr)
    updated = active & (counts > 0)
    new_acc = np.where(updated, sums / np.maximum(counts, 1.0), 0.0)
    return new_acc, updated


def theta_fallback_probabilities(
    cols: ColumnarClaims, accuracies: np.ndarray
) -> np.ndarray:
    """Per-row mean accuracy of the row's own provenances (θ-filter fallback)."""
    if cols.n_rows == 0:
        return np.zeros(0, dtype=np.float64)
    acc = accuracies[cols.claim_prov]
    counts = np.diff(cols.row_ptr).astype(np.float64)
    return _segment_sum(acc, cols.row_ptr) / counts
