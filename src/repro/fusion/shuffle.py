"""Columnar shuffle: fusion's shards as int ids over pool-resident columns.

The paper runs every fusion stage as sharded MapReduce over compact
key-partitioned records.  The first parallel backend here approximated
that by pickling each shard's grouped ``(Triple, ProvKey)`` value lists
into the workers — byte-for-byte the *heaviest* possible wire format, and
the overhead ROADMAP called out as the blocker to real multi-core wins.

This module replaces that object shuffle.  The claim matrix already has a
canonical columnar form (:class:`~repro.fusion.observations.ColumnarClaims`
— int-coded CSR over sorted items/triples/provenances), so:

- the **columns themselves** (triples, provenances, pointer arrays, the
  canonical row ranking) are installed *pool-resident* once per pool via
  :meth:`~repro.mapreduce.executors.ParallelExecutor.install_state`
  (:func:`install_fusion_columns`), on fork and spawn alike;
- each **shard task payload** is a list of integer item/provenance ids
  plus, inside the per-job spec, the round's accuracy/posterior state as
  contiguous float64/bool numpy buffers — no ``Claim``, ``Triple``,
  ``DataItem`` or ``ExtractionRecord`` ever rides in a shard payload
  (the test suite audits this with
  :func:`~repro.mapreduce.codec.scan_payload_types`);
- both stages run on the executors' shared map-only protocol
  (:class:`~repro.mapreduce.executors.ShardedMapJob` / ``run_map``), the
  same codec layer extraction shards use.

**Bit-identity.**  Workers rebuild each data item's
``dict[Triple, set[ProvKey]]`` from the resident columns and call the
*scalar* posterior kernel — the identical float operations the serial
backend performs, in the identical order, because the scalar kernels sum
in canonical (sorted) order rather than set-iteration order.  That makes
serial, fork-parallel and spawn-parallel output bit-identical at any
worker count, independent of ``PYTHONHASHSEED``.

The one scalar behaviour the columnar shuffle cannot reproduce is
reducer-input *sampling* (the paper's ``L``): the sampled subsets are
defined in terms of the scalar dataflow's value order.  When sampling
would engage, the runner falls back to the in-process serial reference —
exactly as the vectorized backend does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fusion.observations import ColumnarClaims, ProvKey
from repro.kb.triples import Triple
from repro.mapreduce.executors import Executor, ShardedMapJob, worker_state

__all__ = [
    "FUSION_COLUMNS_KEY",
    "install_fusion_columns",
    "Stage1ColumnarShard",
    "Stage2ColumnarShard",
    "stage1_job",
    "stage2_job",
    "merge_stage1_outputs",
]

#: Registry key the fusion columns are installed under (see
#: :func:`repro.mapreduce.executors.worker_state`).
FUSION_COLUMNS_KEY = "fusion.columns"


def install_fusion_columns(executor: Executor, cols: ColumnarClaims) -> None:
    """Make ``cols`` pool-resident for the stage shards.

    The canonical row ranking is materialised first so workers receive it
    prebuilt instead of each re-sorting the triple column.  Crosses the
    process boundary once per pool; in-process executors just register the
    object.
    """
    cols.canonical_rank()
    executor.install_state(FUSION_COLUMNS_KEY, cols)


@dataclass(frozen=True)
class Stage1ColumnarShard:
    """One Stage-I dispatch: score a shard of data items.

    Pickled once per job; carries only the round state — the accuracy
    vector and active mask as contiguous numpy buffers — plus the
    picklable posterior kernel.  Shard items are integer item ids into
    the pool-resident columns.

    Each item's output is a list of ``(row_id, posterior)`` pairs (empty
    when the item is filtered), satisfying the one-output-per-item
    ``run_map`` contract.
    """

    posterior_fn: Callable
    accuracies: np.ndarray  # float64 per provenance id
    active: np.ndarray  # bool per provenance id
    require_repeated: bool

    def __call__(self, item_ids: list[int]) -> list[list[tuple[int, float]]]:
        cols: ColumnarClaims = worker_state(FUSION_COLUMNS_KEY)
        provenances = cols.provenances
        triples = cols.triples
        item_ptr, row_ptr = cols.item_ptr, cols.row_ptr
        claim_prov, active = cols.claim_prov, self.active
        # Same float64 values the serial reducer sees in its dict.
        accuracy_of: dict[ProvKey, float] = dict(
            zip(provenances, self.accuracies.tolist())
        )
        outputs: list[list[tuple[int, float]]] = []
        for j in item_ids:
            claims: dict[Triple, set[ProvKey]] = {}
            kept_rows: list[int] = []
            repeated = False
            for r in range(item_ptr[j], item_ptr[j + 1]):
                provs = {
                    provenances[p]
                    for p in claim_prov[row_ptr[r] : row_ptr[r + 1]]
                    if active[p]
                }
                if provs:
                    claims[triples[r]] = provs
                    kept_rows.append(int(r))
                    repeated = repeated or len(provs) >= 2
            if not claims or (self.require_repeated and not repeated):
                outputs.append([])
                continue
            posteriors = self.posterior_fn(claims, accuracy_of)
            outputs.append([(r, posteriors[triples[r]]) for r in kept_rows])
        return outputs


@dataclass(frozen=True)
class Stage2ColumnarShard:
    """One Stage-II dispatch: re-estimate a shard of provenance accuracies.

    Shard items are integer provenance ids; the round's posteriors and
    scored mask cross once per job as contiguous buffers.  Output per
    provenance is its new accuracy (mean posterior of its scored triples,
    summed in canonical triple order — bit-identical to the serial
    Stage-II reducer) or None when the provenance is inactive or scored
    nothing this round, mirroring the keys the serial reducer emits.
    """

    posteriors: np.ndarray  # float64 per row (meaningful where scored)
    scored: np.ndarray  # bool per row
    active: np.ndarray  # bool per provenance id

    def __call__(self, prov_ids: list[int]) -> list[float | None]:
        cols: ColumnarClaims = worker_state(FUSION_COLUMNS_KEY)
        rank = cols.canonical_rank()
        outputs: list[float | None] = []
        for p in prov_ids:
            if not self.active[p]:
                outputs.append(None)
                continue
            rows = cols.prov_rows[cols.prov_ptr[p] : cols.prov_ptr[p + 1]]
            rows = rows[self.scored[rows]]
            if rows.size == 0:
                outputs.append(None)
                continue
            ordered = rows[np.argsort(rank[rows], kind="stable")]
            total = 0.0
            for value in self.posteriors[ordered].tolist():
                total += value
            outputs.append(total / int(rows.size))
        return outputs


def stage1_job(
    name: str,
    cols: ColumnarClaims,
    posterior_fn: Callable,
    accuracies: np.ndarray,
    active: np.ndarray,
    require_repeated: bool,
) -> ShardedMapJob:
    """The Stage-I round as a map-only job over item ids.

    ``key_fn`` resolves the item's canonical key in the parent (it never
    pickles), so shard assignment matches the stable crc32 partitioning
    every other sharded stage uses.
    """
    return ShardedMapJob(
        name=name,
        map_shard=Stage1ColumnarShard(
            posterior_fn=posterior_fn,
            accuracies=np.array(accuracies, dtype=np.float64),
            active=np.array(active, dtype=bool),
            require_repeated=require_repeated,
        ),
        key_fn=lambda j: cols.items[j].canonical(),
    )


def stage2_job(
    name: str,
    cols: ColumnarClaims,
    posteriors: np.ndarray,
    scored: np.ndarray,
    active: np.ndarray,
) -> ShardedMapJob:
    """The Stage-II round as a map-only job over provenance ids."""
    return ShardedMapJob(
        name=name,
        map_shard=Stage2ColumnarShard(
            posteriors=posteriors, scored=scored, active=np.array(active, dtype=bool)
        ),
        key_fn=lambda p: cols.provenances[p],
    )


def merge_stage1_outputs(
    cols: ColumnarClaims, per_item: list[list[tuple[int, float]]]
) -> tuple[dict[Triple, float], np.ndarray, np.ndarray]:
    """Collect shard outputs into the posterior dict + row arrays."""
    posteriors_arr = np.zeros(cols.n_rows, dtype=np.float64)
    scored = np.zeros(cols.n_rows, dtype=bool)
    posteriors: dict[Triple, float] = {}
    for pairs in per_item:
        for r, value in pairs:
            posteriors_arr[r] = value
            scored[r] = True
            posteriors[cols.triples[r]] = value
    return posteriors, posteriors_arr, scored
