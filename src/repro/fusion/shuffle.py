"""Columnar shuffle: fusion's shards as int ids over pool-resident columns.

The paper runs every fusion stage as sharded MapReduce over compact
key-partitioned records.  The first parallel backend here approximated
that by pickling each shard's grouped ``(Triple, ProvKey)`` value lists
into the workers — byte-for-byte the *heaviest* possible wire format, and
the overhead ROADMAP called out as the blocker to real multi-core wins.

This module replaces that object shuffle.  The claim matrix already has a
canonical columnar form (:class:`~repro.fusion.observations.ColumnarClaims`
— int-coded CSR over sorted items/triples/provenances), so:

- the **columns themselves** (triples, provenances, pointer arrays, the
  canonical row ranking) are installed *pool-resident* once per pool via
  :meth:`~repro.mapreduce.executors.ParallelExecutor.install_state`
  (:func:`install_fusion_columns`), on fork and spawn alike;
- the **round state** (the accuracy/posterior/active-mask vectors that
  change every round) crosses once per round through the executors'
  round-state channel
  (:meth:`~repro.mapreduce.executors.ParallelExecutor.install_round_state`,
  shared-memory segments with a pickled-inline fallback, installed under
  :data:`FUSION_ROUND_KEY`) — each **shard task payload** is therefore a
  list of integer item/provenance ids plus, inside the per-job spec, only
  the tiny :class:`~repro.mapreduce.executors.RoundStateHandle`: no
  ``Claim``, ``Triple``, ``DataItem``, ``ExtractionRecord``, *or numpy
  buffer* ever rides in a shard payload (the test suite audits this with
  :func:`~repro.mapreduce.codec.scan_payload_types`);
- both stages run on the executors' shared map-only protocol
  (:class:`~repro.mapreduce.executors.ShardedMapJob` / ``run_map``), the
  same codec layer extraction shards use.

Two shard families share that wire format:

- the **scalar shards** (:class:`Stage1ColumnarShard` /
  :class:`Stage2ColumnarShard`) rebuild each data item's
  ``dict[Triple, set[ProvKey]]`` from the resident columns and call the
  *scalar* posterior kernel — the ``parallel`` backend;
- the **hybrid shards** (:class:`HybridStage1Shard` /
  :class:`HybridStage2Shard`) slice the resident columns
  (:meth:`~repro.fusion.observations.ColumnarClaims.slice_items`) and run
  the *batched* numpy kernels of :mod:`repro.fusion.kernels` — one
  vectorized kernel call per shard instead of N scalar per-item updates,
  multiplying the ~40x kernel win by the worker count.

**The parity contract.**  The scalar shards perform the identical float
operations the serial backend performs, in the identical order, because
the scalar kernels sum in canonical (sorted) order rather than
set-iteration order.  That makes serial, fork-parallel and spawn-parallel
output **bit-identical** at any worker count, independent of
``PYTHONHASHSEED`` (a ``spawn`` worker draws its own hash seed; summing in
set order would leak it into the last ulp).  The hybrid shards instead
honour the **tolerance** contract
(:data:`repro.fusion.base.PARITY_TOLERANCE_ABS`, 1e-9 absolute): numpy's
``reduceat``/pairwise summation visits the same addends in a different
order, so results match the scalar reference only to ~1e-12.  Which
contract a run honoured is recorded in
``result.diagnostics["parity"]`` (``"bitwise"`` | ``"tolerance"``).

**Canonical-order sampling.**  Reducer-input sampling (the paper's ``L``)
is defined in canonical order: a key's values are put in sorted order —
``(triple, provenance)`` for Stage I, canonical triple order for Stage II
— before the deterministic positional draw
(:func:`~repro.mapreduce.executors.sample_positions`).  The columnar CSR
layout *is* that order (items hold triples sorted canonically, each row's
provenances sorted), so the scalar shards re-draw identical subsets
against the resident columns and sampled parallel runs stay bit-identical
to serial — the old degrade-to-``"serial (parallel fallback)"`` behaviour
is gone.  The batched hybrid kernels cannot subset per item, so under
sampling pressure the runner swaps hybrid's Stage I/II jobs for the
scalar shards (``backend_used == "parallel (hybrid fallback)"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fusion.observations import ColumnarClaims, ProvKey, ragged_gather
from repro.kb.triples import Triple
from repro.mapreduce.executors import (
    Executor,
    RoundStateHandle,
    ShardedMapJob,
    sample_positions,
    worker_state,
)

__all__ = [
    "FUSION_COLUMNS_KEY",
    "FUSION_ROUND_KEY",
    "install_fusion_columns",
    "install_stage1_state",
    "install_stage2_state",
    "uninstall_fusion_columns",
    "uninstall_fusion_round_state",
    "Stage1ColumnarShard",
    "Stage2ColumnarShard",
    "HybridStage1Shard",
    "HybridStage2Shard",
    "stage1_job",
    "stage2_job",
    "hybrid_stage1_job",
    "hybrid_stage2_job",
    "merge_stage1_outputs",
]

#: Registry key the fusion columns are installed under (see
#: :func:`repro.mapreduce.executors.worker_state`).
FUSION_COLUMNS_KEY = "fusion.columns"

#: Round-state key the per-round buffers are installed under.  Both stages
#: share it: Stage II's install supersedes Stage I's within a round, so at
#: most one shared-memory segment per fusion run is ever live.
FUSION_ROUND_KEY = "fusion.round"


def install_fusion_columns(executor: Executor, cols: ColumnarClaims) -> None:
    """Make ``cols`` pool-resident for the stage shards.

    The canonical row ranking is materialised first so workers receive it
    prebuilt instead of each re-sorting the triple column.  Crosses the
    process boundary once per pool; in-process executors just register the
    object.
    """
    cols.canonical_rank()
    executor.install_state(FUSION_COLUMNS_KEY, cols)


def uninstall_fusion_columns(executor: Executor) -> None:
    """Withdraw the pool-resident columns installed by
    :func:`install_fusion_columns`."""
    executor.uninstall_state(FUSION_COLUMNS_KEY)


def uninstall_fusion_round_state(executor: Executor) -> None:
    """Release the round-state channel both stage installers publish on.

    One call per round regardless of which stage installed last: the
    stages share :data:`FUSION_ROUND_KEY`, so this unlinks whatever
    segment is currently live.
    """
    executor.uninstall_round_state(FUSION_ROUND_KEY)


def install_stage1_state(
    executor: Executor, accuracies: np.ndarray, active: np.ndarray
) -> RoundStateHandle:
    """Publish one round's Stage-I inputs on the round-state channel."""
    return executor.install_round_state(
        FUSION_ROUND_KEY,
        {
            "accuracies": np.asarray(accuracies, dtype=np.float64),
            "active": np.asarray(active, dtype=bool),
        },
    )


def install_stage2_state(
    executor: Executor,
    posteriors: np.ndarray,
    scored: np.ndarray,
    active: np.ndarray,
) -> RoundStateHandle:
    """Publish one round's Stage-II inputs on the round-state channel."""
    return executor.install_round_state(
        FUSION_ROUND_KEY,
        {
            "posteriors": np.asarray(posteriors, dtype=np.float64),
            "scored": np.asarray(scored, dtype=bool),
            "active": np.asarray(active, dtype=bool),
        },
    )


@dataclass(frozen=True)
class Stage1ColumnarShard:
    """One scalar Stage-I dispatch: score a shard of data items.

    Pickled once per job; carries only the picklable posterior kernel
    plus the :class:`~repro.mapreduce.executors.RoundStateHandle` naming
    the round's accuracy vector and active mask (the buffers themselves
    live in shared memory, crossing once per round — see
    :func:`install_stage1_state`).  Shard items are integer item ids into
    the pool-resident columns.

    Each item's output is a list of ``(row_id, posterior)`` pairs (empty
    when the item is filtered), satisfying the one-output-per-item
    ``run_map`` contract.

    When the sampling bound engages for an item, its active claims are
    subset by the canonical-order draw: the columnar claim order (rows
    canonically sorted within the item, provenances sorted within each
    row) is exactly the serial reducer's sorted value order, and the
    positional draw depends only on ``(seed, name, item key)`` — so the
    sampled subset, and therefore the posterior floats, match the serial
    reference bit-for-bit.
    """

    posterior_fn: Callable
    state: RoundStateHandle  # names the round's accuracies + active mask
    require_repeated: bool
    name: str = "fusion.stage1"
    sample_limit: int | None = None
    seed: int = 0

    def __call__(self, item_ids: list[int]) -> list[list[tuple[int, float]]]:
        cols: ColumnarClaims = worker_state(FUSION_COLUMNS_KEY)
        round_state = self.state.load()
        items = cols.items
        provenances = cols.provenances
        triples = cols.triples
        item_ptr, row_ptr = cols.item_ptr, cols.row_ptr
        claim_prov, active = cols.claim_prov, round_state["active"]
        # Same float64 values the serial reducer sees in its dict.
        accuracy_of: dict[ProvKey, float] = dict(
            zip(provenances, round_state["accuracies"].tolist())
        )
        outputs: list[list[tuple[int, float]]] = []
        for j in item_ids:
            claims: dict[Triple, set[ProvKey]] = {}
            kept_rows: list[int] = []
            n_active = 0
            for r in range(item_ptr[j], item_ptr[j + 1]):
                provs = {
                    provenances[p]
                    for p in claim_prov[row_ptr[r] : row_ptr[r + 1]]
                    if active[p]
                }
                if provs:
                    claims[triples[r]] = provs
                    kept_rows.append(int(r))
                    n_active += len(provs)
            if not claims:
                outputs.append([])
                continue
            if self.sample_limit is not None and n_active > self.sample_limit:
                positions = sample_positions(
                    n_active,
                    items[j].canonical(),
                    self.name,
                    self.sample_limit,
                    self.seed,
                )
                # Enumerate the item's active claims in canonical order —
                # the columnar layout order — and keep the drawn subset.
                pairs = [
                    (r, prov)
                    for r in kept_rows
                    for prov in sorted(claims[triples[r]])
                ]
                claims, kept_rows = {}, []
                for i in positions:
                    r, prov = pairs[i]
                    if triples[r] not in claims:
                        claims[triples[r]] = set()
                        kept_rows.append(r)
                    claims[triples[r]].add(prov)
            if self.require_repeated and not any(
                len(provs) >= 2 for provs in claims.values()
            ):
                outputs.append([])
                continue
            posteriors = self.posterior_fn(claims, accuracy_of)
            outputs.append([(r, posteriors[triples[r]]) for r in kept_rows])
        return outputs


@dataclass(frozen=True)
class Stage2ColumnarShard:
    """One scalar Stage-II dispatch: re-estimate a shard of accuracies.

    Shard items are integer provenance ids; the round's posteriors and
    scored/active masks cross once per round on the round-state channel
    (:func:`install_stage2_state`) — the spec carries only the handle.
    Output per provenance is its new accuracy (mean posterior of its
    scored triples, summed in canonical triple order — bit-identical to
    the serial Stage-II reducer) or None when the provenance is inactive
    or scored nothing this round, mirroring the keys the serial reducer
    emits.

    Sampling follows the same canonical-order contract as Stage I: the
    provenance's scored rows are ordered by the resident canonical triple
    ranking (the serial reducer's ``sorted(seen)`` order) before the
    positional draw, so sampled means match serial bit-for-bit.
    """

    state: RoundStateHandle  # names the round's posteriors/scored/active
    name: str = "fusion.stage2"
    sample_limit: int | None = None
    seed: int = 0

    def __call__(self, prov_ids: list[int]) -> list[float | None]:
        cols: ColumnarClaims = worker_state(FUSION_COLUMNS_KEY)
        round_state = self.state.load()
        posteriors = round_state["posteriors"]
        scored = round_state["scored"]
        active = round_state["active"]
        rank = cols.canonical_rank()
        outputs: list[float | None] = []
        for p in prov_ids:
            if not active[p]:
                outputs.append(None)
                continue
            rows = cols.prov_rows[cols.prov_ptr[p] : cols.prov_ptr[p + 1]]
            rows = rows[scored[rows]]
            if rows.size == 0:
                outputs.append(None)
                continue
            ordered = rows[np.argsort(rank[rows], kind="stable")]
            positions = sample_positions(
                int(ordered.size),
                cols.provenances[p],
                self.name,
                self.sample_limit,
                self.seed,
            )
            if positions is not None:
                ordered = ordered[np.asarray(positions, dtype=np.int64)]
            total = 0.0
            for value in posteriors[ordered].tolist():
                total += value
            outputs.append(total / int(ordered.size))
        return outputs


@dataclass(frozen=True)
class HybridStage1Shard:
    """One hybrid Stage-I dispatch: one batched kernel call per shard.

    The kernel must expose ``batch_round`` (the built-in
    ``AccuKernel``/``PopAccuKernel``/``VoteKernel`` do); it runs over a
    :class:`~repro.fusion.observations.ColumnarSlice` of the
    pool-resident columns, replacing the shard's per-item Python loop
    with a fixed number of array operations.  Wire format is identical to
    the scalar shard — ``(row_id, posterior)`` pairs per item — so the
    parent-side merge is shared; only the float summation order differs
    (tolerance parity, not bitwise).
    """

    kernel: Callable  # must expose batch_round(cols, acc, active, repeated)
    state: RoundStateHandle  # names the round's accuracies + active mask
    require_repeated: bool

    def __call__(self, item_ids: list[int]) -> list[list[tuple[int, float]]]:
        cols: ColumnarClaims = worker_state(FUSION_COLUMNS_KEY)
        round_state = self.state.load()
        part = cols.slice_items(item_ids)
        round_result = self.kernel.batch_round(
            part, round_state["accuracies"], round_state["active"],
            self.require_repeated,
        )
        scored = round_result.scored
        posteriors = round_result.posteriors
        outputs: list[list[tuple[int, float]]] = []
        for i in range(part.n_items):
            begin, end = part.item_ptr[i], part.item_ptr[i + 1]
            outputs.append(
                [
                    (int(part.rows[r]), float(posteriors[r]))
                    for r in range(begin, end)
                    if scored[r]
                ]
            )
        return outputs


@dataclass(frozen=True)
class HybridStage2Shard:
    """One hybrid Stage-II dispatch: batched accuracy re-estimation.

    Gathers the shard provenances' supported rows from the transposed CSR
    in one set of array operations and reduces mean scored-triple
    posteriors with ``np.add.reduceat`` — the shard-local equivalent of
    :func:`repro.fusion.kernels.stage2_accuracies`.  Summation runs in
    row-id order rather than canonical triple order, hence tolerance (not
    bitwise) parity.
    """

    state: RoundStateHandle  # names the round's posteriors/scored/active

    def __call__(self, prov_ids: list[int]) -> list[float | None]:
        cols: ColumnarClaims = worker_state(FUSION_COLUMNS_KEY)
        round_state = self.state.load()
        active = round_state["active"]
        ids = np.asarray(prov_ids, dtype=np.int64)
        counts = cols.prov_ptr[ids + 1] - cols.prov_ptr[ids]
        ptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        # Every provenance supports >= 1 row by construction, so no
        # reduceat segment is empty.
        rows = cols.prov_rows[ragged_gather(cols.prov_ptr[ids], counts)]
        scored_here = round_state["scored"][rows]
        contrib = np.where(scored_here, round_state["posteriors"][rows], 0.0)
        sums = np.add.reduceat(contrib, ptr[:-1])
        ns = np.add.reduceat(scored_here.astype(np.float64), ptr[:-1])
        return [
            float(sums[i] / ns[i]) if active[p] and ns[i] > 0 else None
            for i, p in enumerate(ids)
        ]


def stage1_job(
    name: str,
    cols: ColumnarClaims,
    posterior_fn: Callable,
    state: RoundStateHandle,
    require_repeated: bool,
    sample_limit: int | None = None,
    seed: int = 0,
) -> ShardedMapJob:
    """The scalar Stage-I round as a map-only job over item ids.

    ``state`` is the handle :func:`install_stage1_state` returned for
    this round.  ``key_fn`` resolves the item's canonical key in the
    parent (it never pickles), so shard assignment matches the stable
    crc32 partitioning every other sharded stage uses.
    """
    return ShardedMapJob(
        name=name,
        map_shard=Stage1ColumnarShard(
            posterior_fn=posterior_fn,
            state=state,
            require_repeated=require_repeated,
            name=name,
            sample_limit=sample_limit,
            seed=seed,
        ),
        key_fn=lambda j: cols.items[j].canonical(),
    )


def stage2_job(
    name: str,
    cols: ColumnarClaims,
    state: RoundStateHandle,
    sample_limit: int | None = None,
    seed: int = 0,
) -> ShardedMapJob:
    """The scalar Stage-II round as a map-only job over provenance ids.

    ``state`` is the handle :func:`install_stage2_state` returned for
    this round.
    """
    return ShardedMapJob(
        name=name,
        map_shard=Stage2ColumnarShard(
            state=state,
            name=name,
            sample_limit=sample_limit,
            seed=seed,
        ),
        key_fn=lambda p: cols.provenances[p],
    )


def hybrid_stage1_job(
    name: str,
    cols: ColumnarClaims,
    kernel: Callable,
    state: RoundStateHandle,
    require_repeated: bool,
) -> ShardedMapJob:
    """The hybrid Stage-I round: batched kernels per shard of item ids."""
    return ShardedMapJob(
        name=name,
        map_shard=HybridStage1Shard(
            kernel=kernel,
            state=state,
            require_repeated=require_repeated,
        ),
        key_fn=lambda j: cols.items[j].canonical(),
    )


def hybrid_stage2_job(
    name: str,
    cols: ColumnarClaims,
    state: RoundStateHandle,
) -> ShardedMapJob:
    """The hybrid Stage-II round: batched reduce per shard of prov ids."""
    return ShardedMapJob(
        name=name,
        map_shard=HybridStage2Shard(state=state),
        key_fn=lambda p: cols.provenances[p],
    )


def merge_stage1_outputs(
    cols: ColumnarClaims, per_item: list[list[tuple[int, float]]]
) -> tuple[dict[Triple, float], np.ndarray, np.ndarray]:
    """Collect shard outputs into the posterior dict + row arrays."""
    posteriors_arr = np.zeros(cols.n_rows, dtype=np.float64)
    scored = np.zeros(cols.n_rows, dtype=bool)
    posteriors: dict[Triple, float] = {}
    for pairs in per_item:
        for r, value in pairs:
            posteriors_arr[r] = value
            scored[r] = True
            posteriors[cols.triples[r]] = value
    return posteriors, posteriors_arr, scored
