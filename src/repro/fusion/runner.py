"""The iterative fusion pipeline of Figure 8.

Stage I maps claims by data item and computes per-item posteriors given
current provenance accuracies; Stage II maps scored claims by provenance
and re-estimates each provenance's accuracy as the mean posterior of its
unique triples; the two stages alternate until the accuracies move less
than the tolerance or the round budget ``R`` is spent; Stage III
deduplicates by triple and emits the result.  Both reducers honour the
sampling bound ``L``.

The §4.3 refinements plug in here:

- **coverage filter** (refinement I): in round 1 only data items where
  some triple has ≥2 provenances are scored; provenances that never
  receive a re-evaluated accuracy keep the default and are ignored from
  round 2 on.  Triples whose items never get scored end up *unpredicted*.
- **accuracy filter** (refinement III, θ): provenances with accuracy < θ
  are ignored; a triple whose item loses every provenance falls back to
  the mean accuracy of its own provenances.
- **gold initialisation** (refinement IV): provenance accuracies start at
  the fraction of their LCWA-labelled triples that are true (for a
  deterministic ``gold_sample_rate`` subsample), instead of the default.

Execution backends (``FusionConfig.backend``):

- ``serial`` — the reference path: scalar per-item posteriors through the
  in-process MapReduce engine;
- ``parallel`` — the *columnar shuffle* (:mod:`repro.fusion.shuffle`):
  the claim columns are installed pool-resident once per pool, each round
  dispatches both stages as :class:`~repro.mapreduce.executors.ShardedMapJob`
  map-only jobs over integer item/provenance ids (round state crosses as
  contiguous float64/bool buffers — no ``Claim``/``Triple`` objects in
  shard payloads), and workers run the identical scalar kernels —
  bit-identical to ``serial`` on fork *and* spawn, at any worker count.
  Reducer-input sampling (``L``) no longer degrades this path: sampled
  subsets are defined in canonical order (see below) and the shard
  workers re-draw them identically against the resident columns;
- ``vectorized`` — both stages batched as numpy array operations over the
  cached columnar claim index (:mod:`repro.fusion.kernels`), skipping the
  per-item Python loop entirely.  Requires ``item_posterior_fn`` to carry
  a ``batch_round`` method (the built-in kernels do) and reverts to
  ``serial`` when reducer-input sampling would engage (the batched
  kernels score whole rounds and cannot subset per item);
- ``hybrid`` — the composition: the columnar shuffle's sharded dispatch
  *with* the vectorized kernels inside each shard
  (:class:`~repro.fusion.shuffle.HybridStage1Shard`), so every worker
  runs one batched kernel call per shard instead of N scalar updates.
  Requires ``batch_round`` like ``vectorized``; degrades to the scalar
  ``parallel`` shards (never to serial) when the kernel has no batched
  form or sampling must engage.

**Parity.**  ``serial``/``parallel`` honour the ``bitwise`` contract
(identical floats, any worker count/start method);
``vectorized``/``hybrid`` honour the ``tolerance`` contract (1e-9
absolute, :data:`repro.fusion.base.PARITY_TOLERANCE_ABS`) because batched
summation order differs.  Tolerance parity through an *iterated* θ-filter
needs one extra guarantee: the discrete ``A(S) >= θ`` decisions must not
flip on last-ulp drift (POPACCU parks many accuracies exactly at θ), so
both batched paths recompute θ-boundary accuracies through the exact
serial dataflow each round (:data:`THETA_RESCUE_BAND`).  Every run
records the contract it honoured in ``result.diagnostics["parity"]``.

**Canonical-order sampling.**  Stage-I samples a data item's claims in
``(triple, provenance)`` canonical order; Stage-II samples a provenance's
scored triples in canonical triple order (the jobs' ``sample_key``).  The
sampled subset is therefore a property of the key's value *set*, not the
scalar dataflow's arrival order — which is what lets the parallel shards
(whose columnar layout enumerates values in exactly that order) reproduce
it bit-for-bit.  ``result.diagnostics["sampling"]`` records
``"canonical-order"`` whenever ``L`` is configured.

``result.diagnostics["backend"]`` records what was requested and
``["backend_used"]`` what actually ran; ``parallel``/``hybrid`` runs also
report the executor's ``fallbacks_tiny`` / ``fallbacks_unpicklable``
counters (jobs that ran in-process because dispatch could not pay off, or
because the posterior kernel would not pickle).

A caller-managed executor can be threaded through ``run_bayesian_fusion``
(and ``Fuser.fuse``) so extraction and fusion share one worker pool — the
``repro-kf pipeline`` subcommand / :func:`repro.endtoend.run_end_to_end`
do exactly that.  Caller-managed executors are not closed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fusion import kernels, shuffle
from repro.fusion.base import (
    FusionConfig,
    FusionResult,
    parity_of,
    sampling_contract_of,
)
from repro.fusion.matrix import ColumnarClaimMatrix
from repro.fusion.observations import ColumnarClaims, FusionInput, ProvKey
from repro.kb.triples import Triple
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import Executor, ParallelExecutor, SerialExecutor
from repro.rng import split_seed

__all__ = [
    "run_bayesian_fusion",
    "make_executor",
    "sampling_would_engage",
    "stage1_mapper",
    "stage1_sample_key",
    "stage2_sample_key",
    "Stage1Reducer",
]

ItemPosteriorFn = Callable[
    [dict[Triple, set[ProvKey]], dict[ProvKey, float]], dict[Triple, float]
]


def _gold_subsample(
    gold_labels: dict[Triple, bool], rate: float, seed: int
) -> dict[Triple, bool]:
    """Deterministic per-triple subsample of the gold standard."""
    if rate >= 1.0:
        return gold_labels
    sampled: dict[Triple, bool] = {}
    threshold = int(rate * 1_000_000)
    for triple, label in gold_labels.items():
        if split_seed(seed, "goldsample", triple.canonical()) % 1_000_000 < threshold:
            sampled[triple] = label
    return sampled


def stage1_mapper(claim):
    """Fan one ``(item, triple, prov)`` claim out under its item key.

    Shared by the Bayesian runner and VOTE — the Stage-I dataflow keys
    claims identically everywhere.
    """
    item, triple, prov = claim
    return [(item.canonical(), (triple, prov))]


def stage1_sample_key(value):
    """Canonical order of one Stage-I value: ``(triple, provenance)``.

    Matches the columnar claim layout (triples canonically sorted within
    the item, provenances sorted within each row), so shard workers
    re-draw identical sampled subsets against the resident columns.
    Module-level so parallel reduce shards can pickle it.
    """
    triple, prov = value
    return (triple.canonical(), prov)


def stage2_sample_key(value):
    """Canonical order of one Stage-II value: the triple.

    The same order the Stage-II reducer sums in (``sorted(seen)``), and
    the resident columns' ``canonical_rank`` — sampling and summation
    stay aligned across backends.
    """
    return value[0].canonical()


@dataclass(frozen=True, eq=False)
class Stage1Reducer:
    """Per-item posterior reducer; module-level dataclass so the parallel
    backend can pickle it into worker processes."""

    posterior_fn: ItemPosteriorFn
    accuracies: dict[ProvKey, float]
    require_repeated: bool

    def __call__(self, _item_key, values):
        claims: dict[Triple, set[ProvKey]] = {}
        for triple, prov in values:
            claims.setdefault(triple, set()).add(prov)
        if self.require_repeated and not any(len(p) >= 2 for p in claims.values()):
            return []
        return list(self.posterior_fn(claims, self.accuracies).items())


def _stage2_reducer(prov, values):
    """Mean posterior of a provenance's (deduplicated) scored triples.

    Summed in canonical triple order (not insertion order) so the result
    is hash-seed independent and matches the columnar shard workers
    bit-for-bit.
    """
    seen: dict[Triple, float] = {}
    for triple, probability in values:
        seen[triple] = probability
    if not seen:
        return []
    return [(prov, sum(seen[t] for t in sorted(seen)) / len(seen))]


def _stage1(
    engine: MapReduceEngine,
    matrix,
    active: set[ProvKey],
    accuracies: dict[ProvKey, float],
    item_posterior_fn: ItemPosteriorFn,
    config: FusionConfig,
    require_repeated: bool,
) -> dict[Triple, float]:
    """Map claims by data item; reduce to per-triple posteriors."""
    claim_stream = [
        (item, triple, prov)
        for item, triple_map in matrix.items.items()
        for triple, provs in triple_map.items()
        for prov in sorted(provs)
        if prov in active
    ]
    job = MapReduceJob(
        name="fusion.stage1",
        mapper=stage1_mapper,
        reducer=Stage1Reducer(item_posterior_fn, accuracies, require_repeated),
        sample_limit=config.sample_limit,
        seed=config.seed,
        sample_key=stage1_sample_key,
    )
    return dict(engine.run(claim_stream, job))


def _stage2(
    engine: MapReduceEngine,
    matrix,
    active: set[ProvKey],
    posteriors: dict[Triple, float],
    config: FusionConfig,
) -> dict[ProvKey, float]:
    """Map scored triples by provenance; reduce to accuracy estimates."""

    def mapper(pair):  # runs in-process; only the reducer ships to workers
        prov, triple = pair
        return [(prov, (triple, posteriors[triple]))]

    pairs = [
        (prov, triple)
        for prov, triples in matrix.prov_triples.items()
        if prov in active
        for triple in triples
        if triple in posteriors
    ]
    job = MapReduceJob(
        name="fusion.stage2",
        mapper=mapper,
        reducer=_stage2_reducer,
        sample_limit=config.sample_limit,
        seed=config.seed,
        sample_key=stage2_sample_key,
    )
    return dict(engine.run(pairs, job))


#: Half-width of the θ-boundary rescue band used by the tolerance-parity
#: backends (vectorized / hybrid).  The accuracy filter ``A(S) >= θ`` is a
#: *discrete* decision over a continuous estimate, and the POPACCU valleys
#: park many provenance accuracies exactly at θ = 0.5 — so a last-ulp
#: summation difference would flip filter membership and snowball into
#: O(1) output divergence over the rounds.  Any provenance whose batched
#: Stage-II estimate lands within this band of θ therefore has its
#: accuracy *recomputed through the exact serial scalar dataflow*
#: (canonical-order sums over scalar per-item posteriors), making every
#: θ-decision bit-identical to serial while the continuous mass of the
#: computation stays batched.  The band must dwarf the batched-vs-scalar
#: numeric drift (~1e-12) and be dwarfed by any meaningful accuracy
#: difference; 1e-6 sits comfortably between.
THETA_RESCUE_BAND = 1e-6


def _scalar_item_posteriors(
    cols: ColumnarClaims,
    posterior_fn: ItemPosteriorFn,
    accuracy_of: dict[ProvKey, float],
    active: np.ndarray,
    item: int,
) -> dict[Triple, float]:
    """One item's posteriors through the exact serial scalar dataflow."""
    claims: dict[Triple, set[ProvKey]] = {}
    for r in range(cols.item_ptr[item], cols.item_ptr[item + 1]):
        provs = {
            cols.provenances[p]
            for p in cols.claim_prov[cols.row_ptr[r] : cols.row_ptr[r + 1]]
            if active[p]
        }
        if provs:
            claims[cols.triples[r]] = provs
    return posterior_fn(claims, accuracy_of) if claims else {}


def _exact_boundary_accuracies(
    cols: ColumnarClaims,
    posterior_fn: ItemPosteriorFn,
    round_accuracies: np.ndarray,
    active: np.ndarray,
    scored: np.ndarray,
    boundary_provs,
) -> dict[int, float]:
    """Serial-exact Stage-II accuracies for the θ-boundary provenances.

    ``round_accuracies`` must be the accuracies the round's Stage I ran
    with (pre-update); ``scored`` the round's scored-row mask, which is
    pure boolean logic and therefore already bitwise across backends.
    Reproduces the serial reducer exactly: scalar per-item posteriors,
    deduplicated per triple, summed in canonical order.
    """
    accuracy_of: dict[ProvKey, float] = dict(
        zip(cols.provenances, round_accuracies.tolist())
    )
    rank = cols.canonical_rank()
    item_cache: dict[int, dict[Triple, float]] = {}
    exact: dict[int, float] = {}
    for p in boundary_provs:
        rows = cols.prov_rows[cols.prov_ptr[p] : cols.prov_ptr[p + 1]]
        rows = rows[scored[rows]]
        if rows.size == 0:
            continue
        ordered = rows[np.argsort(rank[rows], kind="stable")]
        total = 0.0
        for r in ordered.tolist():
            item = int(cols.row_item[r])
            posteriors = item_cache.get(item)
            if posteriors is None:
                posteriors = _scalar_item_posteriors(
                    cols, posterior_fn, accuracy_of, active, item
                )
                item_cache[item] = posteriors
            total += posteriors[cols.triples[r]]
        exact[int(p)] = total / int(ordered.size)
    return exact


def make_executor(config: FusionConfig, backend: str) -> Executor:
    if backend in ("parallel", "hybrid"):
        return ParallelExecutor(max_workers=config.n_workers)
    return SerialExecutor()


def sampling_would_engage(
    cols: ColumnarClaims, config: FusionConfig, include_stage2: bool = True
) -> bool:
    """True when some reducer group could exceed the sampling bound L.

    ``include_stage2=False`` restricts the check to the item-keyed Stage-I
    groups, for dataflows (VOTE) whose only sampled job groups by item.
    """
    if config.sample_limit is None:
        return False
    if cols.n_rows == 0:
        return False
    if cols.item_claim_counts().max(initial=0) > config.sample_limit:
        return True
    return include_stage2 and bool(
        cols.prov_row_counts().max(initial=0) > config.sample_limit
    )


def run_bayesian_fusion(
    fusion_input: FusionInput,
    config: FusionConfig,
    item_posterior_fn: ItemPosteriorFn,
    method_name: str,
    gold_labels: dict[Triple, bool] | None = None,
    track_rounds: bool = False,
    backend: str | None = None,
    executor: Executor | None = None,
) -> FusionResult:
    """Run the full iterative pipeline and return a :class:`FusionResult`.

    ``track_rounds=True`` stores the per-round probability snapshots in
    ``result.diagnostics["round_probabilities"]`` (used by the Figure 14
    experiment).  ``backend`` overrides ``config.backend`` for this run.
    ``executor`` supplies a caller-managed executor — shared with other
    pipeline stages and *not* closed here (the caller closes it); only
    the ``serial`` and ``parallel`` backends consult it.
    """
    requested = backend if backend is not None else config.backend
    matrix = fusion_input.claims(config.granularity)

    if requested == "vectorized":
        cols = matrix.columnar()
        if hasattr(item_posterior_fn, "batch_round") and not sampling_would_engage(
            cols, config
        ):
            return _run_vectorized(
                matrix,
                cols,
                config,
                item_posterior_fn,
                method_name,
                gold_labels,
                track_rounds,
                requested,
            )
        # No batched form (e.g. a closure posterior) or sampling must
        # engage: the scalar reference path is the defined behaviour.
        return _run_mapreduce(
            matrix,
            config,
            item_posterior_fn,
            method_name,
            gold_labels,
            track_rounds,
            requested,
            backend_used="serial (vectorized fallback)",
        )
    if requested in ("parallel", "hybrid"):
        cols = matrix.columnar()
        # Hybrid runs batched kernels per shard; without a batched form,
        # or when per-item sampling must engage (batched kernels score
        # whole rounds), it degrades to the scalar parallel shards —
        # which handle canonical-order sampling themselves — never to
        # the in-process serial reference.
        hybrid = (
            requested == "hybrid"
            and hasattr(item_posterior_fn, "batch_round")
            and not sampling_would_engage(cols, config)
        )
        backend_used = requested if hybrid or requested == "parallel" else (
            "parallel (hybrid fallback)"
        )
        return _run_parallel_columnar(
            matrix,
            cols,
            config,
            item_posterior_fn,
            method_name,
            gold_labels,
            track_rounds,
            requested,
            executor=executor,
            hybrid=hybrid,
            backend_used=backend_used,
        )
    return _run_mapreduce(
        matrix,
        config,
        item_posterior_fn,
        method_name,
        gold_labels,
        track_rounds,
        requested,
        backend_used=requested,
        executor=executor,
    )


def _run_mapreduce(
    matrix,
    config: FusionConfig,
    item_posterior_fn: ItemPosteriorFn,
    method_name: str,
    gold_labels: dict[Triple, bool] | None,
    track_rounds: bool,
    requested: str,
    backend_used: str,
    executor: Executor | None = None,
) -> FusionResult:
    """The scalar engine path (the serial reference)."""
    owns_executor = executor is None
    if executor is None:
        executor = make_executor(config, backend_used)
    engine = MapReduceEngine(executor)
    default = config.default_accuracy

    all_provs = set(matrix.prov_triples)
    accuracies: dict[ProvKey, float] = {prov: default for prov in sorted(all_provs)}
    evaluated: set[ProvKey] = set()

    gold_initialized = 0
    if gold_labels:
        sampled = _gold_subsample(gold_labels, config.gold_sample_rate, config.seed)
        for prov, triples in matrix.prov_triples.items():
            labels = [sampled[t] for t in triples if t in sampled]
            if labels:
                accuracies[prov] = sum(labels) / len(labels)
                evaluated.add(prov)
                gold_initialized += 1

    def active_set(round_index: int) -> set[ProvKey]:
        active = set(all_provs)
        if config.filter_by_coverage and round_index > 0:
            active &= evaluated
        if config.min_accuracy is not None:
            active = {p for p in active if accuracies[p] >= config.min_accuracy}
        return active

    posteriors: dict[Triple, float] = {}
    round_probabilities: list[dict[Triple, float]] = []
    rounds_run = 0
    converged = False
    try:
        for round_index in range(config.max_rounds):
            active = active_set(round_index)
            require_repeated = config.filter_by_coverage and round_index == 0
            posteriors = _stage1(
                engine,
                matrix,
                active,
                accuracies,
                item_posterior_fn,
                config,
                require_repeated,
            )
            new_accuracies = _stage2(engine, matrix, active, posteriors, config)
            delta = 0.0
            for prov, accuracy in new_accuracies.items():
                delta = max(delta, abs(accuracy - accuracies[prov]))
                accuracies[prov] = accuracy
                evaluated.add(prov)
            rounds_run = round_index + 1
            if track_rounds:
                round_probabilities.append(dict(posteriors))
            if delta < config.convergence_tol:
                converged = True
                break
        fallback_diagnostics = (
            {
                "fallbacks_tiny": executor.fallbacks_tiny,
                "fallbacks_unpicklable": executor.fallbacks_unpicklable,
                "fallbacks_shm": executor.fallbacks_shm,
            }
            if isinstance(executor, ParallelExecutor)
            else {}
        )
    finally:
        if owns_executor:
            engine.executor.close()

    return _finalize_scalar_result(
        matrix=matrix,
        posteriors=posteriors,
        accuracies=accuracies,
        config=config,
        method_name=method_name,
        rounds_run=rounds_run,
        converged=converged,
        round_probabilities=round_probabilities if track_rounds else None,
        diagnostics={
            "n_items": len(matrix.items),
            "n_provenances": len(all_provs),
            "n_claims": matrix.n_claims(),
            "gold_initialized": gold_initialized,
            "n_active_final": len(active_set(rounds_run)),
            "backend": requested,
            "backend_used": backend_used,
            "parity": parity_of(backend_used),
            "sampling": sampling_contract_of(config),
            **fallback_diagnostics,
        },
    )


def _finalize_scalar_result(
    matrix,
    posteriors: dict[Triple, float],
    accuracies: dict[ProvKey, float],
    config: FusionConfig,
    method_name: str,
    rounds_run: int,
    converged: bool,
    round_probabilities: list[dict[Triple, float]] | None,
    diagnostics: dict,
) -> FusionResult:
    """Stage III + result assembly, shared by the serial and columnar paths.

    Dedup by triple, applying the fallbacks for filtered items: scored
    triples keep their posterior; under the θ-filter an unscored triple
    falls back to the mean accuracy of its own provenances (summed in
    canonical order for hash-seed independence); otherwise it is
    *unpredicted*.
    """
    probabilities: dict[Triple, float] = {}
    unpredicted: set[Triple] = set()
    for item, triple_map in matrix.items.items():
        for triple, provs in triple_map.items():
            if triple in posteriors:
                probabilities[triple] = posteriors[triple]
            elif config.min_accuracy is not None:
                probabilities[triple] = sum(
                    accuracies[p] for p in sorted(provs)
                ) / len(provs)
            else:
                unpredicted.add(triple)

    result = FusionResult(
        method=method_name,
        probabilities=probabilities,
        unpredicted=unpredicted,
        accuracies=accuracies,
        rounds=rounds_run,
        converged=converged,
        diagnostics=diagnostics,
    )
    if round_probabilities is not None:
        result.diagnostics["round_probabilities"] = round_probabilities
    result.validate()
    return result


def _finalize_columnar_result(
    cols: ColumnarClaims,
    posteriors: dict[Triple, float],
    accuracies: dict[ProvKey, float],
    config: FusionConfig,
    method_name: str,
    rounds_run: int,
    converged: bool,
    round_probabilities: list[dict[Triple, float]] | None,
    diagnostics: dict,
) -> FusionResult:
    """Stage III over the columns — no dict claim views required.

    The column-native twin of :func:`_finalize_scalar_result` for inputs
    that never built a record-backed ``ClaimMatrix`` (the out-of-core
    path, where the dict views would cost gigabytes).  Value-identical
    to the scalar version: rows are unique triples, a row's claim span
    lists provenance ids ascending, and ascending provenance id *is*
    ``sorted(provs)`` order because the provenance vocabulary is sorted
    — so the θ-fallback mean sums in exactly the same order.
    """
    probabilities: dict[Triple, float] = {}
    unpredicted: set[Triple] = set()
    provenances = cols.provenances
    claim_prov = cols.claim_prov
    row_ptr = cols.row_ptr
    for r, triple in enumerate(cols.triples):
        if triple in posteriors:
            probabilities[triple] = posteriors[triple]
        elif config.min_accuracy is not None:
            row_prov_ids = claim_prov[int(row_ptr[r]) : int(row_ptr[r + 1])].tolist()
            probabilities[triple] = sum(
                accuracies[provenances[p]] for p in row_prov_ids
            ) / len(row_prov_ids)
        else:
            unpredicted.add(triple)

    result = FusionResult(
        method=method_name,
        probabilities=probabilities,
        unpredicted=unpredicted,
        accuracies=accuracies,
        rounds=rounds_run,
        converged=converged,
        diagnostics=diagnostics,
    )
    if round_probabilities is not None:
        result.diagnostics["round_probabilities"] = round_probabilities
    result.validate()
    return result


def _run_parallel_columnar(
    matrix,
    cols: ColumnarClaims,
    config: FusionConfig,
    item_posterior_fn: ItemPosteriorFn,
    method_name: str,
    gold_labels: dict[Triple, bool] | None,
    track_rounds: bool,
    requested: str,
    executor: Executor | None = None,
    hybrid: bool = False,
    backend_used: str = "parallel",
) -> FusionResult:
    """The columnar-shuffle path (see :mod:`repro.fusion.shuffle`).

    Accuracy state lives in a float64 array indexed by provenance id and
    crosses to workers once per round on the executors' round-state
    channel (shared-memory segments where available; the shard specs
    carry only the tiny handle); the claim columns are pool-resident.
    With ``hybrid=False`` workers run
    the scalar posterior kernels over claims dicts rebuilt from the
    columns — every float operation matches the serial reference
    bit-for-bit, on fork and spawn pools alike, because the kernels sum
    in canonical order (sampling included: the shards re-draw the
    canonical-order subsets).  With ``hybrid=True`` workers run one
    batched numpy kernel call per shard over a slice of the resident
    columns — tolerance parity, scalar wall-clock divided by the worker
    count.
    """
    owns_executor = executor is None
    if executor is None:
        executor = make_executor(config, "parallel")
    shuffle.install_fusion_columns(executor, cols)

    n_provs = len(cols.provenances)
    accuracies = np.full(n_provs, config.default_accuracy, dtype=np.float64)
    evaluated = np.zeros(n_provs, dtype=bool)

    gold_initialized = 0
    if gold_labels:
        sampled = _gold_subsample(gold_labels, config.gold_sample_rate, config.seed)
        for p in range(n_provs):
            rows = cols.prov_rows[cols.prov_ptr[p] : cols.prov_ptr[p + 1]]
            labels = [
                sampled[cols.triples[r]] for r in rows if cols.triples[r] in sampled
            ]
            if labels:
                accuracies[p] = sum(labels) / len(labels)
                evaluated[p] = True
                gold_initialized += 1

    def active_mask(round_index: int) -> np.ndarray:
        active = np.ones(n_provs, dtype=bool)
        if config.filter_by_coverage and round_index > 0:
            active &= evaluated
        if config.min_accuracy is not None:
            active &= accuracies >= config.min_accuracy
        return active

    posteriors: dict[Triple, float] = {}
    round_probabilities: list[dict[Triple, float]] = []
    rounds_run = 0
    converged = False
    try:
        for round_index in range(config.max_rounds):
            active = active_mask(round_index)
            require_repeated = config.filter_by_coverage and round_index == 0
            state1 = shuffle.install_stage1_state(executor, accuracies, active)
            if hybrid:
                job1 = shuffle.hybrid_stage1_job(
                    "fusion.stage1",
                    cols,
                    item_posterior_fn,
                    state1,
                    require_repeated,
                )
            else:
                job1 = shuffle.stage1_job(
                    "fusion.stage1",
                    cols,
                    item_posterior_fn,
                    state1,
                    require_repeated,
                    sample_limit=config.sample_limit,
                    seed=config.seed,
                )
            per_item = executor.run_map(range(cols.n_items), job1)
            posteriors, posteriors_arr, scored = shuffle.merge_stage1_outputs(
                cols, per_item
            )
            state2 = shuffle.install_stage2_state(
                executor, posteriors_arr, scored, active
            )
            if hybrid:
                job2 = shuffle.hybrid_stage2_job("fusion.stage2", cols, state2)
            else:
                job2 = shuffle.stage2_job(
                    "fusion.stage2",
                    cols,
                    state2,
                    sample_limit=config.sample_limit,
                    seed=config.seed,
                )
            new_accuracies = executor.run_map(range(n_provs), job2)
            if hybrid and config.min_accuracy is not None:
                # Keep every θ-filter decision bitwise: see THETA_RESCUE_BAND.
                boundary = [
                    p
                    for p, accuracy in enumerate(new_accuracies)
                    if accuracy is not None
                    and abs(accuracy - config.min_accuracy) <= THETA_RESCUE_BAND
                ]
                if boundary:
                    rescued = _exact_boundary_accuracies(
                        cols, item_posterior_fn, accuracies, active, scored, boundary
                    )
                    for p, value in rescued.items():
                        new_accuracies[p] = value
            delta = 0.0
            for p, accuracy in enumerate(new_accuracies):
                if accuracy is None:
                    continue
                delta = max(delta, abs(accuracy - accuracies[p]))
                accuracies[p] = accuracy
                evaluated[p] = True
            rounds_run = round_index + 1
            if track_rounds:
                round_probabilities.append(dict(posteriors))
            if delta < config.convergence_tol:
                converged = True
                break
        fallback_diagnostics = (
            {
                "fallbacks_tiny": executor.fallbacks_tiny,
                "fallbacks_unpicklable": executor.fallbacks_unpicklable,
                "fallbacks_shm": executor.fallbacks_shm,
            }
            if isinstance(executor, ParallelExecutor)
            else {}
        )
        round_state_channel = getattr(executor, "round_state_channel", "in-process")
    finally:
        # Release the round's shared-memory segment even on a
        # caller-managed executor (its close() would also do this, but a
        # shared executor may outlive the fusion stage by a long time).
        shuffle.uninstall_fusion_round_state(executor)
        if owns_executor:
            executor.close()

    accuracies_out = {
        prov: float(accuracies[p]) for p, prov in enumerate(cols.provenances)
    }
    diagnostics = {
        "n_items": cols.n_items,
        "n_provenances": n_provs,
        "n_claims": cols.n_claims,
        "gold_initialized": gold_initialized,
        "n_active_final": int(active_mask(rounds_run).sum()),
        "backend": requested,
        "backend_used": backend_used,
        "parity": parity_of(backend_used),
        "sampling": sampling_contract_of(config),
        "round_state": round_state_channel,
        **fallback_diagnostics,
    }
    if isinstance(matrix, ColumnarClaimMatrix):
        # Column-backed input (the out-of-core path): finalize straight
        # from the columns so the dict claim views never materialise.
        return _finalize_columnar_result(
            cols=cols,
            posteriors=posteriors,
            accuracies=accuracies_out,
            config=config,
            method_name=method_name,
            rounds_run=rounds_run,
            converged=converged,
            round_probabilities=round_probabilities if track_rounds else None,
            diagnostics=diagnostics,
        )
    return _finalize_scalar_result(
        matrix=matrix,
        posteriors=posteriors,
        accuracies=accuracies_out,
        config=config,
        method_name=method_name,
        rounds_run=rounds_run,
        converged=converged,
        round_probabilities=round_probabilities if track_rounds else None,
        diagnostics=diagnostics,
    )


def _run_vectorized(
    matrix,
    cols: ColumnarClaims,
    config: FusionConfig,
    kernel,
    method_name: str,
    gold_labels: dict[Triple, bool] | None,
    track_rounds: bool,
    requested: str,
) -> FusionResult:
    """The batched numpy path: whole rounds as array operations.

    Accuracy state lives in a float64 array indexed by provenance id;
    posteriors in a float64 array indexed by row (= unique triple).  The
    Python dict outputs are materialised once at the end (Stage III), so
    the per-round cost is a fixed number of numpy kernels regardless of
    item count.
    """
    n_provs = len(cols.provenances)
    accuracies = np.full(n_provs, config.default_accuracy, dtype=np.float64)
    evaluated = np.zeros(n_provs, dtype=bool)

    gold_initialized = 0
    if gold_labels:
        sampled = _gold_subsample(gold_labels, config.gold_sample_rate, config.seed)
        for p in range(n_provs):
            rows = cols.prov_rows[cols.prov_ptr[p] : cols.prov_ptr[p + 1]]
            labels = [
                sampled[cols.triples[r]] for r in rows if cols.triples[r] in sampled
            ]
            if labels:
                accuracies[p] = sum(labels) / len(labels)
                evaluated[p] = True
                gold_initialized += 1

    def active_mask(round_index: int) -> np.ndarray:
        active = np.ones(n_provs, dtype=bool)
        if config.filter_by_coverage and round_index > 0:
            active &= evaluated
        if config.min_accuracy is not None:
            active &= accuracies >= config.min_accuracy
        return active

    round_result = kernels.RoundPosteriors(
        posteriors=np.zeros(cols.n_rows, dtype=np.float64),
        scored=np.zeros(cols.n_rows, dtype=bool),
    )
    round_probabilities: list[dict[Triple, float]] = []
    rounds_run = 0
    converged = False
    for round_index in range(config.max_rounds):
        active = active_mask(round_index)
        require_repeated = config.filter_by_coverage and round_index == 0
        round_result = kernel.batch_round(cols, accuracies, active, require_repeated)
        new_acc, updated = kernels.stage2_accuracies(cols, round_result, active)
        if config.min_accuracy is not None:
            # Keep every θ-filter decision bitwise: see THETA_RESCUE_BAND.
            boundary = np.flatnonzero(
                updated & (np.abs(new_acc - config.min_accuracy) <= THETA_RESCUE_BAND)
            )
            if boundary.size:
                rescued = _exact_boundary_accuracies(
                    cols, kernel, accuracies, active, round_result.scored, boundary
                )
                for p, value in rescued.items():
                    new_acc[p] = value
        delta = (
            float(np.max(np.abs(new_acc - accuracies)[updated]))
            if updated.any()
            else 0.0
        )
        accuracies = np.where(updated, new_acc, accuracies)
        evaluated |= updated
        rounds_run = round_index + 1
        if track_rounds:
            round_probabilities.append(
                {
                    cols.triples[r]: float(round_result.posteriors[r])
                    for r in np.flatnonzero(round_result.scored)
                }
            )
        if delta < config.convergence_tol:
            converged = True
            break

    # Stage III: rows are already unique triples; unscored rows take the
    # θ-fallback (mean accuracy of their own provenances) or go unpredicted.
    probabilities: dict[Triple, float] = {}
    unpredicted: set[Triple] = set()
    fallback = (
        kernels.theta_fallback_probabilities(cols, accuracies)
        if config.min_accuracy is not None
        else None
    )
    scored = round_result.scored
    post = round_result.posteriors
    for r, triple in enumerate(cols.triples):
        if scored[r]:
            probabilities[triple] = float(post[r])
        elif fallback is not None:
            probabilities[triple] = float(fallback[r])
        else:
            unpredicted.add(triple)

    accuracies_out = {
        prov: float(accuracies[p]) for p, prov in enumerate(cols.provenances)
    }
    result = FusionResult(
        method=method_name,
        probabilities=probabilities,
        unpredicted=unpredicted,
        accuracies=accuracies_out,
        rounds=rounds_run,
        converged=converged,
        diagnostics={
            "n_items": cols.n_items,
            "n_provenances": n_provs,
            "n_claims": cols.n_claims,
            "gold_initialized": gold_initialized,
            "n_active_final": int(active_mask(rounds_run).sum()),
            "backend": requested,
            "backend_used": "vectorized",
            "parity": parity_of("vectorized"),
            "sampling": sampling_contract_of(config),
        },
    )
    if track_rounds:
        result.diagnostics["round_probabilities"] = round_probabilities
    result.validate()
    return result
