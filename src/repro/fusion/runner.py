"""The iterative fusion pipeline of Figure 8.

Stage I maps claims by data item and computes per-item posteriors given
current provenance accuracies; Stage II maps scored claims by provenance
and re-estimates each provenance's accuracy as the mean posterior of its
unique triples; the two stages alternate until the accuracies move less
than the tolerance or the round budget ``R`` is spent; Stage III
deduplicates by triple and emits the result.  Both reducers honour the
sampling bound ``L``.

The §4.3 refinements plug in here:

- **coverage filter** (refinement I): in round 1 only data items where
  some triple has ≥2 provenances are scored; provenances that never
  receive a re-evaluated accuracy keep the default and are ignored from
  round 2 on.  Triples whose items never get scored end up *unpredicted*.
- **accuracy filter** (refinement III, θ): provenances with accuracy < θ
  are ignored; a triple whose item loses every provenance falls back to
  the mean accuracy of its own provenances.
- **gold initialisation** (refinement IV): provenance accuracies start at
  the fraction of their LCWA-labelled triples that are true (for a
  deterministic ``gold_sample_rate`` subsample), instead of the default.
"""

from __future__ import annotations

from typing import Callable

from repro.fusion.base import FusionConfig, FusionResult
from repro.fusion.observations import FusionInput, ProvKey
from repro.kb.triples import Triple
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.rng import split_seed

__all__ = ["run_bayesian_fusion"]

ItemPosteriorFn = Callable[
    [dict[Triple, set[ProvKey]], dict[ProvKey, float]], dict[Triple, float]
]


def _gold_subsample(
    gold_labels: dict[Triple, bool], rate: float, seed: int
) -> dict[Triple, bool]:
    """Deterministic per-triple subsample of the gold standard."""
    if rate >= 1.0:
        return gold_labels
    sampled: dict[Triple, bool] = {}
    threshold = int(rate * 1_000_000)
    for triple, label in gold_labels.items():
        if split_seed(seed, "goldsample", triple.canonical()) % 1_000_000 < threshold:
            sampled[triple] = label
    return sampled


def _stage1(
    engine: MapReduceEngine,
    matrix,
    active: set[ProvKey],
    accuracies: dict[ProvKey, float],
    item_posterior_fn: ItemPosteriorFn,
    config: FusionConfig,
    require_repeated: bool,
) -> dict[Triple, float]:
    """Map claims by data item; reduce to per-triple posteriors."""

    def mapper(claim):
        item, triple, prov = claim
        return [(item.canonical(), (triple, prov))]

    def reducer(_item_key, values):
        claims: dict[Triple, set[ProvKey]] = {}
        for triple, prov in values:
            claims.setdefault(triple, set()).add(prov)
        if require_repeated and not any(len(p) >= 2 for p in claims.values()):
            return []
        posteriors = item_posterior_fn(claims, accuracies)
        return list(posteriors.items())

    claim_stream = [
        (item, triple, prov)
        for item, triple_map in matrix.items.items()
        for triple, provs in triple_map.items()
        for prov in provs
        if prov in active
    ]
    job = MapReduceJob(
        name="fusion.stage1",
        mapper=mapper,
        reducer=reducer,
        sample_limit=config.sample_limit,
        seed=config.seed,
    )
    return dict(engine.run(claim_stream, job))


def _stage2(
    engine: MapReduceEngine,
    matrix,
    active: set[ProvKey],
    posteriors: dict[Triple, float],
    config: FusionConfig,
) -> dict[ProvKey, float]:
    """Map scored triples by provenance; reduce to accuracy estimates."""

    def mapper(pair):
        prov, triple = pair
        return [(prov, (triple, posteriors[triple]))]

    def reducer(prov, values):
        seen: dict[Triple, float] = {}
        for triple, probability in values:
            seen[triple] = probability
        if not seen:
            return []
        return [(prov, sum(seen.values()) / len(seen))]

    pairs = [
        (prov, triple)
        for prov, triples in matrix.prov_triples.items()
        if prov in active
        for triple in triples
        if triple in posteriors
    ]
    job = MapReduceJob(
        name="fusion.stage2",
        mapper=mapper,
        reducer=reducer,
        sample_limit=config.sample_limit,
        seed=config.seed,
    )
    return dict(engine.run(pairs, job))


def run_bayesian_fusion(
    fusion_input: FusionInput,
    config: FusionConfig,
    item_posterior_fn: ItemPosteriorFn,
    method_name: str,
    gold_labels: dict[Triple, bool] | None = None,
    track_rounds: bool = False,
) -> FusionResult:
    """Run the full iterative pipeline and return a :class:`FusionResult`.

    ``track_rounds=True`` stores the per-round probability snapshots in
    ``result.diagnostics["round_probabilities"]`` (used by the Figure 14
    experiment).
    """
    matrix = fusion_input.claims(config.granularity)
    engine = MapReduceEngine()
    default = config.default_accuracy

    all_provs = set(matrix.prov_triples)
    accuracies: dict[ProvKey, float] = {prov: default for prov in all_provs}
    evaluated: set[ProvKey] = set()

    gold_initialized = 0
    if gold_labels:
        sampled = _gold_subsample(gold_labels, config.gold_sample_rate, config.seed)
        for prov, triples in matrix.prov_triples.items():
            labels = [sampled[t] for t in triples if t in sampled]
            if labels:
                accuracies[prov] = sum(labels) / len(labels)
                evaluated.add(prov)
                gold_initialized += 1

    def active_set(round_index: int) -> set[ProvKey]:
        active = set(all_provs)
        if config.filter_by_coverage and round_index > 0:
            active &= evaluated
        if config.min_accuracy is not None:
            active = {p for p in active if accuracies[p] >= config.min_accuracy}
        return active

    posteriors: dict[Triple, float] = {}
    round_probabilities: list[dict[Triple, float]] = []
    rounds_run = 0
    converged = False
    for round_index in range(config.max_rounds):
        active = active_set(round_index)
        require_repeated = config.filter_by_coverage and round_index == 0
        posteriors = _stage1(
            engine,
            matrix,
            active,
            accuracies,
            item_posterior_fn,
            config,
            require_repeated,
        )
        new_accuracies = _stage2(engine, matrix, active, posteriors, config)
        delta = 0.0
        for prov, accuracy in new_accuracies.items():
            delta = max(delta, abs(accuracy - accuracies[prov]))
            accuracies[prov] = accuracy
            evaluated.add(prov)
        rounds_run = round_index + 1
        if track_rounds:
            round_probabilities.append(dict(posteriors))
        if delta < config.convergence_tol:
            converged = True
            break

    # Stage III: dedup by triple, applying the fallbacks for filtered items.
    probabilities: dict[Triple, float] = {}
    unpredicted: set[Triple] = set()
    for item, triple_map in matrix.items.items():
        for triple, provs in triple_map.items():
            if triple in posteriors:
                probabilities[triple] = posteriors[triple]
            elif config.min_accuracy is not None:
                # θ-filter fallback: mean accuracy of the triple's own
                # provenances (which may all be below θ).
                probabilities[triple] = sum(accuracies[p] for p in provs) / len(provs)
            else:
                unpredicted.add(triple)

    result = FusionResult(
        method=method_name,
        probabilities=probabilities,
        unpredicted=unpredicted,
        accuracies=accuracies,
        rounds=rounds_run,
        converged=converged,
        diagnostics={
            "n_items": len(matrix.items),
            "n_provenances": len(all_provs),
            "n_claims": matrix.n_claims(),
            "gold_initialized": gold_initialized,
            "n_active_final": len(active_set(rounds_run)),
        },
    )
    if track_rounds:
        result.diagnostics["round_probabilities"] = round_probabilities
    result.validate()
    return result
