"""Provenance keys: flattening the 3-D input to 2-D sources.

§4.1: "We reduce the dimension of the KF input by considering each
(Extractor, URL) pair as a data source, which we call a provenance."
§4.3.1 then varies the granularity: site instead of URL, plus the
predicate, plus the pattern.  Figure 9 additionally diagnoses two
degenerate flattenings — extractor-pattern only ("Only ext") and URL only
("Only src").

A provenance key is a plain tuple of strings, cheap to hash and to sort
(the MapReduce shuffle orders keys).
"""

from __future__ import annotations

import enum

from repro.errors import FusionError
from repro.extract.records import ExtractionRecord

__all__ = ["Granularity", "provenance_key", "PROVENANCE_LEVELS"]


class Granularity(enum.Enum):
    """How extraction records are flattened into data-fusion sources."""

    EXTRACTOR_URL = "extractor_url"
    EXTRACTOR_SITE = "extractor_site"
    EXTRACTOR_SITE_PREDICATE = "extractor_site_predicate"
    EXTRACTOR_SITE_PREDICATE_PATTERN = "extractor_site_predicate_pattern"
    EXTRACTOR_PATTERN_ONLY = "extractor_pattern_only"  # Fig 9 "Only ext"
    URL_ONLY = "url_only"  # Fig 9 "Only src"


PROVENANCE_LEVELS: tuple[Granularity, ...] = (
    Granularity.EXTRACTOR_URL,
    Granularity.EXTRACTOR_SITE,
    Granularity.EXTRACTOR_SITE_PREDICATE,
    Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN,
)


def provenance_key(record: ExtractionRecord, granularity: Granularity) -> tuple[str, ...]:
    """The data-fusion source this record belongs to under ``granularity``."""
    pattern = record.pattern if record.pattern is not None else f"{record.extractor}:-"
    if granularity is Granularity.EXTRACTOR_URL:
        return (record.extractor, record.url)
    if granularity is Granularity.EXTRACTOR_SITE:
        return (record.extractor, record.site)
    if granularity is Granularity.EXTRACTOR_SITE_PREDICATE:
        return (record.extractor, record.site, record.triple.predicate)
    if granularity is Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN:
        return (record.extractor, record.site, record.triple.predicate, pattern)
    if granularity is Granularity.EXTRACTOR_PATTERN_ONLY:
        return (pattern,)
    if granularity is Granularity.URL_ONLY:
        return (record.url,)
    raise FusionError(f"unknown granularity {granularity!r}")
