"""Fuser interface, configuration, and result type.

All fusers share one configuration surface (:class:`FusionConfig`) carrying
the paper's parameters — ``N`` uniformly-distributed false values and
default accuracy ``A`` for the Bayesian analysis, sampling bound ``L``,
round budget ``R``, the provenance granularity, and the two provenance
filters of §4.3.2.  Gold-standard labels for semi-supervised accuracy
initialisation (§4.3.3) are passed to the fuser separately because they
are data, not configuration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.fusion.observations import FusionInput, ProvKey
from repro.fusion.provenance import Granularity
from repro.kb.triples import Triple

__all__ = [
    "BACKENDS",
    "PARITY_BITWISE",
    "PARITY_TOLERANCE",
    "PARITY_TOLERANCE_ABS",
    "parity_of",
    "sampling_contract_of",
    "FusionConfig",
    "FusionResult",
    "Fuser",
]

#: Execution backends for the fusion pipeline:
#: - ``serial``: scalar per-item posteriors through the in-process engine;
#: - ``parallel``: same scalar reducers, sharded over a process pool
#:   (bit-identical to ``serial``);
#: - ``vectorized``: batched numpy kernels over the columnar claim index
#:   (matches ``serial`` to :data:`PARITY_TOLERANCE_ABS`; falls back to
#:   ``serial`` when the posterior function has no batched form or
#:   sampling must engage);
#: - ``hybrid``: the vectorized kernels *inside* each parallel shard —
#:   pool workers run one batched kernel call per shard of pool-resident
#:   columns instead of N scalar updates (tolerance parity; degrades to
#:   the scalar ``parallel`` path when the posterior function has no
#:   batched form or sampling must engage).
BACKENDS = ("serial", "parallel", "vectorized", "hybrid")

#: Numeric parity contracts a fusion run can honour (recorded per run in
#: ``result.diagnostics["parity"]``):
#: - ``bitwise``: every float operation matches the serial reference in
#:   the identical order — outputs are equal bit-for-bit, at any worker
#:   count and start method, independent of ``PYTHONHASHSEED``;
#: - ``tolerance``: batched summation order differs from the scalar
#:   reference, so outputs agree only to :data:`PARITY_TOLERANCE_ABS`
#:   (absolute).  Golden tests may freeze exact numbers only for
#:   ``bitwise`` runs.
PARITY_BITWISE = "bitwise"
PARITY_TOLERANCE = "tolerance"

#: The documented absolute tolerance of ``tolerance``-parity backends
#: (vectorized / hybrid) against the scalar serial reference.  The
#: kernels empirically sit near 1e-12; 1e-9 is the contractual bound the
#: test suite and benchmarks assert.
PARITY_TOLERANCE_ABS = 1e-9

#: Which parity each *executed* backend honours.  Keyed by the resolved
#: ``backend_used`` stem — fallback paths (``"serial (vectorized
#: fallback)"``, ``"parallel (hybrid fallback)"``) run scalar kernels and
#: are therefore bitwise.
_BACKEND_PARITY = {
    "serial": PARITY_BITWISE,
    "parallel": PARITY_BITWISE,
    "vectorized": PARITY_TOLERANCE,
    "hybrid": PARITY_TOLERANCE,
}


def parity_of(backend_used: str) -> str:
    """The numeric parity contract of a resolved ``backend_used`` string.

    Fallback spellings such as ``"serial (vectorized fallback)"`` or
    ``"parallel (hybrid fallback)"`` ran the scalar kernels and are
    bitwise; only runs that actually executed batched kernels
    (``"vectorized"``, ``"hybrid"``) are tolerance-parity.
    """
    return _BACKEND_PARITY.get(backend_used, PARITY_BITWISE)


def sampling_contract_of(config: "FusionConfig") -> str:
    """The reducer-input sampling contract tag for diagnostics.

    ``"canonical-order"`` when the sampling bound ``L`` is set: sampled
    subsets are drawn against each key's values in canonical (sorted)
    order, so every backend — serial, parallel shards, fallbacks — picks
    identical subsets.  ``"unbounded"`` when sampling is disabled.
    """
    return "canonical-order" if config.sample_limit is not None else "unbounded"


@dataclass(frozen=True)
class FusionConfig:
    """Shared fusion parameters (paper defaults).

    Attributes
    ----------
    granularity:
        How records are flattened into provenances (§4.1 / §4.3.1).
    n_false_values:
        ACCU's ``N``: the assumed count of uniformly-distributed false
        values per data item (default 100).
    default_accuracy:
        The initial accuracy ``A`` of every provenance (default 0.8).
    max_rounds:
        Forced termination after ``R`` rounds (default 5).
    sample_limit:
        Reducer-input sampling bound ``L`` (default 1M; the paper also
        evaluates 1K).  None disables sampling.
    convergence_tol:
        Stop earlier when the max accuracy change falls below this.
    filter_by_coverage:
        §4.3.2 refinement I: ignore provenances whose accuracy can never be
        re-evaluated away from the default.
    min_accuracy:
        §4.3.2 refinement III (θ): ignore provenances whose accuracy falls
        below θ; data items losing all provenances fall back to the mean
        accuracy of their provenances.  None disables the filter.
    gold_sample_rate:
        §4.3.3: fraction of the gold standard used for initialisation
        (Figure 12 sweeps 10/20/50/100%).
    seed:
        Seed for deterministic reducer sampling and gold subsampling.
    backend:
        Execution backend (see :data:`BACKENDS`): ``serial`` (default),
        ``parallel`` (process-pool sharded reduce, bit-identical),
        ``vectorized`` (batched numpy Stage I/II over the columnar
        index), or ``hybrid`` (batched kernels inside each parallel
        shard).  ``serial``/``parallel`` honour the ``bitwise`` parity
        contract, ``vectorized``/``hybrid`` the ``tolerance`` one (see
        :func:`parity_of`).
    n_workers:
        Worker-process count for the ``parallel`` and ``hybrid``
        backends (None = CPU count); ignored by the other backends.
    """

    granularity: Granularity = Granularity.EXTRACTOR_URL
    n_false_values: int = 100
    default_accuracy: float = 0.8
    max_rounds: int = 5
    sample_limit: int | None = 1_000_000
    convergence_tol: float = 1e-4
    filter_by_coverage: bool = False
    min_accuracy: float | None = None
    gold_sample_rate: float = 1.0
    seed: int = 0
    backend: str = "serial"
    n_workers: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1 or None, got {self.n_workers}")
        if self.n_false_values < 1:
            raise ConfigError(f"n_false_values must be >= 1, got {self.n_false_values}")
        if not 0.0 < self.default_accuracy < 1.0:
            raise ConfigError(
                f"default_accuracy must be in (0, 1), got {self.default_accuracy}"
            )
        if self.max_rounds < 1:
            raise ConfigError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.min_accuracy is not None and not 0.0 <= self.min_accuracy <= 1.0:
            raise ConfigError(
                f"min_accuracy must be in [0, 1] or None, got {self.min_accuracy}"
            )
        if not 0.0 <= self.gold_sample_rate <= 1.0:
            raise ConfigError(
                f"gold_sample_rate must be in [0, 1], got {self.gold_sample_rate}"
            )


@dataclass
class FusionResult:
    """Output of one fusion run.

    ``probabilities`` maps every predicted triple to its truthfulness
    probability; ``unpredicted`` holds triples the method declined to score
    (all their provenances were filtered — the paper reports 8.2% of
    triples in that state under the coverage filter).  ``accuracies`` is
    the final per-provenance accuracy estimate; ``rounds`` the number of
    Stage I/II iterations actually run.
    """

    method: str
    probabilities: dict[Triple, float]
    unpredicted: set[Triple] = field(default_factory=set)
    accuracies: dict[ProvKey, float] = field(default_factory=dict)
    rounds: int = 0
    converged: bool = False
    diagnostics: dict = field(default_factory=dict)

    def coverage(self) -> float:
        """Fraction of triples that received a probability."""
        total = len(self.probabilities) + len(self.unpredicted)
        if total == 0:
            return 0.0
        return len(self.probabilities) / total

    def validate(self) -> None:
        """Sanity-check all probabilities are in [0, 1]."""
        for triple, probability in self.probabilities.items():
            if not 0.0 <= probability <= 1.0:
                raise ConfigError(
                    f"probability out of range for {triple.canonical()}: "
                    f"{probability}"
                )


class Fuser(abc.ABC):
    """A fusion method: FusionInput -> FusionResult."""

    def __init__(
        self,
        config: FusionConfig | None = None,
        gold_labels: dict[Triple, bool] | None = None,
    ) -> None:
        self.config = config if config is not None else FusionConfig()
        self.gold_labels = gold_labels

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Method name for reports (e.g. ``POPACCU+``)."""

    @abc.abstractmethod
    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        """Compute truthfulness probabilities for every unique triple.

        ``executor`` optionally supplies a caller-managed
        :class:`~repro.mapreduce.executors.Executor` shared with other
        pipeline stages (the caller closes it); implementations that run
        purely in-process may ignore it.
        """
