"""Fusion input: unique (triple, provenance) claims.

Raw extraction is many-to-many — the same extractor may extract the same
triple from the same page through two patterns, and certainly from many
pages.  Fusion operates on the deduplicated *claim* matrix: for every data
item, which provenances support which triple.  :class:`FusionInput` builds
and caches that matrix per granularity, so the same extraction run can be
fused under many configurations cheaply (the granularity sweep of
Figure 10 does exactly that).

Two views of the same matrix coexist:

- the **dict view** (``ClaimMatrix.items`` / ``prov_triples``), convenient
  for per-item logic and the MapReduce reducers;
- the **columnar view** (:class:`ColumnarClaims`, via
  :meth:`ClaimMatrix.columnar`), an int-coded CSR layout built once and
  cached, which the vectorized posterior kernels of
  :mod:`repro.fusion.kernels` consume.  A *row* is one unique
  ``(data item, triple)`` pair — and because a triple determines its data
  item, rows are exactly the unique triples; a *claim* is one
  ``(row, provenance)`` support edge.  Rows are grouped contiguously by
  item and claims contiguously by row, so every per-item and per-row
  aggregate is a ``np.add.reduceat`` over a pointer array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extract.records import ExtractionRecord
from repro.fusion.provenance import Granularity, provenance_key
from repro.kb.triples import DataItem, Triple

__all__ = [
    "Claim",
    "ColumnarClaims",
    "ColumnarSlice",
    "FusionInput",
    "ragged_gather",
]

ProvKey = tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Claim:
    """One unique (triple, provenance) cell of the knowledge-fusion input."""

    triple: Triple
    provenance: ProvKey


@dataclass
class FusionInput:
    """Extraction records plus cached claim matrices per granularity."""

    records: list[ExtractionRecord]
    _cache: dict[Granularity, "ClaimMatrix"] = field(default_factory=dict, repr=False)

    def claims(self, granularity: Granularity) -> "ClaimMatrix":
        matrix = self._cache.get(granularity)
        if matrix is None:
            matrix = ClaimMatrix.build(self.records, granularity)
            self._cache[granularity] = matrix
        return matrix

    def unique_triples(self) -> list[Triple]:
        """All distinct extracted triples (the paper's 1.6B 'unique')."""
        return sorted({record.triple for record in self.records})

    def __len__(self) -> int:
        return len(self.records)


def ragged_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[k], starts[k]+counts[k])`` ranges, vectorized.

    The CSR-segment gather shared by :meth:`ColumnarClaims.slice_items`
    and the hybrid Stage-II shard — subtle index arithmetic that must
    live in exactly one place.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return np.repeat(starts - ptr[:-1], counts) + np.arange(total, dtype=np.int64)


@dataclass(eq=False)  # ndarray fields: generated __eq__ would raise
class ColumnarSlice:
    """A shard-local CSR view over a subset of a :class:`ColumnarClaims`.

    The batched posterior kernels (:mod:`repro.fusion.kernels`) only touch
    the CSR pointer/index arrays, so a *slice* carrying remapped local
    pointers over the selected items' rows and claims lets the same
    kernels score one parallel shard — the ``hybrid`` backend's unit of
    work.  ``rows`` maps each local row back to its global row id (for
    re-emitting posteriors against the full matrix); ``claim_prov`` keeps
    *global* provenance ids so the per-pool accuracy/active buffers index
    directly.
    """

    rows: np.ndarray  # local row -> global row id
    row_item: np.ndarray  # local row -> local item index
    item_ptr: np.ndarray  # local item j rows: [item_ptr[j], item_ptr[j+1])
    claim_prov: np.ndarray  # local claim -> GLOBAL provenance index
    row_ptr: np.ndarray  # local row r claims: [row_ptr[r], row_ptr[r+1])

    @property
    def n_items(self) -> int:
        return len(self.item_ptr) - 1

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_claims(self) -> int:
        return len(self.claim_prov)


@dataclass(eq=False)  # ndarray fields: generated __eq__ would raise
class ColumnarClaims:
    """Int-coded CSR view of a claim matrix for the vectorized kernels.

    Index spaces (all contiguous, all sorted so the layout is canonical):

    - **item** ``j``: ``items[j]`` (sorted :class:`DataItem`);
    - **row** ``r``: one unique triple, ``triples[r]``; rows are grouped by
      item — item ``j`` owns rows ``item_ptr[j]:item_ptr[j+1]`` — and
      sorted canonically within the item;
    - **provenance** ``p``: ``provenances[p]`` (sorted tuples);
    - **claim** ``c``: one ``(row, provenance)`` support edge; claims are
      grouped by row — row ``r`` owns claims ``row_ptr[r]:row_ptr[r+1]``
      and ``claim_prov[c]`` is the supporting provenance.

    ``prov_rows``/``prov_ptr`` is the transposed CSR: provenance ``p``
    supports rows ``prov_rows[prov_ptr[p]:prov_ptr[p+1]]`` (the columnar
    form of ``ClaimMatrix.prov_triples``, feeding Stage II).
    """

    granularity: Granularity
    items: list[DataItem]
    triples: list[Triple]
    provenances: list[ProvKey]
    row_item: np.ndarray  # row -> item index
    item_ptr: np.ndarray  # item j rows: [item_ptr[j], item_ptr[j+1])
    claim_prov: np.ndarray  # claim -> provenance index
    row_ptr: np.ndarray  # row r claims: [row_ptr[r], row_ptr[r+1])
    prov_rows: np.ndarray  # concatenated row ids per provenance
    prov_ptr: np.ndarray  # prov p rows: [prov_ptr[p], prov_ptr[p+1])
    _canonical_rank: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_rows(self) -> int:
        return len(self.triples)

    @property
    def n_claims(self) -> int:
        return len(self.claim_prov)

    def item_claim_counts(self) -> np.ndarray:
        """Claims per item (the Stage-I reducer input sizes)."""
        claims_per_row = np.diff(self.row_ptr)
        if self.n_items == 0:
            return np.zeros(0, dtype=np.int64)
        return np.add.reduceat(claims_per_row, self.item_ptr[:-1])

    def prov_row_counts(self) -> np.ndarray:
        """Unique supported triples per provenance (Stage-II input sizes)."""
        return np.diff(self.prov_ptr)

    def canonical_rank(self) -> np.ndarray:
        """Rank of each row in the *global* canonical-triple ordering.

        Rows are laid out item-major (items sorted field-wise, triples
        sorted within each item), which is *not* the same as sorting all
        triples by canonical string — ``("a", "x") < ("ab", "y")`` as
        tuples but ``"a|x" > "ab|y"`` as strings, because ``"|"`` sorts
        after every alphanumeric.  Reducers that must sum floats in
        ``sorted(triples)`` order (the Stage-II mean, for bit-identity
        with the serial backend) therefore order rows by this rank, built
        once and cached — pool-resident state carries it to workers.
        """
        if self._canonical_rank is None:
            order = sorted(
                range(len(self.triples)), key=lambda r: self.triples[r].canonical()
            )
            rank = np.empty(len(order), dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(
                len(order), dtype=np.int64
            )
            self._canonical_rank = rank
        return self._canonical_rank

    def slice_items(self, item_ids) -> ColumnarSlice:
        """A local CSR view over ``item_ids`` for the hybrid shard kernels.

        Pure numpy gathers (no Python loop over rows or claims), so the
        per-shard setup cost stays a handful of array ops.  Items keep the
        order given; rows/claims stay contiguous per item/row, preserving
        the layout invariant the ``reduceat``-based kernels rely on.
        """
        ids = np.asarray(item_ids, dtype=np.int64)
        row_counts = self.item_ptr[ids + 1] - self.item_ptr[ids]
        rows = ragged_gather(self.item_ptr[ids], row_counts)
        item_ptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(row_counts, out=item_ptr[1:])
        row_item = np.repeat(np.arange(len(ids), dtype=np.int64), row_counts)
        claim_counts = self.row_ptr[rows + 1] - self.row_ptr[rows]
        claims = ragged_gather(self.row_ptr[rows], claim_counts)
        row_ptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(claim_counts, out=row_ptr[1:])
        return ColumnarSlice(
            rows=rows,
            row_item=row_item,
            item_ptr=item_ptr,
            claim_prov=self.claim_prov[claims],
            row_ptr=row_ptr,
        )

    @staticmethod
    def from_items(
        items_map: dict[DataItem, dict[Triple, set[ProvKey]]],
        granularity: Granularity = Granularity.EXTRACTOR_URL,
    ) -> "ColumnarClaims":
        """Build the columnar view from the dict view (sorted, canonical)."""
        items = sorted(items_map)
        provenances = sorted(
            {prov for triple_map in items_map.values() for provs in triple_map.values() for prov in provs}
        )
        prov_index = {prov: p for p, prov in enumerate(provenances)}

        triples: list[Triple] = []
        row_item: list[int] = []
        item_ptr = [0]
        row_ptr = [0]
        claim_prov: list[int] = []
        for j, item in enumerate(items):
            triple_map = items_map[item]
            for triple in sorted(triple_map):
                triples.append(triple)
                row_item.append(j)
                for prov in sorted(triple_map[triple]):
                    claim_prov.append(prov_index[prov])
                row_ptr.append(len(claim_prov))
            item_ptr.append(len(triples))

        claim_prov_arr = np.asarray(claim_prov, dtype=np.int64)
        row_ptr_arr = np.asarray(row_ptr, dtype=np.int64)
        # Transpose: claims sorted by (prov, row) give the per-prov row CSR.
        claim_row = np.repeat(
            np.arange(len(triples), dtype=np.int64), np.diff(row_ptr_arr)
        )
        order = np.argsort(claim_prov_arr, kind="stable")
        prov_rows = claim_row[order]
        prov_counts = np.bincount(claim_prov_arr, minlength=len(provenances))
        prov_ptr = np.zeros(len(provenances) + 1, dtype=np.int64)
        np.cumsum(prov_counts, out=prov_ptr[1:])

        return ColumnarClaims(
            granularity=granularity,
            items=items,
            triples=triples,
            provenances=provenances,
            row_item=np.asarray(row_item, dtype=np.int64),
            item_ptr=np.asarray(item_ptr, dtype=np.int64),
            claim_prov=claim_prov_arr,
            row_ptr=row_ptr_arr,
            prov_rows=prov_rows,
            prov_ptr=prov_ptr,
        )


@dataclass
class ClaimMatrix:
    """The deduplicated claim structure for one granularity.

    ``items``: data item -> {triple -> set of supporting provenances}.
    ``prov_triples``: provenance -> unique triples it supports.
    The columnar CSR view is built lazily by :meth:`columnar` and cached.
    """

    granularity: Granularity
    items: dict[DataItem, dict[Triple, set[ProvKey]]]
    prov_triples: dict[ProvKey, set[Triple]]
    _columnar: ColumnarClaims | None = field(default=None, repr=False, compare=False)

    @staticmethod
    def build(
        records: list[ExtractionRecord], granularity: Granularity
    ) -> "ClaimMatrix":
        items: dict[DataItem, dict[Triple, set[ProvKey]]] = {}
        prov_triples: dict[ProvKey, set[Triple]] = {}
        for record in records:
            key = provenance_key(record, granularity)
            triple_map = items.setdefault(record.triple.data_item, {})
            triple_map.setdefault(record.triple, set()).add(key)
            prov_triples.setdefault(key, set()).add(record.triple)
        return ClaimMatrix(
            granularity=granularity, items=items, prov_triples=prov_triples
        )

    def columnar(self) -> ColumnarClaims:
        """The cached int-coded CSR view (built on first use)."""
        if self._columnar is None:
            self._columnar = ColumnarClaims.from_items(self.items, self.granularity)
        return self._columnar

    def n_claims(self) -> int:
        return sum(
            len(provs)
            for triple_map in self.items.values()
            for provs in triple_map.values()
        )

    def provenance_support(self) -> dict[ProvKey, int]:
        """Unique-triple count per provenance (the coverage-filter signal)."""
        return {key: len(triples) for key, triples in self.prov_triples.items()}

    def claims_of_item(self, item: DataItem) -> dict[Triple, set[ProvKey]]:
        return self.items.get(item, {})

    def all_triples(self) -> list[Triple]:
        return sorted(
            triple
            for triple_map in self.items.values()
            for triple in triple_map
        )
