"""Fusion input: unique (triple, provenance) claims.

Raw extraction is many-to-many — the same extractor may extract the same
triple from the same page through two patterns, and certainly from many
pages.  Fusion operates on the deduplicated *claim* matrix: for every data
item, which provenances support which triple.  :class:`FusionInput` builds
and caches that matrix per granularity, so the same extraction run can be
fused under many configurations cheaply (the granularity sweep of
Figure 10 does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extract.records import ExtractionRecord
from repro.fusion.provenance import Granularity, provenance_key
from repro.kb.triples import DataItem, Triple

__all__ = ["Claim", "FusionInput"]

ProvKey = tuple[str, ...]


@dataclass(frozen=True, slots=True)
class Claim:
    """One unique (triple, provenance) cell of the knowledge-fusion input."""

    triple: Triple
    provenance: ProvKey


@dataclass
class FusionInput:
    """Extraction records plus cached claim matrices per granularity."""

    records: list[ExtractionRecord]
    _cache: dict[Granularity, "ClaimMatrix"] = field(default_factory=dict, repr=False)

    def claims(self, granularity: Granularity) -> "ClaimMatrix":
        matrix = self._cache.get(granularity)
        if matrix is None:
            matrix = ClaimMatrix.build(self.records, granularity)
            self._cache[granularity] = matrix
        return matrix

    def unique_triples(self) -> list[Triple]:
        """All distinct extracted triples (the paper's 1.6B 'unique')."""
        return sorted({record.triple for record in self.records})

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class ClaimMatrix:
    """The deduplicated claim structure for one granularity.

    ``items``: data item -> {triple -> set of supporting provenances}.
    ``prov_triples``: provenance -> unique triples it supports.
    """

    granularity: Granularity
    items: dict[DataItem, dict[Triple, set[ProvKey]]]
    prov_triples: dict[ProvKey, set[Triple]]

    @staticmethod
    def build(
        records: list[ExtractionRecord], granularity: Granularity
    ) -> "ClaimMatrix":
        items: dict[DataItem, dict[Triple, set[ProvKey]]] = {}
        prov_triples: dict[ProvKey, set[Triple]] = {}
        for record in records:
            key = provenance_key(record, granularity)
            triple_map = items.setdefault(record.triple.data_item, {})
            triple_map.setdefault(record.triple, set()).add(key)
            prov_triples.setdefault(key, set()).add(record.triple)
        return ClaimMatrix(
            granularity=granularity, items=items, prov_triples=prov_triples
        )

    def n_claims(self) -> int:
        return sum(
            len(provs)
            for triple_map in self.items.values()
            for provs in triple_map.values()
        )

    def provenance_support(self) -> dict[ProvKey, int]:
        """Unique-triple count per provenance (the coverage-filter signal)."""
        return {key: len(triples) for key, triples in self.prov_triples.items()}

    def claims_of_item(self, item: DataItem) -> dict[Triple, set[ProvKey]]:
        return self.items.get(item, {})

    def all_triples(self) -> list[Triple]:
        return sorted(
            triple
            for triple_map in self.items.values()
            for triple in triple_map
        )
