"""Knowledge fusion: the paper's core contribution.

Given extraction records (triple + provenance), compute for every unique
triple a calibrated probability of being true.  Three fusers are provided —
:class:`~repro.fusion.vote.Vote`, :class:`~repro.fusion.accu.Accu` and
:class:`~repro.fusion.popaccu.PopAccu` — plus the paper's refinements
(provenance granularity, coverage/accuracy filtering, gold-standard
initialisation) and the ``POPACCU+`` presets that combine them.

The 3-D knowledge-fusion input is flattened to 2-D by treating a
*provenance* (``(Extractor, URL)`` by default) as a data-fusion source;
:class:`~repro.fusion.provenance.Granularity` selects the paper's
alternative flattenings.

Posterior math exists in two parity-tested forms: scalar per-item
reference implementations (``*_item_posteriors``) and batched numpy
kernels (:mod:`repro.fusion.kernels`) over the columnar claim index
(:class:`~repro.fusion.observations.ColumnarClaims`);
``FusionConfig.backend`` selects scalar-serial, process-pool-parallel,
vectorized, or hybrid (batched kernels inside each parallel shard)
execution.  ``serial``/``parallel`` honour the bitwise parity contract,
``vectorized``/``hybrid`` the 1e-9 tolerance one
(:data:`~repro.fusion.base.PARITY_TOLERANCE_ABS`); see
``docs/ARCHITECTURE.md`` for the full backend matrix.
"""

from repro.fusion.provenance import Granularity, provenance_key
from repro.fusion.observations import Claim, ColumnarClaims, ColumnarSlice, FusionInput
from repro.fusion.base import (
    BACKENDS,
    PARITY_BITWISE,
    PARITY_TOLERANCE,
    PARITY_TOLERANCE_ABS,
    Fuser,
    FusionConfig,
    FusionResult,
    parity_of,
    sampling_contract_of,
)
from repro.fusion.vote import Vote, VoteKernel, vote_item_posteriors
from repro.fusion.accu import Accu, AccuKernel, accu_item_posteriors
from repro.fusion.popaccu import PopAccu, PopAccuKernel, popaccu_item_posteriors
from repro.fusion.presets import (
    vote,
    accu,
    popaccu,
    popaccu_plus_unsup,
    popaccu_plus,
)

__all__ = [
    "Granularity",
    "provenance_key",
    "Claim",
    "ColumnarClaims",
    "ColumnarSlice",
    "FusionInput",
    "BACKENDS",
    "PARITY_BITWISE",
    "PARITY_TOLERANCE",
    "PARITY_TOLERANCE_ABS",
    "parity_of",
    "sampling_contract_of",
    "Fuser",
    "FusionConfig",
    "FusionResult",
    "Vote",
    "Accu",
    "PopAccu",
    "VoteKernel",
    "AccuKernel",
    "PopAccuKernel",
    "vote_item_posteriors",
    "accu_item_posteriors",
    "popaccu_item_posteriors",
    "vote",
    "accu",
    "popaccu",
    "popaccu_plus_unsup",
    "popaccu_plus",
]
