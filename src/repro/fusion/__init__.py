"""Knowledge fusion: the paper's core contribution.

Given extraction records (triple + provenance), compute for every unique
triple a calibrated probability of being true.  Three fusers are provided —
:class:`~repro.fusion.vote.Vote`, :class:`~repro.fusion.accu.Accu` and
:class:`~repro.fusion.popaccu.PopAccu` — plus the paper's refinements
(provenance granularity, coverage/accuracy filtering, gold-standard
initialisation) and the ``POPACCU+`` presets that combine them.

The 3-D knowledge-fusion input is flattened to 2-D by treating a
*provenance* (``(Extractor, URL)`` by default) as a data-fusion source;
:class:`~repro.fusion.provenance.Granularity` selects the paper's
alternative flattenings.
"""

from repro.fusion.provenance import Granularity, provenance_key
from repro.fusion.observations import Claim, FusionInput
from repro.fusion.base import Fuser, FusionConfig, FusionResult
from repro.fusion.vote import Vote
from repro.fusion.accu import Accu, accu_item_posteriors
from repro.fusion.popaccu import PopAccu, popaccu_item_posteriors
from repro.fusion.presets import (
    vote,
    accu,
    popaccu,
    popaccu_plus_unsup,
    popaccu_plus,
)

__all__ = [
    "Granularity",
    "provenance_key",
    "Claim",
    "FusionInput",
    "Fuser",
    "FusionConfig",
    "FusionResult",
    "Vote",
    "Accu",
    "PopAccu",
    "accu_item_posteriors",
    "popaccu_item_posteriors",
    "vote",
    "accu",
    "popaccu",
    "popaccu_plus_unsup",
    "popaccu_plus",
]
