"""POPACCU: Bayesian fusion with empirical false-value popularity.

POPACCU (Dong, Saha, Srivastava, PVLDB 2013) drops ACCU's assumption that
wrong values are uniformly distributed and instead "computes the
distribution from real data and plugs it in to the Bayesian analysis" —
making it robust to *popular* false values (copied errors): a wrong value
repeated by many provenances is explained as a popular false value rather
than forced toward truth.

POPACCU honours the same cross-backend contracts as ACCU: canonical-order
float summation (bitwise serial/parallel parity — see
:func:`popaccu_item_posteriors`) and canonical-order reducer-input
sampling (`L`-sampled subsets are drawn against sorted ``(triple,
provenance)`` order, reproducible inside parallel shards; see
:mod:`repro.fusion.runner` and :mod:`repro.fusion.shuffle`).

Formulation (documented in DESIGN.md §4): candidates are the observed
values plus an explicit OTHER ("the truth is none of the observed
values").  With ``m(v)`` = #provenances claiming ``v`` and ``m(D)`` the
item total, the log-likelihood of the observations if ``v`` is true is

    L(v) = Σ_{S∈S(v)} ln A(S)
         + Σ_{v0≠v} Σ_{S∈S(v0)} [ ln(1−A(S)) + ln( m(v0) / (m(D)−m(v)) ) ]

and for OTHER every observed value is false with popularity
``m(v0)/m(D)``.  Posteriors are the normalised likelihoods; the OTHER mass
is simply unassigned probability.  This reproduces the paper's observed
"sticking" behaviour: one default-accuracy provenance → p = 0.8 exactly;
two agreeing → ≈0.94; two conflicting → ≈0.5 (the Figure 9 valleys).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fusion import kernels
from repro.fusion.base import Fuser, FusionResult
from repro.fusion.observations import ColumnarClaims, FusionInput, ProvKey
from repro.fusion.runner import run_bayesian_fusion
from repro.kb.triples import Triple

__all__ = ["popaccu_item_posteriors", "PopAccuKernel", "PopAccu"]


def _clamped(accuracy: float) -> float:
    return min(max(accuracy, kernels.ACC_FLOOR), kernels.ACC_CEIL)


def popaccu_item_posteriors(
    claims: dict[Triple, set[ProvKey]],
    accuracies: dict[ProvKey, float],
) -> dict[Triple, float]:
    """Posterior probability of each observed value of one data item.

    Floats are summed in canonical (sorted) order, never in set iteration
    order, so the result is independent of ``PYTHONHASHSEED`` — see
    :func:`repro.fusion.accu.accu_item_posteriors` for why the
    serial/parallel bit-identity contract needs this.
    """
    if not claims:
        return {}
    triples = sorted(claims)
    support = {t: len(claims[t]) for t in triples}
    total = sum(support.values())
    log_true: dict[Triple, float] = {}
    log_false: dict[Triple, float] = {}
    for triple in triples:
        lt = 0.0
        lf = 0.0
        for prov in sorted(claims[triple]):
            accuracy = _clamped(accuracies[prov])
            lt += math.log(accuracy)
            lf += math.log(1.0 - accuracy)
        log_true[triple] = lt
        log_false[triple] = lf

    scores: dict[Triple, float] = {}
    for candidate in triples:
        rest = total - support[candidate]
        score = log_true[candidate]
        for other in triples:
            if other is candidate:
                continue
            # All of `other`'s provenances provided a false value whose
            # empirical popularity (given `candidate` is true) is
            # m(other)/rest.
            score += log_false[other]
            score += support[other] * math.log(support[other] / rest)
        scores[candidate] = score
    # OTHER: every observed value is false, popularity m(v)/m(D).
    other_score = 0.0
    for triple in triples:
        other_score += log_false[triple]
        other_score += support[triple] * math.log(support[triple] / total)

    peak = max(max(scores.values()), other_score)
    denominator = math.exp(other_score - peak) + sum(
        math.exp(s - peak) for s in scores.values()
    )
    return {
        triple: math.exp(score - peak) / denominator
        for triple, score in scores.items()
    }


@dataclass(frozen=True)
class PopAccuKernel:
    """The POPACCU posterior as a pluggable, picklable kernel.

    Scalar reference per item via :func:`popaccu_item_posteriors`; batched
    per round via :func:`repro.fusion.kernels.popaccu_round`.  A frozen
    dataclass so the parallel backend can pickle it into workers.
    """

    def __call__(
        self,
        claims: dict[Triple, set[ProvKey]],
        accuracies: dict[ProvKey, float],
    ) -> dict[Triple, float]:
        return popaccu_item_posteriors(claims, accuracies)

    def batch_round(
        self, cols: ColumnarClaims, accuracies, active, require_repeated: bool
    ) -> kernels.RoundPosteriors:
        return kernels.popaccu_round(cols, accuracies, active, require_repeated)


class PopAccu(Fuser):
    """Iterative POPACCU (default A=0.8, R=5, L=1M)."""

    @property
    def name(self) -> str:
        return "POPACCU"

    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        return run_bayesian_fusion(
            fusion_input=fusion_input,
            config=self.config,
            item_posterior_fn=PopAccuKernel(),
            method_name=self.name,
            gold_labels=self.gold_labels,
            executor=executor,
        )
