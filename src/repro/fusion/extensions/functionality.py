"""Direction 3: multi-truth fusion with learned predicate functionality.

§5.3: the single-truth assumption caused 65% of POPACCU+'s false
negatives.  The paper points at Zhao et al.'s latent-truth model ([37]) —
per-source *sensitivity* (recall) and *specificity* instead of one
accuracy — and suggests learning "the degree of functionality for each
predicate (i.e., the expected number of values)".

This fuser implements both ideas at laptop scale:

1. a bootstrap POPACCU pass estimates per-item posteriors, from which the
   *functionality* of each predicate is learned as the expected number of
   true values per data item;
2. an EM over a simplified latent-truth model scores every triple
   *independently* (no per-item normalisation):

       P(t true | obs) ∝ π_p · Π_{S claims t} sens_S · Π_{S silent} (1−sens_S)
       P(t false | obs) ∝ (1−π_p) · Π_{S claims t} (1−spec_S) · Π_{S silent} spec_S

   where "silent" runs over the item's other provenances, and the prior
   ``π_p`` comes from the learned functionality (more expected truths →
   higher prior that any given claimed value is true).

Multiple triples of one item can now all get high probabilities, which is
exactly what the single-truth methods cannot do.
"""

from __future__ import annotations

from collections import defaultdict

from repro.fusion.base import Fuser, FusionResult
from repro.fusion.observations import FusionInput
from repro.fusion.popaccu import PopAccu
from repro.kb.triples import Triple

__all__ = ["MultiTruthFuser"]

_EPS = 1e-3


def _clamp(x: float) -> float:
    return min(max(x, _EPS), 1.0 - _EPS)


class MultiTruthFuser(Fuser):
    """Latent-truth fusion with learned per-predicate functionality."""

    @property
    def name(self) -> str:
        return "MULTITRUTH"

    def learned_functionality(
        self, fusion_input: FusionInput
    ) -> dict[str, float]:
        """Expected #true values per data item, per predicate.

        Estimated from the bootstrap POPACCU posteriors: the sum of value
        posteriors of an item is its expected truth count; predicates
        average over their items ("most people only have a single spouse,
        but most actors participate in many movies").
        """
        bootstrap = PopAccu(self.config, gold_labels=self.gold_labels).fuse(
            fusion_input
        )
        per_item: dict = defaultdict(float)
        for triple, probability in bootstrap.probabilities.items():
            per_item[triple.data_item] += probability
        by_predicate: dict[str, list[float]] = defaultdict(list)
        for item, expected in per_item.items():
            by_predicate[item.predicate].append(expected)
        return {
            predicate: max(sum(values) / len(values), 0.05)
            for predicate, values in by_predicate.items()
        }

    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        # executor accepted per the Fuser contract; this fuser runs in-process.
        config = self.config
        functionality = self.learned_functionality(fusion_input)
        matrix = fusion_input.claims(config.granularity)

        # Per-item structures: which provenances claim which triple.
        items = matrix.items
        prov_triples = matrix.prov_triples

        # Priors: an item with k observed values and expected f truths has
        # per-value prior ~ f/k (clamped into (0,1)).
        prior: dict[Triple, float] = {}
        for item, triple_map in items.items():
            f = functionality.get(item.predicate, 1.0)
            k = max(len(triple_map), 1)
            pi = _clamp(f / k)
            for triple in triple_map:
                prior[triple] = pi

        # Smoothing: sens/spec shrink toward their priors (0.7 / 0.9) with
        # pseudo-count 2.  A flat 0.5-mean smoothing would be fatal here:
        # items whose values are *all* true leave the specificity estimate
        # dataless, and a 0.5 specificity makes claims uninformative.
        sens_prior, spec_prior, strength = 0.7, 0.9, 2.0
        sens = {prov: sens_prior for prov in prov_triples}
        spec = {prov: spec_prior for prov in prov_triples}
        probabilities: dict[Triple, float] = dict(prior)

        import math

        rounds = 0
        converged = False
        for _round in range(config.max_rounds):
            new_probabilities: dict[Triple, float] = {}
            for item, triple_map in items.items():
                item_provs = {
                    prov for provs in triple_map.values() for prov in provs
                }
                for triple, provs in triple_map.items():
                    log_true = math.log(prior[triple])
                    log_false = math.log(1.0 - prior[triple])
                    for prov in item_provs:
                        s = _clamp(sens[prov])
                        c = _clamp(spec[prov])
                        if prov in provs:
                            log_true += math.log(s)
                            log_false += math.log(1.0 - c)
                        else:
                            log_true += math.log(1.0 - s)
                            log_false += math.log(c)
                    peak = max(log_true, log_false)
                    numerator = math.exp(log_true - peak)
                    new_probabilities[triple] = numerator / (
                        numerator + math.exp(log_false - peak)
                    )
            # M-step: sensitivity = P(claim | true), specificity =
            # P(silent | false), estimated over each provenance's items.
            delta = 0.0
            for prov, claimed in prov_triples.items():
                expected_true_claimed = 0.0
                expected_true_total = 0.0
                expected_false_claimed = 0.0
                expected_false_total = 0.0
                seen_items = {t.data_item for t in claimed}
                for item in seen_items:
                    for triple in items[item]:
                        p = new_probabilities[triple]
                        claimed_here = prov in items[item][triple]
                        expected_true_total += p
                        expected_false_total += 1.0 - p
                        if claimed_here:
                            expected_true_claimed += p
                            expected_false_claimed += 1.0 - p
                new_sens = (expected_true_claimed + strength * sens_prior) / (
                    expected_true_total + strength
                )
                new_spec = (
                    expected_false_total
                    - expected_false_claimed
                    + strength * spec_prior
                ) / (expected_false_total + strength)
                delta = max(delta, abs(new_sens - sens[prov]), abs(new_spec - spec[prov]))
                sens[prov] = new_sens
                spec[prov] = new_spec
            probabilities = new_probabilities
            rounds += 1
            if delta < config.convergence_tol:
                converged = True
                break

        result = FusionResult(
            method=self.name,
            probabilities=probabilities,
            rounds=rounds,
            converged=converged,
            diagnostics={
                "functionality": functionality,
                "n_items": len(items),
            },
        )
        result.validate()
        return result
