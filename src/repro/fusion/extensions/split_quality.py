"""Direction 1: separate extractor quality from source quality.

§5.1: "A better approach would be to distinguish mistakes made by
extractors and erroneous information provided by Web sources.  This would
enable us to evaluate the quality of the sources and the quality of the
extractors independently."

The model: a claim by extractor ``E`` from site ``W`` is correct when the
source told the truth *and* the extractor read it faithfully, so the
effective claim accuracy factorises as ``A(E, W) = q_E · a_W``.  The two
factors are estimated by a bilinear EM:

- ``q_E`` (extractor fidelity) — the mean posterior of E's triples,
  weighting each observation by the quality of the *source* it came from
  (so a good extractor is not punished for working on bad sources);
- ``a_W`` (source accuracy) — the mean posterior of W's triples, weighting
  by the *extractor* fidelity behind each observation (so a good source is
  not punished for being read by bad extractors).

Both estimates shrink toward the default-accuracy prior with a fixed
pseudo-count, which matters doubly here: most sites carry very few triples
(the paper: half the provenances contribute a single one), and without
shrinkage the cross-weighting forms echo chambers — a site whose only
claim lost gets weight zero, silently excusing the extractor that made the
claim.

An extractor that makes the same mistake on many sources drags ``q_E``
down globally — exactly the signal Figure 18 shows is buried by the
(Extractor, URL) cross-product.
"""

from __future__ import annotations

from collections import defaultdict

from repro.fusion.accu import accu_item_posteriors
from repro.fusion.base import Fuser, FusionConfig, FusionResult
from repro.fusion.observations import FusionInput
from repro.kb.triples import DataItem, Triple

__all__ = ["SplitQualityFuser"]

_EPS = 1e-3


def _clamp(x: float) -> float:
    return min(max(x, _EPS), 1.0 - _EPS)


class SplitQualityFuser(Fuser):
    """Factored extractor × source accuracy model.

    ``extractor_prior_strength`` / ``site_prior_strength`` are the
    pseudo-counts of the shrinkage toward the default accuracy.
    """

    def __init__(
        self,
        config: FusionConfig | None = None,
        gold_labels=None,
        extractor_prior_strength: float = 1.0,
        site_prior_strength: float = 2.0,
    ) -> None:
        super().__init__(config, gold_labels)
        self.extractor_prior_strength = extractor_prior_strength
        self.site_prior_strength = site_prior_strength

    @property
    def name(self) -> str:
        return "SPLITQ"

    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        # executor accepted per the Fuser contract; this fuser runs in-process.
        config = self.config
        # Claims: (item, triple, extractor, site), deduplicated.
        claims: set[tuple[DataItem, Triple, str, str]] = set()
        for record in fusion_input.records:
            claims.add(
                (record.triple.data_item, record.triple, record.extractor, record.site)
            )
        by_item: dict[DataItem, dict[Triple, set[tuple[str, str]]]] = defaultdict(
            lambda: defaultdict(set)
        )
        ext_triples: dict[str, set[tuple[Triple, str]]] = defaultdict(set)
        site_triples: dict[str, set[tuple[Triple, str]]] = defaultdict(set)
        for item, triple, extractor, site in claims:
            by_item[item][triple].add((extractor, site))
            ext_triples[extractor].add((triple, site))
            site_triples[site].add((triple, extractor))

        q = {extractor: config.default_accuracy for extractor in ext_triples}
        a = {site: config.default_accuracy for site in site_triples}

        posteriors: dict[Triple, float] = {}
        rounds = 0
        converged = False
        for _round in range(config.max_rounds):
            # Stage I: per-item posteriors with factored accuracies.  The
            # pair accuracy q·a plays the per-provenance accuracy role in
            # the standard ACCU posterior.
            posteriors = {}
            for item, triple_map in by_item.items():
                pair_accuracy = {
                    pair: _clamp(q[pair[0]] * a[pair[1]])
                    for pairs in triple_map.values()
                    for pair in pairs
                }
                item_posteriors = accu_item_posteriors(
                    {t: set(pairs) for t, pairs in triple_map.items()},
                    pair_accuracy,
                    config.n_false_values,
                )
                posteriors.update(item_posteriors)
            # Stage II: re-estimate the factors, cross-weighted and shrunk
            # toward the prior (see module docstring).
            prior = config.default_accuracy
            delta = 0.0
            new_q = {}
            for extractor, observations in ext_triples.items():
                weight_total = self.extractor_prior_strength
                weighted = self.extractor_prior_strength * prior
                for triple, site in observations:
                    weight = a[site]
                    weighted += weight * posteriors[triple]
                    weight_total += weight
                new_q[extractor] = weighted / weight_total
            new_a = {}
            for site, observations in site_triples.items():
                weight_total = self.site_prior_strength
                weighted = self.site_prior_strength * prior
                for triple, extractor in observations:
                    weight = q[extractor]
                    weighted += weight * posteriors[triple]
                    weight_total += weight
                new_a[site] = weighted / weight_total
            for extractor, value in new_q.items():
                delta = max(delta, abs(value - q[extractor]))
                q[extractor] = value
            for site, value in new_a.items():
                delta = max(delta, abs(value - a[site]))
                a[site] = value
            rounds += 1
            if delta < config.convergence_tol:
                converged = True
                break

        result = FusionResult(
            method=self.name,
            probabilities=posteriors,
            accuracies={("ext", e): v for e, v in q.items()}
            | {("site", s): v for s, v in a.items()},
            rounds=rounds,
            converged=converged,
            diagnostics={
                "extractor_quality": dict(q),
                "site_accuracy": dict(a),
                "n_items": len(by_item),
            },
        )
        result.validate()
        return result
