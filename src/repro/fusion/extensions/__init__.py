"""Future-direction fusers (§5 of the paper).

The paper closes with eight research directions; four of them are concrete
modelling changes this package implements, each as a drop-in
:class:`~repro.fusion.base.Fuser`:

- :class:`SplitQualityFuser` — direction 1: estimate *extractor* quality
  and *source* quality as separate factors instead of burying both in the
  provenance cross-product;
- :class:`MultiTruthFuser` — direction 3: drop the single-truth assumption;
  a simplified latent-truth model (after Zhao et al., the paper's [37])
  with per-provenance sensitivity/specificity and a learned per-predicate
  expected truth count;
- :class:`HierarchicalFuser` — direction 4: let a claim of a specific
  value partially support its ancestors in the value hierarchy (and
  vice versa, weakly);
- :class:`ConfidenceWeightedFuser` — direction 5: weight claims by the
  extractor's reported confidence, rank-normalised per extractor so that
  miscalibrated extractors (TBL1, ANO) cannot poison the vote.
"""

from repro.fusion.extensions.split_quality import SplitQualityFuser
from repro.fusion.extensions.functionality import MultiTruthFuser
from repro.fusion.extensions.hierarchy import HierarchicalFuser
from repro.fusion.extensions.confidence import ConfidenceWeightedFuser

__all__ = [
    "SplitQualityFuser",
    "MultiTruthFuser",
    "HierarchicalFuser",
    "ConfidenceWeightedFuser",
]
