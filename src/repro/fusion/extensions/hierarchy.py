"""Direction 4: hierarchical value spaces.

§5.4: "values can be hierarchically structured … a triple with object CA
partially supports that San Francisco is a true object … if several cities
in CA are provided as conflicting values for a data item, although we may
predict a low probability for each of these cities, we may predict a high
probability for CA."

This fuser reweights the vote counts of hierarchical-predicate items:

- a claim of value ``v`` contributes weight 1 to ``v`` itself;
- weight ``lambda_up**d`` to each ancestor at distance ``d`` (several
  conflicting cities in one state agree on the state);
- weight ``lambda_down**d`` to each descendant at distance ``d`` (a state
  claim is weak evidence for any one of its cities).

Weighted ACCU votes then score the observed values (non-hierarchical items
fall through to plain ACCU behaviour).  The per-item probabilities no
longer need to sum to 1 across a containment chain — (Steve Jobs,
birth place, USA) and (…, California) may both be scored high, resolving
the specific/general false negatives of Figure 17.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.fusion.base import Fuser, FusionConfig, FusionResult
from repro.fusion.observations import FusionInput, ProvKey
from repro.kb.hierarchy import ValueHierarchy
from repro.kb.schema import Schema
from repro.kb.triples import Triple
from repro.kb.values import EntityRef

__all__ = ["HierarchicalFuser"]

_EPS = 1e-3


def _clamp(x: float) -> float:
    return min(max(x, _EPS), 1.0 - _EPS)


class HierarchicalFuser(Fuser):
    """ACCU with support propagation along a value hierarchy."""

    def __init__(
        self,
        schema: Schema,
        hierarchy: ValueHierarchy,
        config: FusionConfig | None = None,
        gold_labels=None,
        lambda_up: float = 0.6,
        lambda_down: float = 0.15,
    ) -> None:
        super().__init__(config, gold_labels)
        self.schema = schema
        self.hierarchy = hierarchy
        self.lambda_up = lambda_up
        self.lambda_down = lambda_down

    @property
    def name(self) -> str:
        return "HIERACCU"

    # ------------------------------------------------------------------
    def _support_weight(self, claimed: Triple, candidate: Triple) -> float:
        """How much a claim of ``claimed`` supports ``candidate``."""
        if claimed.obj == candidate.obj:
            return 1.0
        predicate = self.schema.predicates.get(claimed.predicate)
        if predicate is None or not predicate.hierarchical:
            return 0.0
        if not isinstance(claimed.obj, EntityRef) or not isinstance(
            candidate.obj, EntityRef
        ):
            return 0.0
        claimed_id = claimed.obj.entity_id
        candidate_id = candidate.obj.entity_id
        if self.hierarchy.is_ancestor(candidate_id, claimed_id):
            distance = self.hierarchy.ancestors(claimed_id).index(candidate_id) + 1
            return self.lambda_up**distance
        if self.hierarchy.is_ancestor(claimed_id, candidate_id):
            distance = self.hierarchy.ancestors(candidate_id).index(claimed_id) + 1
            return self.lambda_down**distance
        return 0.0

    def _item_posteriors(
        self,
        claims: dict[Triple, set[ProvKey]],
        accuracies: dict[ProvKey, float],
    ) -> dict[Triple, float]:
        """Weighted-vote posteriors over the observed values.

        Each candidate's vote count accumulates τ(S) from every claim,
        scaled by the hierarchy support weight; the posterior for a
        candidate is a logistic over its votes against the unobserved-value
        baseline, which deliberately does *not* normalise across candidates
        (a chain of compatible values may all be true).
        """
        n_false = self.config.n_false_values
        posteriors: dict[Triple, float] = {}
        for candidate in claims:
            votes = 0.0
            for claimed, provs in claims.items():
                weight = self._support_weight(claimed, candidate)
                if weight <= 0.0:
                    continue
                for prov in provs:
                    accuracy = _clamp(accuracies[prov])
                    votes += weight * math.log(
                        n_false * accuracy / (1.0 - accuracy)
                    )
            # Logistic against N uniformly-likely false values.
            posteriors[candidate] = 1.0 / (1.0 + n_false * math.exp(-votes))
        return posteriors

    # ------------------------------------------------------------------
    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        # executor accepted per the Fuser contract; this fuser runs in-process.
        config = self.config
        matrix = fusion_input.claims(config.granularity)
        accuracies = {
            prov: config.default_accuracy for prov in matrix.prov_triples
        }

        posteriors: dict[Triple, float] = {}
        rounds = 0
        converged = False
        for _round in range(config.max_rounds):
            posteriors = {}
            for item, triple_map in matrix.items.items():
                posteriors.update(
                    self._item_posteriors(
                        {t: set(p) for t, p in triple_map.items()}, accuracies
                    )
                )
            delta = 0.0
            by_prov: dict[ProvKey, list[float]] = defaultdict(list)
            for item, triple_map in matrix.items.items():
                for triple, provs in triple_map.items():
                    for prov in provs:
                        by_prov[prov].append(posteriors[triple])
            for prov, values in by_prov.items():
                new_accuracy = sum(values) / len(values)
                delta = max(delta, abs(new_accuracy - accuracies[prov]))
                accuracies[prov] = new_accuracy
            rounds += 1
            if delta < config.convergence_tol:
                converged = True
                break

        result = FusionResult(
            method=self.name,
            probabilities=posteriors,
            accuracies=accuracies,
            rounds=rounds,
            converged=converged,
            diagnostics={"n_items": len(matrix.items)},
        )
        result.validate()
        return result
