"""Direction 5: leveraging extraction confidence.

§5.5: "We need a principled way that can incorporate confidence to other
types of models and can apply even when confidence assignments from
different extractors are of different qualities."

The key obstacle (Figure 21) is that raw confidences are incomparable
across extractors — DOM2 reports extremes, TXT1 hugs 0.5, TBL1 peaks in
the middle.  This fuser therefore **rank-normalises** each record's
confidence within its extractor's own confidence distribution (an
extractor's 90th-percentile confidence means "among its most confident
extractions" regardless of the raw scale), and uses the normalised weight
to scale the claim's vote count in an ACCU-style posterior:

    C(v) = Σ_claims  w(claim) · τ(S)

Records without a confidence get weight 0.5.  Accuracy re-estimation is
likewise weighted, so a provenance is judged mostly by the claims it was
confident about.
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict

from repro.fusion.base import Fuser, FusionResult
from repro.fusion.observations import FusionInput
from repro.fusion.provenance import provenance_key
from repro.kb.triples import DataItem, Triple

__all__ = ["ConfidenceWeightedFuser"]

_EPS = 1e-3


def _clamp(x: float) -> float:
    return min(max(x, _EPS), 1.0 - _EPS)


class ConfidenceWeightedFuser(Fuser):
    """ACCU with per-extractor rank-normalised confidence weights."""

    @property
    def name(self) -> str:
        return "CONFACCU"

    def _normalised_weights(
        self, fusion_input: FusionInput
    ) -> dict[tuple[Triple, tuple], float]:
        """Weight per (triple, provenance) claim in [0.05, 1.0]."""
        by_extractor: dict[str, list[float]] = defaultdict(list)
        for record in fusion_input.records:
            if record.confidence is not None:
                by_extractor[record.extractor].append(record.confidence)
        sorted_confidences = {
            extractor: sorted(values) for extractor, values in by_extractor.items()
        }
        weights: dict[tuple[Triple, tuple], float] = {}
        for record in fusion_input.records:
            key = (record.triple, provenance_key(record, self.config.granularity))
            if record.confidence is None:
                weight = 0.5
            else:
                ranks = sorted_confidences[record.extractor]
                position = bisect.bisect_right(ranks, record.confidence)
                weight = max(0.05, position / len(ranks))
            # A claim backed by several records keeps its best weight.
            weights[key] = max(weights.get(key, 0.0), weight)
        return weights

    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        # executor accepted per the Fuser contract; this fuser runs in-process.
        config = self.config
        matrix = fusion_input.claims(config.granularity)
        weights = self._normalised_weights(fusion_input)
        accuracies = {prov: config.default_accuracy for prov in matrix.prov_triples}
        n_false = config.n_false_values

        def item_posteriors(
            item: DataItem, triple_map
        ) -> dict[Triple, float]:
            vote_counts: dict[Triple, float] = {}
            for triple, provs in triple_map.items():
                votes = 0.0
                for prov in provs:
                    accuracy = _clamp(accuracies[prov])
                    weight = weights.get((triple, prov), 0.5)
                    votes += weight * math.log(
                        n_false * accuracy / (1.0 - accuracy)
                    )
                vote_counts[triple] = votes
            k = len(vote_counts)
            peak = max(max(vote_counts.values()), 0.0)
            denominator = sum(
                math.exp(v - peak) for v in vote_counts.values()
            ) + max(n_false + 1 - k, 0) * math.exp(-peak)
            return {
                triple: math.exp(v - peak) / denominator
                for triple, v in vote_counts.items()
            }

        posteriors: dict[Triple, float] = {}
        rounds = 0
        converged = False
        for _round in range(config.max_rounds):
            posteriors = {}
            for item, triple_map in matrix.items.items():
                posteriors.update(item_posteriors(item, triple_map))
            delta = 0.0
            sums: dict = defaultdict(float)
            totals: dict = defaultdict(float)
            for prov, triples in matrix.prov_triples.items():
                for triple in triples:
                    weight = weights.get((triple, prov), 0.5)
                    sums[prov] += weight * posteriors[triple]
                    totals[prov] += weight
            for prov in matrix.prov_triples:
                if totals[prov] > 0:
                    new_accuracy = sums[prov] / totals[prov]
                    delta = max(delta, abs(new_accuracy - accuracies[prov]))
                    accuracies[prov] = new_accuracy
            rounds += 1
            if delta < config.convergence_tol:
                converged = True
                break

        result = FusionResult(
            method=self.name,
            probabilities=posteriors,
            accuracies=accuracies,
            rounds=rounds,
            converged=converged,
            diagnostics={"n_items": len(matrix.items)},
        )
        result.validate()
        return result
