"""Out-of-core claim matrix: mapped columns and streaming accumulation.

The `web` scale tier never materialises extraction records or the dict
claim views for the whole corpus.  This module supplies the three pieces
that replace them:

- :class:`ClaimAccumulator` folds each extraction chunk straight into
  integer space (triple/provenance vocabularies plus ``(row, prov)``
  claim pairs) and emits a :class:`~repro.fusion.observations.ColumnarClaims`
  in exactly the canonical layout ``ColumnarClaims.from_items`` would
  have produced from the same records — field-for-field, so every
  downstream parity contract carries over unchanged.
- :class:`MappedColumnarClaims` is a ``ColumnarClaims`` whose numeric
  columns are read-only ``np.memmap`` views over a published column
  store (:func:`repro.artifacts.save_column_store`).  Pickling it ships
  only the ~300-byte :class:`~repro.artifacts.ColumnHandle`; each pool
  worker re-maps the files, so the static columns are shared zero-copy
  through the page cache — the PR 5 shared-memory channel extended from
  per-round vectors to the claim matrix itself.  The object columns
  (``items``/``triples``/``provenances``) load lazily on first touch:
  the hybrid shards never touch them, so hybrid workers stay numeric.
- :class:`ColumnarClaimMatrix` / :class:`ColumnarFusionInput` adapt a
  bare column set to the ``ClaimMatrix`` / ``FusionInput`` surface the
  fusion runner consumes, building the dict views lazily (small-scale
  parity tests) or never (the column-native finalize path).
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.artifacts import ColumnHandle, _dumps, save_column_store
from repro.extract.records import ExtractionRecord
from repro.fusion.observations import ColumnarClaims, ProvKey
from repro.fusion.provenance import Granularity, provenance_key
from repro.kb.triples import DataItem, Triple

__all__ = [
    "ClaimAccumulator",
    "ColumnarClaimMatrix",
    "ColumnarFusionInput",
    "MappedColumnarClaims",
    "persist_columns",
]

#: Numeric CSR columns, persisted one ``.npy`` each (plus the cached
#: canonical rank, so mapped columns never re-sort triples to build it).
NUMERIC_COLUMNS = (
    "row_item",
    "item_ptr",
    "claim_prov",
    "row_ptr",
    "prov_rows",
    "prov_ptr",
)
RANK_COLUMN = "canonical_rank"
_OBJECT_COLUMNS = ("items", "triples", "provenances")
_OBJECTS_FILE = "objects.pkl"


class MappedColumnarClaims(ColumnarClaims):
    """A ``ColumnarClaims`` whose numeric columns are memory-mapped.

    Constructed from a :class:`~repro.artifacts.ColumnHandle`; the
    numeric columns and the canonical rank open eagerly as read-only
    memmaps, while the object columns unpickle from ``objects.pkl`` on
    first attribute access (``__getattr__`` fires because the dataclass
    declares no class-level default for them).  ``__reduce__`` ships the
    handle only, so installing an instance as pool-resident state costs
    a few hundred bytes per worker regardless of matrix size.
    """

    def __init__(self, handle: ColumnHandle) -> None:
        self.handle = handle
        self.granularity = Granularity(handle.granularity)
        for name in NUMERIC_COLUMNS:
            setattr(self, name, np.load(handle.path_of(f"{name}.npy"), mmap_mode="r"))
        # Eager: the class-level dataclass default (None) means
        # __getattr__ would never fire for this field, and canonical_rank()
        # must find the mapped cache, not re-sort a million triples.
        self._canonical_rank = np.load(
            handle.path_of(f"{RANK_COLUMN}.npy"), mmap_mode="r"
        )
        self._closed = False

    def __getattr__(self, name: str):
        if name in _OBJECT_COLUMNS:
            self._load_objects()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _load_objects(self) -> None:
        with open(self.handle.path_of(_OBJECTS_FILE), "rb") as fh:
            items, triples, provenances = pickle.load(fh)
        self.items = items
        self.triples = triples
        self.provenances = provenances

    def adopt_objects(
        self,
        items: list[DataItem],
        triples: list[Triple],
        provenances: list[ProvKey],
    ) -> None:
        """Seed the object columns from lists the caller already holds.

        Parent-side convenience after :func:`persist_columns`: avoids an
        immediate re-unpickle of what was just written.  Workers are
        unaffected — ``__reduce__`` ships the handle, never the lists.
        """
        self.items = items
        self.triples = triples
        self.provenances = provenances

    def objects_loaded(self) -> bool:
        return "triples" in self.__dict__

    def __reduce__(self):
        return (type(self), (self.handle,))

    def __repr__(self) -> str:  # the dataclass repr would force objects.pkl
        return (
            f"{type(self).__name__}(key={self.handle.key[:12]!r}, "
            f"n_rows={self.n_rows}, n_claims={self.n_claims}, "
            f"closed={self._closed})"
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every mapped view (and its file descriptor).

        The instance must not be used afterwards; the round-state
        lifecycle calls this right after the columns are uninstalled
        from the pool.
        """
        if self._closed:
            return
        for name in (*NUMERIC_COLUMNS, "_canonical_rank"):
            array = self.__dict__.get(name)
            mapped = getattr(array, "_mmap", None)
            if mapped is not None:
                try:
                    mapped.close()
                except BufferError:
                    # A live external view pins the buffer; dropping our
                    # reference still lets the GC reclaim the mapping.
                    pass
        self._closed = True


def persist_columns(
    cols: ColumnarClaims, cache_dir
) -> MappedColumnarClaims:
    """Publish ``cols`` to the column store and return the mapped view.

    The in-memory arrays are written once (content-addressed, atomic)
    and the returned instance maps them back read-only, with the object
    columns adopted from ``cols`` so the parent pays no re-unpickle.
    """
    arrays = {name: np.ascontiguousarray(getattr(cols, name)) for name in NUMERIC_COLUMNS}
    arrays[RANK_COLUMN] = np.ascontiguousarray(cols.canonical_rank())
    objects = _dumps((cols.items, cols.triples, cols.provenances))
    handle = save_column_store(cache_dir, cols.granularity.value, arrays, objects)
    mapped = MappedColumnarClaims(handle)
    mapped.adopt_objects(cols.items, cols.triples, cols.provenances)
    return mapped


class ColumnarClaimMatrix:
    """A ``ClaimMatrix``-shaped adapter over a bare column set.

    The parallel/hybrid fusion paths are column-native except for the
    final scalar result assembly; this adapter lets them run without a
    record-built ``ClaimMatrix``.  The dict views (``items`` /
    ``prov_triples``) build lazily from the columns — bit-identical to
    the record-built dicts because the columnar layout is canonical
    (sorted items, sorted triples per item, sorted provenances per row)
    — so the serial/mapreduce backend still works at small scale, while
    the column-native finalize never touches them at all.
    """

    def __init__(self, cols: ColumnarClaims) -> None:
        self._cols = cols
        self.granularity = cols.granularity
        self._items: dict[DataItem, dict[Triple, set[ProvKey]]] | None = None
        self._prov_triples: dict[ProvKey, set[Triple]] | None = None

    def columnar(self) -> ColumnarClaims:
        return self._cols

    @property
    def items(self) -> dict[DataItem, dict[Triple, set[ProvKey]]]:
        if self._items is None:
            cols = self._cols
            item_ptr = cols.item_ptr
            row_ptr = cols.row_ptr
            claim_prov = cols.claim_prov
            provenances = cols.provenances
            triples = cols.triples
            items: dict[DataItem, dict[Triple, set[ProvKey]]] = {}
            for j, item in enumerate(cols.items):
                triple_map: dict[Triple, set[ProvKey]] = {}
                for r in range(int(item_ptr[j]), int(item_ptr[j + 1])):
                    triple_map[triples[r]] = {
                        provenances[p]
                        for p in claim_prov[int(row_ptr[r]) : int(row_ptr[r + 1])].tolist()
                    }
                items[item] = triple_map
            self._items = items
        return self._items

    @property
    def prov_triples(self) -> dict[ProvKey, set[Triple]]:
        if self._prov_triples is None:
            cols = self._cols
            prov_ptr = cols.prov_ptr
            prov_rows = cols.prov_rows
            triples = cols.triples
            self._prov_triples = {
                prov: {
                    triples[r]
                    for r in prov_rows[int(prov_ptr[p]) : int(prov_ptr[p + 1])].tolist()
                }
                for p, prov in enumerate(cols.provenances)
            }
        return self._prov_triples

    def n_claims(self) -> int:
        return self._cols.n_claims

    def provenance_support(self) -> dict[ProvKey, int]:
        counts = self._cols.prov_row_counts()
        return {
            prov: int(counts[p]) for p, prov in enumerate(self._cols.provenances)
        }

    def claims_of_item(self, item: DataItem) -> dict[Triple, set[ProvKey]]:
        return self.items.get(item, {})

    def all_triples(self) -> list[Triple]:
        return sorted(self._cols.triples)


class ColumnarFusionInput:
    """A ``FusionInput``-shaped wrapper over one prebuilt column set.

    The streaming pipeline builds columns directly (no record list), so
    ``claims()`` serves the one granularity the columns were built at
    and refuses others — a granularity sweep needs the record path.
    """

    def __init__(self, cols: ColumnarClaims) -> None:
        self._matrix = ColumnarClaimMatrix(cols)

    def claims(self, granularity: Granularity) -> ColumnarClaimMatrix:
        if granularity != self._matrix.granularity:
            raise ValueError(
                f"columns were accumulated at granularity "
                f"{self._matrix.granularity.value!r}; re-extract to fuse at "
                f"{granularity.value!r}"
            )
        return self._matrix

    def unique_triples(self) -> list[Triple]:
        return sorted(self._matrix.columnar().triples)

    def __len__(self) -> int:
        return self._matrix.columnar().n_claims


class ClaimAccumulator:
    """Fold extraction chunks into claim columns without keeping records.

    ``add_records`` interns each record's triple and provenance key and
    appends one integer ``(row, prov)`` pair per record; ``build``
    dedupes the pairs, permutes rows into the canonical item-major
    layout and emits a ``ColumnarClaims`` equal field-for-field to
    ``ClaimMatrix.build(all_records, granularity).columnar()`` — the
    property the streaming parity tests pin.  Peak state is the two
    vocabularies plus ~16 bytes per raw claim.
    """

    def __init__(self, granularity: Granularity) -> None:
        self.granularity = granularity
        self._row_of: dict[Triple, int] = {}
        self._row_items: list[DataItem] = []
        self._prov_of: dict[ProvKey, int] = {}
        self._pairs: list[np.ndarray] = []
        self.n_records = 0

    def add_records(self, records: list[ExtractionRecord]) -> None:
        if not records:
            return
        row_of = self._row_of
        prov_of = self._prov_of
        pairs = np.empty((len(records), 2), dtype=np.int64)
        for i, record in enumerate(records):
            triple = record.triple
            row = row_of.get(triple)
            if row is None:
                row = len(row_of)
                row_of[triple] = row
                self._row_items.append(triple.data_item)
            key = provenance_key(record, self.granularity)
            prov = prov_of.get(key)
            if prov is None:
                prov = len(prov_of)
                prov_of[key] = prov
            pairs[i, 0] = row
            pairs[i, 1] = prov
        self._pairs.append(pairs)
        self.n_records += len(records)

    @property
    def n_rows(self) -> int:
        return len(self._row_of)

    def unique_triples(self) -> list[Triple]:
        return sorted(self._row_of)

    def build(self) -> ColumnarClaims:
        n_rows = len(self._row_of)
        arrival_triples = list(self._row_of)
        row_items = self._row_items
        # Canonical row order: items sorted field-wise, triples sorted
        # within each item — tuple comparison gives exactly the
        # from_items() nesting order.
        order = sorted(
            range(n_rows), key=lambda r: (row_items[r], arrival_triples[r])
        )
        row_remap = np.empty(n_rows, dtype=np.int64)
        row_remap[np.asarray(order, dtype=np.int64)] = np.arange(
            n_rows, dtype=np.int64
        )
        triples = [arrival_triples[r] for r in order]

        items: list[DataItem] = []
        row_item = np.empty(n_rows, dtype=np.int64)
        for new_row, r in enumerate(order):
            item = row_items[r]
            if not items or item != items[-1]:
                items.append(item)
            row_item[new_row] = len(items) - 1
        item_ptr = np.zeros(len(items) + 1, dtype=np.int64)
        if n_rows:
            counts = np.bincount(row_item, minlength=len(items))
            np.cumsum(counts, out=item_ptr[1:])

        provenances = sorted(self._prov_of)
        prov_remap = np.empty(len(provenances), dtype=np.int64)
        for new_prov, key in enumerate(provenances):
            prov_remap[self._prov_of[key]] = new_prov

        if self._pairs:
            raw = np.concatenate(self._pairs)
            new_rows = row_remap[raw[:, 0]]
            new_provs = prov_remap[raw[:, 1]]
            # Dedup + sort by (row, prov) in one encoded key: claims land
            # grouped by row with provenances ascending — CSR order, and
            # prov-id order is sorted-ProvKey order by construction.
            n_provs = len(provenances)
            combined = np.unique(new_rows * np.int64(n_provs) + new_provs)
            claim_row = combined // n_provs
            claim_prov = combined % n_provs
        else:
            claim_row = np.zeros(0, dtype=np.int64)
            claim_prov = np.zeros(0, dtype=np.int64)

        row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        if n_rows:
            claim_counts = np.bincount(claim_row, minlength=n_rows)
            np.cumsum(claim_counts, out=row_ptr[1:])

        # Transpose: claims sorted by (prov, row) give the per-prov CSR.
        transpose = np.argsort(claim_prov, kind="stable")
        prov_rows = claim_row[transpose]
        prov_counts = np.bincount(claim_prov, minlength=len(provenances))
        prov_ptr = np.zeros(len(provenances) + 1, dtype=np.int64)
        np.cumsum(prov_counts, out=prov_ptr[1:])

        return ColumnarClaims(
            granularity=self.granularity,
            items=items,
            triples=triples,
            provenances=provenances,
            row_item=row_item,
            item_ptr=item_ptr,
            claim_prov=claim_prov,
            row_ptr=row_ptr,
            prov_rows=prov_rows,
            prov_ptr=prov_ptr,
        )

    def release(self) -> None:
        """Drop the accumulation state (vocabularies + pair chunks)."""
        self._row_of = {}
        self._row_items = []
        self._prov_of = {}
        self._pairs = []
