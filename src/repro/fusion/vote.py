"""VOTE: the baseline fuser.

§4.1: "if a data item D = (s, p) has n provenances in total and a triple
T = (s, p, o) has m provenances, the probability of T is p(T) = m/n."
No source-quality estimation, no iteration — only Stage I and Stage III of
the Figure 8 pipeline, which is exactly how it is implemented here (through
the MapReduce engine, so VOTE exercises the same dataflow as the Bayesian
methods).

Backends: ``serial`` runs the scalar reducers in-process; ``parallel``
runs Stage I through the columnar shuffle (:mod:`repro.fusion.shuffle`) —
pool-resident claim columns, integer-id shard payloads, bit-identical to
serial on fork and spawn, including under canonical-order reducer-input
sampling; ``vectorized`` computes all ``m/n`` ratios in one numpy pass
over the columnar claim index; ``hybrid`` runs that batched kernel inside
each parallel shard.  The vectorized path falls back to ``serial`` — and
the hybrid path to the scalar ``parallel`` shards — when sampling would
engage (batched kernels score whole rounds and cannot subset per item).
"""

from __future__ import annotations

import numpy as np

from repro.fusion import kernels, shuffle
from repro.fusion.base import Fuser, FusionResult, parity_of, sampling_contract_of
from repro.fusion.observations import ColumnarClaims, FusionInput, ProvKey
from repro.fusion.runner import (
    Stage1Reducer,
    make_executor,
    sampling_would_engage,
    stage1_mapper,
    stage1_sample_key,
)
from repro.kb.triples import Triple
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import ParallelExecutor

__all__ = ["vote_item_posteriors", "VoteKernel", "Vote"]


def vote_item_posteriors(
    claims: dict[Triple, set[ProvKey]],
    accuracies: dict[ProvKey, float] | None = None,
) -> dict[Triple, float]:
    """Scalar reference: ``p(T) = m/n`` for one data item.

    ``accuracies`` is accepted (and ignored) so VOTE matches the posterior
    signature of the Bayesian kernels.
    """
    total = sum(len(provs) for provs in claims.values())
    if total == 0:
        return {}
    return {triple: len(provs) / total for triple, provs in claims.items()}


class VoteKernel:
    """The VOTE posterior as a pluggable kernel (scalar + batched)."""

    def __call__(
        self,
        claims: dict[Triple, set[ProvKey]],
        accuracies: dict[ProvKey, float] | None = None,
    ) -> dict[Triple, float]:
        return vote_item_posteriors(claims, accuracies)

    def batch_round(
        self, cols: ColumnarClaims, accuracies=None, active=None, require_repeated=False
    ) -> kernels.RoundPosteriors:
        return kernels.vote_round(cols, active, require_repeated)


def _vote_stage3_mapper(pair):
    return [(pair[0].canonical(), pair)]


def _vote_stage3_reducer(_key, values):
    return [values[0]]


class Vote(Fuser):
    """Provenance counting."""

    @property
    def name(self) -> str:
        return "VOTE"

    def fuse(self, fusion_input: FusionInput, executor=None) -> FusionResult:
        matrix = fusion_input.claims(self.config.granularity)
        backend_used = self.config.backend
        if self.config.backend == "vectorized":
            cols = matrix.columnar()
            if not sampling_would_engage(cols, self.config, include_stage2=False):
                return self._fuse_vectorized(cols)
            backend_used = "serial (vectorized fallback)"
        elif self.config.backend in ("parallel", "hybrid"):
            cols = matrix.columnar()
            hybrid = self.config.backend == "hybrid" and not sampling_would_engage(
                cols, self.config, include_stage2=False
            )
            return self._fuse_columnar(cols, executor, hybrid=hybrid)
        return self._fuse_mapreduce(matrix, backend_used)

    def _fuse_vectorized(self, cols: ColumnarClaims) -> FusionResult:
        round_result = kernels.vote_round(cols)
        result = FusionResult(
            method=self.name,
            probabilities={
                triple: float(round_result.posteriors[r])
                for r, triple in enumerate(cols.triples)
            },
            rounds=0,
            converged=True,
            diagnostics={
                "backend": "vectorized",
                "backend_used": "vectorized",
                "parity": parity_of("vectorized"),
                "sampling": sampling_contract_of(self.config),
            },
        )
        result.validate()
        return result

    def _fuse_columnar(
        self, cols: ColumnarClaims, executor=None, hybrid: bool = False
    ) -> FusionResult:
        """Stage I through the columnar shuffle.

        Rows are already unique triples, so the serial path's Stage-III
        dedup is structurally a no-op here: the per-row ``m/n`` ratios are
        the final probabilities.  Scalar shards (``hybrid=False``) are
        bit-identical to serial — sampling included, via the
        canonical-order draw; hybrid shards run the batched ``m/n`` kernel
        per shard at tolerance parity.
        """
        if hybrid:
            backend_used = "hybrid"
        elif self.config.backend == "hybrid":
            backend_used = "parallel (hybrid fallback)"
        else:
            backend_used = "parallel"
        owns_executor = executor is None
        if executor is None:
            executor = make_executor(self.config, "parallel")
        shuffle.install_fusion_columns(executor, cols)
        n_provs = len(cols.provenances)
        state = shuffle.install_stage1_state(
            executor,
            np.zeros(n_provs, dtype=np.float64),
            np.ones(n_provs, dtype=bool),
        )
        if hybrid:
            job = shuffle.hybrid_stage1_job(
                "vote.stage1",
                cols,
                VoteKernel(),
                state,
                require_repeated=False,
            )
        else:
            job = shuffle.stage1_job(
                "vote.stage1",
                cols,
                VoteKernel(),
                state,
                require_repeated=False,
                sample_limit=self.config.sample_limit,
                seed=self.config.seed,
            )
        try:
            per_item = executor.run_map(range(cols.n_items), job)
            fallback_diagnostics = (
                {
                    "fallbacks_tiny": executor.fallbacks_tiny,
                    "fallbacks_unpicklable": executor.fallbacks_unpicklable,
                    "fallbacks_shm": executor.fallbacks_shm,
                }
                if isinstance(executor, ParallelExecutor)
                else {}
            )
            round_state_channel = getattr(
                executor, "round_state_channel", "in-process"
            )
        finally:
            shuffle.uninstall_fusion_round_state(executor)
            if owns_executor:
                executor.close()
        probabilities, _arr, _scored = shuffle.merge_stage1_outputs(cols, per_item)
        result = FusionResult(
            method=self.name,
            probabilities={t: float(p) for t, p in probabilities.items()},
            rounds=0,
            converged=True,
            diagnostics={
                "backend": self.config.backend,
                "backend_used": backend_used,
                "parity": parity_of(backend_used),
                "sampling": sampling_contract_of(self.config),
                "round_state": round_state_channel,
                **fallback_diagnostics,
            },
        )
        result.validate()
        return result

    def _fuse_mapreduce(self, matrix, backend_used: str) -> FusionResult:
        executor = make_executor(self.config, backend_used)
        engine = MapReduceEngine(executor)

        claims = [
            (item, triple, prov)
            for item, triple_map in matrix.items.items()
            for triple, provs in triple_map.items()
            for prov in provs
        ]
        stage1 = MapReduceJob(
            name="vote.stage1",
            mapper=stage1_mapper,
            reducer=Stage1Reducer(VoteKernel(), {}, require_repeated=False),
            sample_limit=self.config.sample_limit,
            seed=self.config.seed,
            sample_key=stage1_sample_key,
        )
        try:
            scored = engine.run(claims, stage1)

            # Stage III: dedup by triple (probabilities agree per item already).
            stage3 = MapReduceJob(
                name="vote.stage3",
                mapper=_vote_stage3_mapper,
                reducer=_vote_stage3_reducer,
            )
            deduped = engine.run(scored, stage3)
        finally:
            executor.close()
        result = FusionResult(
            method=self.name,
            probabilities={triple: float(p) for triple, p in deduped},
            rounds=0,
            converged=True,
            diagnostics={
                "backend": self.config.backend,
                "backend_used": backend_used,
                "parity": parity_of(backend_used),
                "sampling": sampling_contract_of(self.config),
            },
        )
        result.validate()
        return result
