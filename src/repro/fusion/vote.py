"""VOTE: the baseline fuser.

§4.1: "if a data item D = (s, p) has n provenances in total and a triple
T = (s, p, o) has m provenances, the probability of T is p(T) = m/n."
No source-quality estimation, no iteration — only Stage I and Stage III of
the Figure 8 pipeline, which is exactly how it is implemented here (through
the MapReduce engine, so VOTE exercises the same dataflow as the Bayesian
methods).
"""

from __future__ import annotations

from repro.fusion.base import Fuser, FusionResult
from repro.fusion.observations import FusionInput
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob

__all__ = ["Vote"]


class Vote(Fuser):
    """Provenance counting."""

    @property
    def name(self) -> str:
        return "VOTE"

    def fuse(self, fusion_input: FusionInput) -> FusionResult:
        matrix = fusion_input.claims(self.config.granularity)
        engine = MapReduceEngine()

        # Stage I: map claims by data item, compute m/n per triple.
        def stage1_mapper(claim):
            item, triple, prov = claim
            return [(item.canonical(), (triple, prov))]

        def stage1_reducer(item_key, values):
            total = len(values)
            counts: dict = {}
            for triple, _prov in values:
                counts[triple] = counts.get(triple, 0) + 1
            return [(triple, count / total) for triple, count in counts.items()]

        claims = [
            (item, triple, prov)
            for item, triple_map in matrix.items.items()
            for triple, provs in triple_map.items()
            for prov in provs
        ]
        stage1 = MapReduceJob(
            name="vote.stage1",
            mapper=stage1_mapper,
            reducer=stage1_reducer,
            sample_limit=self.config.sample_limit,
            seed=self.config.seed,
        )
        scored = engine.run(claims, stage1)

        # Stage III: dedup by triple (probabilities agree per item already).
        stage3 = MapReduceJob(
            name="vote.stage3",
            mapper=lambda pair: [(pair[0].canonical(), pair)],
            reducer=lambda _key, values: [values[0]],
        )
        deduped = engine.run(scored, stage3)
        result = FusionResult(
            method=self.name,
            probabilities={triple: float(p) for triple, p in deduped},
            rounds=0,
            converged=True,
        )
        result.validate()
        return result
