"""Command-line interface: run any experiment against a preset scenario.

Usage::

    repro-kf list
    repro-kf run fig9 [--scale small] [--seed 0]
    repro-kf run all --scale tiny
    repro-kf fuse popaccu --backend vectorized [--scale small] [--seed 0]
    repro-kf extract --backend parallel [--scale small] [--seed 0]
    repro-kf pipeline popaccu+ --backend hybrid [--workers 4]
    python -m repro.cli run table2

The scenario is generated deterministically from the seed; the first
experiment of a session pays the generation cost, later ones share it.
``fuse`` runs a single fusion method end-to-end under a chosen execution
backend (serial scalar, process-pool parallel, or vectorized columnar) and
prints a one-screen summary — the quickest way to compare backends.
``extract`` runs only the extraction stage (world + corpus generation, then
the 12 extractors) under a serial or parallel backend, timing the stage and
reporting record/error counts plus the parallel executor's fallback
counters; the record stream is bit-identical across backends.
``pipeline`` runs the whole thing — extraction → gold labeling → fusion —
on a *single shared executor* (one worker pool for both stages; see
:func:`repro.endtoend.run_end_to_end`), printing per-stage timings and the
headline metrics; ``serial`` and ``parallel`` output is bit-identical,
``hybrid`` (batched fusion kernels inside each parallel shard) honours
the 1e-9 tolerance parity contract — the reported ``parity`` line says
which applied.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.datasets import (
    STREAMING_SCALES,
    build_extraction_pipeline,
    build_scenario,
    medium_config,
    small_config,
    tiny_config,
    web_config,
)
from repro.endtoend import PIPELINE_BACKENDS, PIPELINE_METHODS
from repro.experiments import experiment_ids, run_experiment
from repro.extract.pipeline import EXTRACTION_BACKENDS
from repro.fusion.base import BACKENDS

_SCALES = {
    "tiny": tiny_config,
    "small": small_config,
    "medium": medium_config,
    "web": web_config,
}

#: Scales whose corpus fits in memory; every subcommand accepts these.
#: The streaming scales (``web``) are pipeline-only — the other commands
#: materialise the corpus/record list, which the out-of-core tier forbids.
_MATERIALISED_SCALES = sorted(set(_SCALES) - STREAMING_SCALES)

_FUSE_METHODS = PIPELINE_METHODS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kf",
        description="Knowledge-fusion reproduction (Dong et al., VLDB 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig9, or 'all'")
    run_parser.add_argument(
        "--scale",
        choices=_MATERIALISED_SCALES,
        default="small",
        help="scenario preset (default: small)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="master seed")

    fuse_parser = sub.add_parser(
        "fuse", help="run one fusion method under a chosen execution backend"
    )
    fuse_parser.add_argument(
        "method", choices=_FUSE_METHODS, help="fusion method preset"
    )
    fuse_parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="execution backend (default: serial)",
    )
    fuse_parser.add_argument(
        "--scale",
        choices=_MATERIALISED_SCALES,
        default="small",
        help="scenario preset (default: small)",
    )
    fuse_parser.add_argument("--seed", type=int, default=0, help="master seed")
    fuse_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel backend (default: CPU count)",
    )

    extract_parser = sub.add_parser(
        "extract", help="run the extraction stage under a chosen backend"
    )
    extract_parser.add_argument(
        "--backend",
        choices=EXTRACTION_BACKENDS,
        default="serial",
        help="extraction backend (default: serial)",
    )
    extract_parser.add_argument(
        "--scale",
        choices=_MATERIALISED_SCALES,
        default="small",
        help="scenario preset (default: small)",
    )
    extract_parser.add_argument("--seed", type=int, default=0, help="master seed")
    extract_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel backend (default: CPU count)",
    )

    pipeline_parser = sub.add_parser(
        "pipeline",
        help="run extraction → fusion end-to-end on one shared executor",
    )
    pipeline_parser.add_argument(
        "method",
        nargs="?",
        default="popaccu+",
        choices=_FUSE_METHODS,
        help="fusion method preset (default: popaccu+)",
    )
    pipeline_parser.add_argument(
        "--backend",
        choices=PIPELINE_BACKENDS,
        default="serial",
        help="execution backend for both stages (default: serial); "
        "hybrid = parallel extraction + batched in-shard fusion kernels",
    )
    pipeline_parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="scenario preset (default: small); 'web' streams the corpus "
        "out of core (see docs/SCALING.md)",
    )
    pipeline_parser.add_argument("--seed", type=int, default=0, help="master seed")
    pipeline_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel backend (default: CPU count)",
    )
    pipeline_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="scenario artifact cache directory: warm runs load worldgen "
        "bit-identically in milliseconds; at --scale web it also holds the "
        "memory-mapped claim columns (default: no on-disk cache)",
    )
    pipeline_parser.add_argument(
        "--chunk-pages",
        type=int,
        default=2048,
        help="streaming scales only: pages generated and extracted per "
        "chunk (default: 2048); the chunk size never changes the output",
    )

    cache_parser = sub.add_parser(
        "cache", help="manage the on-disk artifact cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    prune_parser = cache_sub.add_parser(
        "prune",
        help="list (default) or delete stale cache entries: interrupted "
        ".tmp- publishes, unreadable metadata, and artifacts from old "
        "code versions",
    )
    prune_parser.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="artifact cache directory to prune",
    )
    prune_parser.add_argument(
        "--apply",
        action="store_true",
        help="actually delete the stale entries (default: dry run)",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="statically check the determinism/payload/parity contracts",
    )
    lint_parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    lint_parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root to lint (default: auto-detected)",
    )
    lint_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of accepted findings "
        "(default: tools/contracts_lint_baseline.json under the root)",
    )
    return parser


def _run_fuse(args) -> int:
    from repro.endtoend import make_fuser
    from repro.errors import ConfigError
    from repro.fusion import FusionConfig

    try:
        config = FusionConfig(
            seed=args.seed, backend=args.backend, n_workers=args.workers
        )
    except ConfigError as err:
        print(f"repro-kf fuse: error: {err}", file=sys.stderr)
        return 2
    scenario = build_scenario(_SCALES[args.scale](seed=args.seed))
    fuser = make_fuser(args.method, config, scenario.gold)

    start = time.perf_counter()
    result = fuser.fuse(scenario.fusion_input())
    elapsed = time.perf_counter() - start

    print(f"method:        {result.method}")
    print(f"backend:       {result.diagnostics.get('backend', args.backend)}")
    print(f"backend used:  {result.diagnostics.get('backend_used', 'serial')}")
    print(f"parity:        {result.diagnostics.get('parity', 'bitwise')}")
    print(f"sampling:      {result.diagnostics.get('sampling', 'unbounded')}")
    if "round_state" in result.diagnostics:
        print(f"round state:   {result.diagnostics['round_state']}")
    if "fallbacks_tiny" in result.diagnostics:
        print(
            f"fallbacks:     {result.diagnostics['fallbacks_tiny']} tiny, "
            f"{result.diagnostics['fallbacks_unpicklable']} unpicklable, "
            f"{result.diagnostics.get('fallbacks_shm', 0)} shm"
        )
    print(f"fusion time:   {elapsed:.3f}s")
    print(f"rounds:        {result.rounds} (converged: {result.converged})")
    print(f"triples:       {len(result.probabilities)}")
    print(f"unpredicted:   {len(result.unpredicted)}")
    print(f"coverage:      {result.coverage():.4f}")
    if result.probabilities:
        mean = sum(result.probabilities.values()) / len(result.probabilities)
        print(f"mean p(true):  {mean:.4f}")
    return 0


def _run_extract(args) -> int:
    from collections import Counter

    from repro.mapreduce.executors import ParallelExecutor, SerialExecutor
    from repro.world.webgen import generate_corpus
    from repro.world.worldgen import generate_world

    config = _SCALES[args.scale](seed=args.seed)
    start = time.perf_counter()
    world = generate_world(config.world, config.seed)
    corpus = generate_corpus(world, config.web, config.seed)
    pipeline = build_extraction_pipeline(config, world)
    setup_elapsed = time.perf_counter() - start

    executor = (
        ParallelExecutor(max_workers=args.workers)
        if args.backend in ("parallel", "hybrid")
        else SerialExecutor()
    )
    start = time.perf_counter()
    try:
        records = pipeline.run(corpus, backend=args.backend, executor=executor)
    finally:
        executor.close()
    elapsed = time.perf_counter() - start

    per_extractor = Counter(record.extractor for record in records)
    errors = sum(1 for record in records if record.is_extraction_error)
    top = ", ".join(f"{name}:{n}" for name, n in per_extractor.most_common(4))
    fallbacks = pipeline.synthesis_fallbacks()
    synthesis = (
        "batched" if args.backend in ("batched", "hybrid") else "scalar"
    )
    print(f"backend:       {args.backend}")
    print(
        f"synthesis:     {synthesis}"
        + (f" (scalar fallback: {', '.join(fallbacks)})" if fallbacks else "")
    )
    print(f"pages:         {len(corpus.pages)} ({len(corpus.sites)} sites)")
    print(f"setup time:    {setup_elapsed:.3f}s (world + corpus + extractors)")
    print(
        f"extract time:  {elapsed:.3f}s"
        + (f" ({len(records) / elapsed:.0f} records/s)" if elapsed > 0 else "")
    )
    print(f"records:       {len(records)} (top extractors: {top})")
    if records:
        print(f"error records: {errors} ({errors / len(records):.1%})")
    if isinstance(executor, ParallelExecutor):
        print(f"workers:       {executor.max_workers}")
        print(
            f"fallbacks:     {executor.fallbacks_tiny} tiny, "
            f"{executor.fallbacks_unpicklable} unpicklable, "
            f"{executor.fallbacks_shm} shm"
        )
    return 0


def _run_streaming_pipeline(args) -> int:
    from repro.endtoend import run_streaming_pipeline
    from repro.errors import ConfigError

    try:
        result = run_streaming_pipeline(
            config=_SCALES[args.scale](seed=args.seed),
            method=args.method,
            backend=args.backend,
            n_workers=args.workers,
            chunk_pages=args.chunk_pages,
            cache_dir=args.cache_dir,
        )
    except ConfigError as err:
        print(f"repro-kf pipeline: error: {err}", file=sys.stderr)
        return 2

    timings, metrics, diagnostics = result.timings, result.metrics, result.diagnostics
    print(f"method:        {result.fusion.method}")
    print(f"backend:       {result.backend} (streaming)")
    print(f"backend used:  {diagnostics.get('backend_used', 'serial')}")
    print(f"parity:        {diagnostics.get('parity', 'bitwise')}")
    print(f"sampling:      {diagnostics.get('sampling', 'unbounded')}")
    if "round_state" in diagnostics:
        print(f"round state:   {diagnostics['round_state']}")
    print(f"column store:  {diagnostics['column_store']}")
    if "n_workers" in diagnostics:
        print(f"workers:       {diagnostics['n_workers']}")
    if "fallbacks_tiny" in diagnostics:
        print(
            f"fallbacks:     {diagnostics['fallbacks_tiny']} tiny, "
            f"{diagnostics['fallbacks_unpicklable']} unpicklable, "
            f"{diagnostics.get('fallbacks_shm', 0)} shm"
        )
    print(
        f"pages:         {result.n_pages} -> records: {result.n_records} "
        f"({diagnostics['n_chunks']} chunks of {diagnostics['chunk_pages']})"
    )
    for stage in ("setup", "extraction", "labeling", "matrix", "fusion", "total"):
        print(f"{stage + ':':<15}{timings[stage]:.3f}s")
    print(f"peak rss:      {diagnostics['peak_rss_mb']:.1f} MiB")
    print(f"rounds:        {result.fusion.rounds} (converged: {result.fusion.converged})")
    print(f"triples:       {len(result.fusion.probabilities)}")
    print(f"coverage:      {metrics['coverage']:.4f}")
    print(f"deviation:     {metrics['deviation']:.4f} (weighted: {metrics['weighted_deviation']:.4f})")
    print(f"auc-pr:        {metrics['auc_pr']:.4f}")
    print(f"gold accuracy: {metrics['gold_accuracy']:.4f} (n={metrics['n_labelled']})")
    return 0


def _run_pipeline(args) -> int:
    from repro.endtoend import peak_rss_mb, run_end_to_end
    from repro.errors import ConfigError

    if args.scale in STREAMING_SCALES:
        return _run_streaming_pipeline(args)

    try:
        result = run_end_to_end(
            config=_SCALES[args.scale](seed=args.seed),
            method=args.method,
            backend=args.backend,
            n_workers=args.workers,
            cache_dir=args.cache_dir,
        )
    except ConfigError as err:
        print(f"repro-kf pipeline: error: {err}", file=sys.stderr)
        return 2

    timings, metrics, diagnostics = result.timings, result.metrics, result.diagnostics
    print(f"method:        {result.fusion.method}")
    print(f"backend:       {result.backend}")
    print(f"backend used:  {diagnostics.get('backend_used', 'serial')}")
    print(f"parity:        {diagnostics.get('parity', 'bitwise')}")
    print(f"sampling:      {diagnostics.get('sampling', 'unbounded')}")
    if "round_state" in diagnostics:
        print(f"round state:   {diagnostics['round_state']}")
    print(f"scenario cache: {diagnostics.get('scenario_cache', 'off')}")
    if "n_workers" in diagnostics:
        print(f"workers:       {diagnostics['n_workers']}")
    if "fallbacks_tiny" in diagnostics:
        print(
            f"fallbacks:     {diagnostics['fallbacks_tiny']} tiny, "
            f"{diagnostics['fallbacks_unpicklable']} unpicklable, "
            f"{diagnostics.get('fallbacks_shm', 0)} shm"
        )
    print(
        f"pages:         {diagnostics['n_pages']} "
        f"-> records: {diagnostics['n_records']}"
    )
    for stage in ("setup", "extraction", "labeling", "fusion", "total"):
        print(f"{stage + ':':<15}{timings[stage]:.3f}s")
    print(f"peak rss:      {peak_rss_mb():.1f} MiB")
    print(f"rounds:        {result.fusion.rounds} (converged: {result.fusion.converged})")
    print(f"triples:       {len(result.fusion.probabilities)}")
    print(f"coverage:      {metrics['coverage']:.4f}")
    print(f"deviation:     {metrics['deviation']:.4f} (weighted: {metrics['weighted_deviation']:.4f})")
    print(f"auc-pr:        {metrics['auc_pr']:.4f}")
    print(f"gold accuracy: {metrics['gold_accuracy']:.4f} (n={metrics['n_labelled']})")
    return 0


def _run_cache(args) -> int:
    from repro.artifacts import prune_cache

    stale = prune_cache(args.cache_dir, apply=args.apply)
    if not stale:
        print(f"cache {args.cache_dir}: nothing stale")
        return 0
    verb = "pruned" if args.apply else "would prune"
    for path in stale:
        print(f"{verb}: {path}")
    if not args.apply:
        print(f"{len(stale)} stale entr{'y' if len(stale) == 1 else 'ies'} "
              "(dry run; pass --apply to delete)")
    return 0


def _run_lint(args) -> int:
    from repro.analysis import find_repo_root, render_human, render_json, run_lint

    root = args.root if args.root is not None else find_repo_root()
    result = run_lint(root, baseline_path=args.baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "fuse":
        return _run_fuse(args)
    if args.command == "extract":
        return _run_extract(args)
    if args.command == "pipeline":
        return _run_pipeline(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "lint":
        return _run_lint(args)
    scenario = build_scenario(_SCALES[args.scale](seed=args.seed))
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        result = run_experiment(experiment_id, scenario)
        print(result.text)
        print()
    return 0


def _entry() -> int:  # pragma: no cover - thin wrapper
    try:
        return main()
    except BrokenPipeError:
        # `repro-kf list | head` closes the pipe early; exit quietly.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_entry())
