"""Command-line interface: run any experiment against a preset scenario.

Usage::

    repro-kf list
    repro-kf run fig9 [--scale small] [--seed 0]
    repro-kf run all --scale tiny
    python -m repro.cli run table2

The scenario is generated deterministically from the seed; the first
experiment of a session pays the generation cost, later ones share it.
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets import (
    build_scenario,
    medium_config,
    small_config,
    tiny_config,
)
from repro.experiments import experiment_ids, run_experiment

_SCALES = {
    "tiny": tiny_config,
    "small": small_config,
    "medium": medium_config,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kf",
        description="Knowledge-fusion reproduction (Dong et al., VLDB 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig9, or 'all'")
    run_parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="scenario preset (default: small)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="master seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    scenario = build_scenario(_SCALES[args.scale](seed=args.seed))
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        result = run_experiment(experiment_id, scenario)
        print(result.text)
        print()
    return 0


def _entry() -> int:  # pragma: no cover - thin wrapper
    try:
        return main()
    except BrokenPipeError:
        # `repro-kf list | head` closes the pipe early; exit quietly.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_entry())
