"""Indexed triple store.

:class:`KnowledgeBase` is the Freebase stand-in: a set of triples with
indexes by data item, subject, and predicate.  It is used twice in the
pipeline — once as the *snapshot* against which the LCWA gold standard is
built, and once as the destination the fused triples would be written to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.kb.triples import DataItem, Triple
from repro.kb.values import Value

__all__ = ["KnowledgeBase"]


@dataclass
class KnowledgeBase:
    """A set of knowledge triples with the indexes fusion needs.

    The store is append-only (Freebase snapshots do not lose facts during a
    fusion run); adding a duplicate triple is a no-op so ingestion is
    idempotent.
    """

    name: str = "kb"
    _triples: set[Triple] = field(default_factory=set)
    _by_item: dict[DataItem, list[Triple]] = field(default_factory=dict)
    _by_subject: dict[str, list[Triple]] = field(default_factory=dict)
    _by_predicate: dict[str, list[Triple]] = field(default_factory=dict)

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return True if it was new."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_item.setdefault(triple.data_item, []).append(triple)
        self._by_subject.setdefault(triple.subject, []).append(triple)
        self._by_predicate.setdefault(triple.predicate, []).append(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new."""
        return sum(1 for t in triples if self.add(t))

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def has_item(self, item: DataItem) -> bool:
        """True if the KB knows *any* value for this data item.

        This is the LCWA gate: a triple absent from the KB is only labelled
        false when its data item is present.
        """
        return item in self._by_item

    def values_for(self, item: DataItem) -> list[Value]:
        """The object values the KB stores for ``item`` (possibly many)."""
        return [t.obj for t in self._by_item.get(item, [])]

    def triples_for(self, item: DataItem) -> list[Triple]:
        return list(self._by_item.get(item, []))

    def triples_of_subject(self, subject: str) -> list[Triple]:
        return list(self._by_subject.get(subject, []))

    def triples_of_predicate(self, predicate: str) -> list[Triple]:
        return list(self._by_predicate.get(predicate, []))

    def data_items(self) -> list[DataItem]:
        return list(self._by_item)

    def subjects(self) -> list[str]:
        return list(self._by_subject)

    def predicates(self) -> list[str]:
        return list(self._by_predicate)

    def item_value_counts(self) -> Counter:
        """#values per data item — the truth-count distribution of Fig 20."""
        return Counter({item: len(ts) for item, ts in self._by_item.items()})

    def stats(self) -> dict[str, int]:
        """Headline counts in the shape of the paper's Table 1."""
        objects = {t.obj for t in self._triples}
        return {
            "triples": len(self._triples),
            "subjects": len(self._by_subject),
            "predicates": len(self._by_predicate),
            "objects": len(objects),
            "data_items": len(self._by_item),
        }
