"""Object values for knowledge triples.

The paper's objects are "an entity in Freebase, a string, or a number"
(§3.1.1); dates appear throughout the examples (birth dates), so they get
their own kind too.  Values are small frozen dataclasses: hashable, ordered
deterministically, and with a stable canonical text form used for
serialisation and for the surface realisation done by the web generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["EntityRef", "StringValue", "NumberValue", "DateValue", "Value", "parse_value"]


@dataclass(frozen=True, slots=True, order=True)
class EntityRef:
    """A reference to an entity by its mid-style identifier (e.g. ``/m/07r1h``)."""

    entity_id: str

    def canonical(self) -> str:
        return f"entity:{self.entity_id}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()


@dataclass(frozen=True, slots=True, order=True)
class StringValue:
    """A raw string object (names, descriptions, addresses)."""

    text: str

    def canonical(self) -> str:
        return f"string:{self.text}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()


@dataclass(frozen=True, slots=True, order=True)
class NumberValue:
    """A numeric object.

    Numbers are stored as floats but rendered without a trailing ``.0`` when
    integral, so the canonical form of ``NumberValue(1986.0)`` is
    ``number:1986`` — matching how numbers appear on web pages.  Values are
    normalised at construction to the precision of their canonical text
    (``%g``), so a value always round-trips: the binary-float residue of
    arithmetic like ``1956 * 0.1`` cannot make two values that *print*
    identically compare unequal.
    """

    value: float

    def __post_init__(self) -> None:
        value = float(self.value)
        if not value.is_integer():
            value = float(f"{value:g}")
        object.__setattr__(self, "value", value)

    def canonical(self) -> str:
        if float(self.value).is_integer():
            return f"number:{int(self.value)}"
        return f"number:{self.value:g}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()


@dataclass(frozen=True, slots=True, order=True)
class DateValue:
    """A calendar date in ISO ``YYYY-MM-DD`` form."""

    iso: str

    def canonical(self) -> str:
        return f"date:{self.iso}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()


Value = Union[EntityRef, StringValue, NumberValue, DateValue]

_PARSERS = {
    "entity": lambda payload: EntityRef(payload),
    "string": lambda payload: StringValue(payload),
    "number": lambda payload: NumberValue(float(payload)),
    "date": lambda payload: DateValue(payload),
}


def parse_value(canonical: str) -> Value:
    """Inverse of ``Value.canonical()``.

    >>> parse_value("entity:/m/07r1h")
    EntityRef(entity_id='/m/07r1h')
    >>> parse_value("number:1986")
    NumberValue(value=1986.0)
    """
    kind, sep, payload = canonical.partition(":")
    if not sep or kind not in _PARSERS:
        raise ValueError(f"not a canonical value string: {canonical!r}")
    return _PARSERS[kind](payload)
