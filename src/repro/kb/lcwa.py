"""Local closed-world assumption (LCWA) labelling.

§3.2.1: a triple ``(s, p, o)`` found in Freebase is labelled **true**; a
triple absent from Freebase whose data item ``(s, p)`` *is* present is
labelled **false** ("once Freebase has knowledge about a particular data
item, it has complete knowledge"); when the data item itself is unknown the
labeller **abstains** and the triple is excluded from the gold standard.

The labeller is deliberately faithful to this rule, including its known
failure modes (extra true values for non-functional predicates and
more-specific/more-general values are labelled false) — those failure modes
are themselves measured by the paper's error analysis (Figure 17) and
reproduced in :mod:`repro.eval.analysis`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kb.store import KnowledgeBase
from repro.kb.triples import Triple

__all__ = ["Label", "LCWALabeler"]


class Label(enum.Enum):
    """Outcome of LCWA labelling for one triple."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class LCWALabeler:
    """Labels triples against a reference KB under LCWA."""

    reference: KnowledgeBase

    def label(self, triple: Triple) -> Label:
        if triple in self.reference:
            return Label.TRUE
        if self.reference.has_item(triple.data_item):
            return Label.FALSE
        return Label.UNKNOWN

    def label_many(self, triples) -> dict[Triple, bool]:
        """Labels for every non-abstained triple: ``{triple: is_true}``.

        Abstained (UNKNOWN) triples are simply absent from the result,
        mirroring the paper's "exclude it from the gold standard".
        """
        labels: dict[Triple, bool] = {}
        for triple in triples:
            label = self.label(triple)
            if label is Label.TRUE:
                labels[triple] = True
            elif label is Label.FALSE:
                labels[triple] = False
        return labels

    def coverage(self, triples) -> float:
        """Fraction of triples that receive a label (the paper saw 40%)."""
        triples = list(triples)
        if not triples:
            return 0.0
        labelled = sum(1 for t in triples if self.label(t) is not Label.UNKNOWN)
        return labelled / len(triples)
