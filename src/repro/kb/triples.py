"""Knowledge triples and data items.

A triple is ``(subject, predicate, object)``; the ``(subject, predicate)``
pair is the *data item* — the unit over which fusion resolves conflicts
(§3.1.1: "in each triple the (subject, predicate) pair corresponds to a
'data item' in data fusion, and the object can be considered as a 'value'").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.values import DateValue, Value, parse_value  # DateValue used in doctests

__all__ = ["DataItem", "Triple"]


@dataclass(frozen=True, slots=True, order=True)
class DataItem:
    """A ``(subject, predicate)`` pair: one aspect of one entity."""

    subject: str
    predicate: str

    def canonical(self) -> str:
        return f"{self.subject}|{self.predicate}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF-style knowledge triple.

    ``subject`` is an entity id (mid-style string), ``predicate`` a predicate
    id from the schema, and ``obj`` a typed :data:`~repro.kb.values.Value`.
    Triples are frozen and hashable so they can key dictionaries throughout
    the fusion pipeline.  Ordering compares canonical strings, because the
    same data item can mix object kinds (an extractor's raw-string fallback
    next to a linked entity) and field-wise comparison would fail there.
    """

    subject: str
    predicate: str
    obj: Value

    def __lt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.canonical() < other.canonical()

    def __le__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.canonical() <= other.canonical()

    def __gt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.canonical() > other.canonical()

    def __ge__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.canonical() >= other.canonical()

    @property
    def data_item(self) -> DataItem:
        return DataItem(self.subject, self.predicate)

    def canonical(self) -> str:
        return f"{self.subject}|{self.predicate}|{self.obj.canonical()}"

    @staticmethod
    def from_canonical(text: str) -> "Triple":
        """Inverse of :meth:`canonical`.

        >>> t = Triple("/m/07r1h", "people/person/birth_date", DateValue("1962-07-03"))
        >>> Triple.from_canonical(t.canonical()) == t
        True
        """
        parts = text.split("|", 2)
        if len(parts) != 3:
            raise ValueError(f"not a canonical triple string: {text!r}")
        subject, predicate, value_text = parts
        return Triple(subject, predicate, parse_value(value_text))

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()
