"""Containment hierarchy over entity values.

§4.4 and future direction 4 of the paper hinge on hierarchical value
spaces: "North America > USA > CA > San Francisco County > San Francisco".
A triple asserting the more general value (birth place = USA) is *true but
less specific* than one asserting the city; the LCWA gold standard and the
error analysis must both recognise this, and the hierarchical fusion
extension propagates support along these chains.

The hierarchy is a forest: every entity has at most one parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["ValueHierarchy"]


@dataclass
class ValueHierarchy:
    """A parent-pointer forest over entity ids."""

    _parent: dict[str, str] = field(default_factory=dict)
    _children: dict[str, list[str]] = field(default_factory=dict)

    def add_edge(self, child: str, parent: str) -> None:
        """Declare ``parent`` as the container of ``child``."""
        if child == parent:
            raise SchemaError(f"{child} cannot contain itself")
        if child in self._parent:
            raise SchemaError(f"{child} already has parent {self._parent[child]}")
        # Reject cycles: walking up from `parent` must not reach `child`.
        cursor: str | None = parent
        while cursor is not None:
            if cursor == child:
                raise SchemaError(f"edge {child}->{parent} would create a cycle")
            cursor = self._parent.get(cursor)
        self._parent[child] = parent
        self._children.setdefault(parent, []).append(child)

    def parent(self, entity_id: str) -> str | None:
        return self._parent.get(entity_id)

    def children(self, entity_id: str) -> list[str]:
        return list(self._children.get(entity_id, []))

    def ancestors(self, entity_id: str) -> list[str]:
        """Ancestors from immediate parent up to the root (excluding self)."""
        chain: list[str] = []
        cursor = self._parent.get(entity_id)
        while cursor is not None:
            chain.append(cursor)
            cursor = self._parent.get(cursor)
        return chain

    def chain(self, entity_id: str) -> list[str]:
        """``[entity_id, parent, ..., root]`` — the full containment chain."""
        return [entity_id, *self.ancestors(entity_id)]

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """True if ``ancestor`` strictly contains ``descendant``."""
        return ancestor in self.ancestors(descendant)

    def related(self, a: str, b: str) -> bool:
        """True if one of ``a``/``b`` contains the other (or they are equal)."""
        return a == b or self.is_ancestor(a, b) or self.is_ancestor(b, a)

    def depth(self, entity_id: str) -> int:
        """0 for roots, 1 for their children, and so on."""
        return len(self.ancestors(entity_id))

    def roots(self) -> list[str]:
        """All known entities with no parent, in insertion order."""
        seen = dict.fromkeys(self._children)
        seen.update(dict.fromkeys(self._parent))
        return [eid for eid in seen if eid not in self._parent]

    def members(self) -> list[str]:
        """Every entity id that appears in the hierarchy."""
        seen = dict.fromkeys(self._parent)
        seen.update(dict.fromkeys(self._children))
        return list(seen)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._parent or entity_id in self._children
