"""Freebase-like knowledge-base substrate.

The paper stores knowledge as ``(subject, predicate, object)`` triples whose
subjects/predicates come from Freebase and whose objects are entities,
strings, or numbers.  This subpackage provides that substrate: typed object
values, triples and data items, a 2-level type/predicate schema with
functional and non-functional predicates, an entity registry with
mid-style identifiers and aliases, an indexed triple store, a containment
hierarchy over values, and the local closed-world assumption (LCWA)
labeller used to build gold standards.
"""

from repro.kb.values import (
    Value,
    EntityRef,
    StringValue,
    NumberValue,
    DateValue,
)
from repro.kb.triples import Triple, DataItem
from repro.kb.schema import Predicate, EntityType, Schema, ValueKind
from repro.kb.entities import Entity, EntityRegistry
from repro.kb.store import KnowledgeBase
from repro.kb.hierarchy import ValueHierarchy
from repro.kb.lcwa import LCWALabeler, Label

__all__ = [
    "Value",
    "EntityRef",
    "StringValue",
    "NumberValue",
    "DateValue",
    "Triple",
    "DataItem",
    "Predicate",
    "EntityType",
    "Schema",
    "ValueKind",
    "Entity",
    "EntityRegistry",
    "KnowledgeBase",
    "ValueHierarchy",
    "LCWALabeler",
    "Label",
]
