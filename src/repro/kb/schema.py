"""Type and predicate schema.

The paper uses Freebase's shallow 2-level type hierarchy (e.g.
``people/person``) and a fixed predicate vocabulary where each predicate is
"associated with a single type and can be considered as the attribute of
entities in that type" (§3.1.1).  Predicates are either *functional* (one
true value per data item — birth date) or *non-functional* (several — a
person's children).  Table 3 shows 72% of predicates are non-functional;
the synthetic world generator targets that share.

Predicates also carry two generator-facing annotations that production
Freebase does not need:

``confusable_with``
    another predicate of the same type that extractors plausibly mistake
    this one for (the paper's predicate-linkage error: "mistaking the book
    author as the book editor").

``hierarchical``
    whether the object values live in a containment hierarchy (locations),
    enabling the specific/general confusions of §4.4 and direction 4 of §5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["ValueKind", "Predicate", "EntityType", "Schema"]


class ValueKind(enum.Enum):
    """What kind of object a predicate takes."""

    ENTITY = "entity"
    STRING = "string"
    NUMBER = "number"
    DATE = "date"


@dataclass(frozen=True, slots=True)
class Predicate:
    """A predicate in the knowledge-base schema.

    Attributes
    ----------
    pid:
        Full predicate id, ``<domain>/<type>/<name>`` (Freebase style).
    type_id:
        The entity type this predicate describes.
    value_kind:
        The kind of object values this predicate takes.
    functional:
        True if a data item with this predicate has a single true value.
    max_truths:
        Upper bound on the number of simultaneously-true values the world
        generator may assign (1 for functional predicates).
    object_type_id:
        For ENTITY-valued predicates, the type the object belongs to.
    confusable_with:
        Optional pid of a sibling predicate extractors may confuse this with.
    hierarchical:
        True if object values live in a containment hierarchy.
    """

    pid: str
    type_id: str
    value_kind: ValueKind
    functional: bool = True
    max_truths: int = 1
    object_type_id: str | None = None
    confusable_with: str | None = None
    hierarchical: bool = False

    def __post_init__(self) -> None:
        if self.functional and self.max_truths != 1:
            raise SchemaError(
                f"functional predicate {self.pid} must have max_truths == 1"
            )
        if not self.functional and self.max_truths < 2:
            raise SchemaError(
                f"non-functional predicate {self.pid} needs max_truths >= 2"
            )
        if self.value_kind is ValueKind.ENTITY and self.object_type_id is None:
            raise SchemaError(
                f"entity-valued predicate {self.pid} needs an object_type_id"
            )

    @property
    def name(self) -> str:
        """The last path segment, e.g. ``birth_date``."""
        return self.pid.rsplit("/", 1)[-1]


@dataclass(frozen=True, slots=True)
class EntityType:
    """A 2-level Freebase-style type, e.g. ``people/person``."""

    type_id: str

    def __post_init__(self) -> None:
        if self.type_id.count("/") != 1:
            raise SchemaError(
                f"type id must be '<domain>/<name>', got {self.type_id!r}"
            )

    @property
    def domain(self) -> str:
        return self.type_id.split("/", 1)[0]

    @property
    def name(self) -> str:
        return self.type_id.split("/", 1)[1]


@dataclass
class Schema:
    """The full type + predicate vocabulary of a knowledge base."""

    types: dict[str, EntityType] = field(default_factory=dict)
    predicates: dict[str, Predicate] = field(default_factory=dict)

    def add_type(self, entity_type: EntityType) -> EntityType:
        if entity_type.type_id in self.types:
            raise SchemaError(f"duplicate type {entity_type.type_id}")
        self.types[entity_type.type_id] = entity_type
        return entity_type

    def add_predicate(self, predicate: Predicate) -> Predicate:
        if predicate.pid in self.predicates:
            raise SchemaError(f"duplicate predicate {predicate.pid}")
        if predicate.type_id not in self.types:
            raise SchemaError(
                f"predicate {predicate.pid} references unknown type {predicate.type_id}"
            )
        self.predicates[predicate.pid] = predicate
        return predicate

    def predicate(self, pid: str) -> Predicate:
        try:
            return self.predicates[pid]
        except KeyError:
            raise SchemaError(f"unknown predicate {pid!r}") from None

    def entity_type(self, type_id: str) -> EntityType:
        try:
            return self.types[type_id]
        except KeyError:
            raise SchemaError(f"unknown type {type_id!r}") from None

    def predicates_of_type(self, type_id: str) -> list[Predicate]:
        """All predicates attached to ``type_id``, in pid order."""
        return sorted(
            (p for p in self.predicates.values() if p.type_id == type_id),
            key=lambda p: p.pid,
        )

    def functional_share(self) -> float:
        """Fraction of predicates that are functional (cf. Table 3)."""
        if not self.predicates:
            raise SchemaError("empty schema has no functional share")
        functional = sum(1 for p in self.predicates.values() if p.functional)
        return functional / len(self.predicates)

    def validate(self) -> None:
        """Check cross-references (confusable_with, object types)."""
        for predicate in self.predicates.values():
            if predicate.confusable_with is not None:
                other = self.predicates.get(predicate.confusable_with)
                if other is None:
                    raise SchemaError(
                        f"{predicate.pid} confusable with unknown predicate "
                        f"{predicate.confusable_with}"
                    )
                if other.type_id != predicate.type_id:
                    raise SchemaError(
                        f"{predicate.pid} confusable with {other.pid} of a "
                        "different type"
                    )
            if (
                predicate.object_type_id is not None
                and predicate.object_type_id not in self.types
            ):
                raise SchemaError(
                    f"{predicate.pid} has unknown object type "
                    f"{predicate.object_type_id}"
                )
