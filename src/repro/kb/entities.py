"""Entities and the entity registry.

Entities carry mid-style identifiers (``/m/000042``), one or more Freebase
types, a canonical name, and aliases.  Aliases are what make entity linkage
hard: distinct entities may share a surface form ("Les Miserables" the
Broadway show vs. the novel), and the shared linkage components in
:mod:`repro.extract.linkage` resolve such forms — sometimes wrongly, which
is the paper's *entity-linkage* error class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["Entity", "EntityRegistry"]


@dataclass(frozen=True, slots=True)
class Entity:
    """An entity in the knowledge base.

    ``entity_id`` is the mid-style id; ``type_ids`` the (sorted) tuple of
    types it belongs to; ``name`` the canonical surface form; ``aliases``
    additional surface forms (possibly shared with other entities).
    """

    entity_id: str
    type_ids: tuple[str, ...]
    name: str
    aliases: tuple[str, ...] = ()

    @property
    def primary_type(self) -> str:
        return self.type_ids[0]

    def surface_forms(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)


@dataclass
class EntityRegistry:
    """Registry of all entities, indexed by id, type, and surface form."""

    _by_id: dict[str, Entity] = field(default_factory=dict)
    _by_type: dict[str, list[str]] = field(default_factory=dict)
    _by_surface: dict[str, list[str]] = field(default_factory=dict)

    def add(self, entity: Entity) -> Entity:
        if entity.entity_id in self._by_id:
            raise SchemaError(f"duplicate entity {entity.entity_id}")
        if not entity.type_ids:
            raise SchemaError(f"entity {entity.entity_id} has no types")
        self._by_id[entity.entity_id] = entity
        for type_id in entity.type_ids:
            self._by_type.setdefault(type_id, []).append(entity.entity_id)
        for form in entity.surface_forms():
            bucket = self._by_surface.setdefault(form, [])
            if entity.entity_id not in bucket:
                bucket.append(entity.entity_id)
        return entity

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._by_id

    def __iter__(self):
        return iter(self._by_id.values())

    def get(self, entity_id: str) -> Entity:
        try:
            return self._by_id[entity_id]
        except KeyError:
            raise SchemaError(f"unknown entity {entity_id!r}") from None

    def ids(self) -> list[str]:
        """All entity ids in insertion order."""
        return list(self._by_id)

    def of_type(self, type_id: str) -> list[Entity]:
        """Entities belonging to ``type_id``, in insertion order."""
        return [self._by_id[eid] for eid in self._by_type.get(type_id, [])]

    def candidates_for(self, surface: str) -> list[Entity]:
        """Entities whose name or alias equals ``surface``.

        This is the candidate set an entity linker must disambiguate; a
        surface form with more than one candidate is *ambiguous*.
        """
        return [self._by_id[eid] for eid in self._by_surface.get(surface, [])]

    def ambiguous_surfaces(self) -> list[str]:
        """All surface forms shared by at least two entities."""
        return sorted(
            form for form, eids in self._by_surface.items() if len(eids) > 1
        )
