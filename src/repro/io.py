"""JSONL serialisation for the pipeline's data artifacts.

A downstream user of the library needs to move three things across process
boundaries: extraction records (the fusion input), knowledge bases (the
Freebase snapshot / the fused output), and per-triple probabilities (the
fusion result).  Each gets a line-oriented JSON format — append-friendly,
diff-friendly, and streamable, which is the property that matters when the
real corpora are 10⁴× bigger than the test ones.

The debug channel of extraction records is serialised too (rounding it
away would make saved scenarios useless for error analysis), under a
``debug`` key that loaders reconstruct faithfully.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.extract.records import ErrorKind, ExtractionDebug, ExtractionRecord
from repro.kb.store import KnowledgeBase
from repro.kb.triples import Triple

__all__ = [
    "save_records",
    "load_records",
    "save_kb",
    "load_kb",
    "save_probabilities",
    "load_probabilities",
]


# ---------------------------------------------------------------------------
# Extraction records
# ---------------------------------------------------------------------------
def _record_to_dict(record: ExtractionRecord) -> dict:
    data = {
        "triple": record.triple.canonical(),
        "extractor": record.extractor,
        "url": record.url,
        "site": record.site,
        "content_type": record.content_type,
        "pattern": record.pattern,
        "confidence": record.confidence,
    }
    if record.debug is not None:
        data["debug"] = {
            "asserted_index": record.debug.asserted_index,
            "error_kind": (
                record.debug.error_kind.value
                if record.debug.error_kind is not None
                else None
            ),
            "source_error": record.debug.source_error,
            "span_corrupted": record.debug.span_corrupted,
            "slot_mismatch": record.debug.slot_mismatch,
        }
    return data


def _record_from_dict(data: dict) -> ExtractionRecord:
    debug = None
    if "debug" in data and data["debug"] is not None:
        raw = data["debug"]
        debug = ExtractionDebug(
            asserted_index=raw["asserted_index"],
            error_kind=(
                ErrorKind(raw["error_kind"]) if raw["error_kind"] else None
            ),
            source_error=raw["source_error"],
            span_corrupted=raw.get("span_corrupted", False),
            slot_mismatch=raw.get("slot_mismatch", False),
        )
    return ExtractionRecord(
        triple=Triple.from_canonical(data["triple"]),
        extractor=data["extractor"],
        url=data["url"],
        site=data["site"],
        content_type=data["content_type"],
        pattern=data.get("pattern"),
        confidence=data.get("confidence"),
        debug=debug,
    )


def save_records(records: Iterable[ExtractionRecord], path: str | Path) -> int:
    """Write records as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def load_records(path: str | Path) -> list[ExtractionRecord]:
    """Read records written by :func:`save_records`."""
    return list(iter_records(path))


def iter_records(path: str | Path) -> Iterator[ExtractionRecord]:
    """Stream records without materialising the whole file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield _record_from_dict(json.loads(line))


# ---------------------------------------------------------------------------
# Knowledge bases
# ---------------------------------------------------------------------------
def save_kb(kb: KnowledgeBase, path: str | Path) -> int:
    """Write a KB as one canonical triple per line (sorted, stable)."""
    triples = sorted(kb, key=lambda t: t.canonical())
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.canonical() + "\n")
    return len(triples)


def load_kb(path: str | Path, name: str = "kb") -> KnowledgeBase:
    """Read a KB written by :func:`save_kb`."""
    kb = KnowledgeBase(name=name)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                kb.add(Triple.from_canonical(line))
    return kb


# ---------------------------------------------------------------------------
# Fusion output
# ---------------------------------------------------------------------------
def save_probabilities(
    probabilities: dict[Triple, float], path: str | Path
) -> int:
    """Write ``{triple: probability}`` as JSONL, sorted for stable diffs."""
    items = sorted(probabilities.items(), key=lambda kv: kv[0].canonical())
    with open(path, "w", encoding="utf-8") as handle:
        for triple, probability in items:
            handle.write(
                json.dumps({"triple": triple.canonical(), "p": probability}) + "\n"
            )
    return len(items)


def load_probabilities(path: str | Path) -> dict[Triple, float]:
    """Read probabilities written by :func:`save_probabilities`."""
    probabilities: dict[Triple, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                data = json.loads(line)
                probabilities[Triple.from_canonical(data["triple"])] = float(
                    data["p"]
                )
    return probabilities
