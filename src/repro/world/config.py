"""Configuration for world and web generation.

Two dataclasses: :class:`WorldConfig` shapes the latent truth (entities,
predicates, truth multiplicity, how much of it Freebase knows) and
:class:`WebConfig` shapes the observable web (sites, pages, error rates,
copying, content-type mix).  Defaults are tuned so that the *shape*
statistics of the generated corpus track the paper's Tables 1-3 and
Figures 3-7 at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["WorldConfig", "WebConfig"]


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of the latent ground-truth world.

    Attributes
    ----------
    n_types:
        How many entity types to instantiate from the built-in catalog.
    n_entities:
        Total entity budget, distributed across types with a Zipf skew
        (location/organization/business-heavy, like the paper's top types).
    entity_zipf:
        Skew exponent for entity popularity inside a type; popular entities
        are mentioned by more pages (heavy head, long tail).
    fact_fill_rate:
        Probability that a given (entity, predicate) data item has any truth
        in the world at all.
    multi_truth_geometric:
        For non-functional predicates the number of true values is
        ``1 + Geometric(p)`` capped at the predicate's ``max_truths``;
        this is the success probability ``p`` (high p ⇒ mostly 1-2 truths,
        matching Figure 20).
    alias_rate:
        Probability an entity gets an extra alias.
    confusable_rate:
        Probability an entity *shares* an alias with another entity of the
        catalogue's confusable pool (the raw material of entity-linkage
        errors).
    freebase_item_coverage:
        Probability Freebase knows a data item (the paper's gold standard
        covered ~40% of extracted triples).
    freebase_value_recall:
        For covered non-functional items, fraction of true values Freebase
        stores (it "may only contain a subset of true triples").
    freebase_generalization_rate:
        For covered hierarchical items, probability Freebase stores an
        ancestor (e.g. country) instead of the specific truth (city).
    freebase_error_rate:
        Small probability a covered item stores an outright wrong value
        ("one false positive is due to Freebase having an obviously
        incorrect value").
    wrong_pool_size:
        Number of plausible-but-wrong candidate values maintained per data
        item; web sources draw their erroneous claims from this pool with a
        Zipf popularity, which is what gives POPACCU its advantage.
    """

    n_types: int = 10
    n_entities: int = 1200
    entity_zipf: float = 1.1
    fact_fill_rate: float = 0.75
    multi_truth_geometric: float = 0.62
    alias_rate: float = 0.35
    confusable_rate: float = 0.12
    freebase_item_coverage: float = 0.55
    freebase_value_recall: float = 0.75
    freebase_generalization_rate: float = 0.08
    freebase_error_rate: float = 0.01
    wrong_pool_size: int = 8

    def __post_init__(self) -> None:
        if self.n_types < 2:
            raise ConfigError(f"n_types must be >= 2, got {self.n_types}")
        if self.n_entities < 10:
            raise ConfigError(f"n_entities must be >= 10, got {self.n_entities}")
        if self.wrong_pool_size < 1:
            raise ConfigError(
                f"wrong_pool_size must be >= 1, got {self.wrong_pool_size}"
            )
        for name in (
            "fact_fill_rate",
            "multi_truth_geometric",
            "alias_rate",
            "confusable_rate",
            "freebase_item_coverage",
            "freebase_value_recall",
            "freebase_generalization_rate",
            "freebase_error_rate",
        ):
            _check_prob(name, getattr(self, name))


@dataclass(frozen=True)
class WebConfig:
    """Parameters of the observable web corpus.

    Attributes
    ----------
    n_sites:
        Number of web sites; page counts per site are Zipf-skewed so a few
        sites dominate (half the paper's pages contribute a single triple).
    n_pages:
        Total page budget.
    facts_per_page_mean:
        Mean number of assertions per page (geometric, long tail).
    site_error_alpha / site_error_beta:
        Beta distribution of per-site error rates (probability a given
        assertion on the site carries a wrong value).
    popular_wrong_rate:
        When a page errs, probability it picks a *popular* wrong value from
        the data item's shared wrong-value pool rather than a fresh random
        one; popular wrong values recur across independent pages.
    copy_rate:
        Probability that a page copies (a slice of) a previously generated
        page of the same site topic, errors included — the paper's copying
        relationship between sources.
    generalization_rate:
        For hierarchical predicates, probability a page asserts a true but
        more general value (state/country instead of city).
    content_mix:
        Relative propensity of each content type; pages get 1-2 content
        renderings dominated by DOM, then TXT, then ANO, then TBL
        (cf. Figure 3: DOM 80%, TXT 19%).
    max_entities_per_page:
        A page discusses up to this many entities (tables list many).
    """

    n_sites: int = 120
    n_pages: int = 1500
    facts_per_page_mean: float = 8.0
    site_error_alpha: float = 1.3
    site_error_beta: float = 7.0
    popular_wrong_rate: float = 0.65
    copy_rate: float = 0.08
    generalization_rate: float = 0.10
    content_mix: dict[str, float] = field(
        default_factory=lambda: {"DOM": 0.62, "TXT": 0.24, "ANO": 0.12, "TBL": 0.02}
    )
    max_entities_per_page: int = 6

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ConfigError(f"n_sites must be >= 1, got {self.n_sites}")
        if self.n_pages < self.n_sites:
            raise ConfigError(
                f"n_pages ({self.n_pages}) must be >= n_sites ({self.n_sites})"
            )
        if self.facts_per_page_mean <= 0:
            raise ConfigError("facts_per_page_mean must be positive")
        if self.site_error_alpha <= 0 or self.site_error_beta <= 0:
            raise ConfigError("site error Beta parameters must be positive")
        for name in ("popular_wrong_rate", "copy_rate", "generalization_rate"):
            _check_prob(name, getattr(self, name))
        if not self.content_mix:
            raise ConfigError("content_mix must not be empty")
        unknown = set(self.content_mix) - {"TXT", "DOM", "TBL", "ANO"}
        if unknown:
            raise ConfigError(f"unknown content types in content_mix: {unknown}")
        if any(w < 0 for w in self.content_mix.values()):
            raise ConfigError("content_mix weights must be non-negative")
        if sum(self.content_mix.values()) <= 0:
            raise ConfigError("content_mix weights must not all be zero")
        if self.max_entities_per_page < 1:
            raise ConfigError("max_entities_per_page must be >= 1")
