"""Surface labels and sentence templates shared by renderer and extractors.

Web pages don't print predicate ids; they print *labels* ("Born",
"Director", a table header "Year") and *phrasings* ("X was born on D in
P").  This module is the single source of those surfaces:

- the web generator uses them to render assertions;
- extractor pattern libraries are *sampled* from them (the analogue of
  patterns learned by distant supervision), possibly with wrong
  predicate mappings.

Deliberate ambiguity is encoded here, because it is what makes extraction
hard in the paper: table headers collide across types ("Year" may be a
release year, a founding year, ...), DOM ``Born`` rows merge a date and a
place, and annotation ontologies cover only part of the schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.schema import Schema, ValueKind

__all__ = [
    "TemplateSpec",
    "dom_label",
    "tbl_header",
    "ano_prop",
    "build_templates",
    "templates_for_predicate",
]

# -- DOM labels ----------------------------------------------------------
# Special-cases mirror real infobox labels; everything else prettifies the
# predicate name.  `born` is special: the renderer may merge birth_date and
# birth_place under it (see webgen).
_DOM_SPECIAL = {
    "birth_date": "Born",
    "birth_place": "Birthplace",
    "publication_year": "Published",
    "release_year": "Released",
    "first_air_year": "First aired",
    "founded_year": "Founded",
    "headquarters": "Headquarters",
    "hq_city": "Headquarters",
    "revenue_musd": "Revenue",
    "area_km2": "Area",
    "elevation_meters": "Elevation",
    "lifespan_years": "Lifespan",
    "track_count": "Tracks",
    "taxon_class": "Class",
    "game_publisher": "Publisher",
}


def _pretty(name: str) -> str:
    return name.replace("_", " ").capitalize()


def dom_label(pid: str) -> str:
    """The infobox row label a page prints for predicate ``pid``."""
    name = pid.rsplit("/", 1)[-1]
    return _DOM_SPECIAL.get(name, _pretty(name))


# -- Table headers -------------------------------------------------------
# Headers are *coarser* than DOM labels: every ``*_year`` predicate renders
# as "Year", both publishers as "Publisher", etc.  This is the ambiguity
# TBL schema mapping must resolve (well: TBL2; badly: TBL1).
_TBL_COARSE = {
    "release_year": "Year",
    "publication_year": "Year",
    "founded_year": "Year",
    "first_air_year": "Year",
    "birth_date": "Born",
    "game_publisher": "Publisher",
    "publisher": "Publisher",
    "hq_city": "City",
    "home_city": "City",
    "birth_place": "City",
    "headquarters": "City",
    "revenue_musd": "Revenue",
    "area_km2": "Area",
    "elevation_meters": "Elevation",
}


def tbl_header(pid: str) -> str:
    """The table-column header a page prints for predicate ``pid``."""
    name = pid.rsplit("/", 1)[-1]
    return _TBL_COARSE.get(name, _pretty(name))


def header_candidates(schema: Schema, header: str) -> list[str]:
    """All predicates that could hide behind a printed ``header``."""
    return sorted(
        pid for pid in schema.predicates if tbl_header(pid) == header
    )


# -- Annotation itemprops -------------------------------------------------
def ano_prop(pid: str) -> str:
    """camelCase itemprop (schema.org style) for predicate ``pid``."""
    name = pid.rsplit("/", 1)[-1]
    head, *rest = name.split("_")
    return head + "".join(word.capitalize() for word in rest)


# -- Sentence templates ----------------------------------------------------
@dataclass(frozen=True, slots=True)
class TemplateSpec:
    """One sentence phrasing.

    ``slots`` gives the predicate asserted by each object position.  A
    *merged* template has slots of different predicates (the "born on D in
    P" sentence); a *conjunction* template repeats one predicate twice.
    ``fmt`` uses ``{subj}``, ``{obj0}``, ``{obj1}``.
    """

    template_id: str
    slots: tuple[str, ...]
    fmt: str
    weight: float = 1.0

    @property
    def merged(self) -> bool:
        return len(set(self.slots)) > 1

    @property
    def n_objects(self) -> int:
        return len(self.slots)


def _single_formats(pid: str, kind: ValueKind) -> list[str]:
    label = dom_label(pid).lower()
    name = pid.rsplit("/", 1)[-1]
    if name == "birth_date":
        return ["{subj} was born on {obj0}.", "Born on {obj0}, {subj} rose to fame."]
    if name == "birth_place":
        return ["{subj} was born in {obj0}.", "{subj}, a native of {obj0}."]
    if name in ("director", "creator"):
        return ["{obj0} directed {subj}.", "{subj} was directed by {obj0}."]
    if name == "author":
        return ["{subj} was written by {obj0}.", "{obj0} is the author of {subj}."]
    if name in ("actor", "cast"):
        return ["{obj0} starred in {subj}.", "{subj} features {obj0}."]
    if name == "spouse":
        return ["{subj} married {obj0}.", "{subj}'s spouse is {obj0}."]
    if kind is ValueKind.NUMBER:
        return [
            "{subj} has a " + label + " of {obj0}.",
            "The " + label + " of {subj} is {obj0}.",
        ]
    return [
        "{subj}'s " + label + " is {obj0}.",
        "The " + label + " of {subj} is {obj0}.",
    ]


def build_templates(schema: Schema) -> dict[str, TemplateSpec]:
    """Instantiate the full template registry for ``schema``.

    Deterministic: template ids derive from predicate ids.  Includes, per
    predicate, 2 single-slot phrasings; per non-functional predicate, 1
    conjunction phrasing; and per type that has both birth_date and
    birth_place, the merged "born on D in P" phrasing.
    """
    templates: dict[str, TemplateSpec] = {}

    def register(spec: TemplateSpec) -> None:
        templates[spec.template_id] = spec

    for pid, predicate in sorted(schema.predicates.items()):
        key = pid.replace("/", ".")
        for i, fmt in enumerate(_single_formats(pid, predicate.value_kind)):
            register(
                TemplateSpec(
                    template_id=f"t.{key}.{i}",
                    slots=(pid,),
                    fmt=fmt,
                    weight=1.0 if i == 0 else 0.5,
                )
            )
        if not predicate.functional:
            label = dom_label(pid).lower()
            register(
                TemplateSpec(
                    template_id=f"t.{key}.conj",
                    slots=(pid, pid),
                    fmt="{subj}'s " + label + "s include {obj0} and {obj1}.",
                    weight=0.6,
                )
            )

    # Merged born-sentence per type carrying both predicates.
    by_type: dict[str, dict[str, str]] = {}
    for pid, predicate in schema.predicates.items():
        name = pid.rsplit("/", 1)[-1]
        if name in ("birth_date", "birth_place"):
            by_type.setdefault(predicate.type_id, {})[name] = pid
    for type_id, pair in sorted(by_type.items()):
        if {"birth_date", "birth_place"} <= set(pair):
            register(
                TemplateSpec(
                    template_id=f"t.{type_id.replace('/', '.')}.born_full",
                    slots=(pair["birth_date"], pair["birth_place"]),
                    fmt="{subj} was born on {obj0} in {obj1}.",
                    weight=0.8,
                )
            )
    return templates


def templates_for_predicate(
    templates: dict[str, TemplateSpec], pid: str
) -> list[TemplateSpec]:
    """Templates whose *first* slot asserts ``pid`` (renderer's menu)."""
    return [spec for spec in templates.values() if spec.slots[0] == pid]
