"""Built-in type and predicate catalogue.

The paper's corpus spans 1.1K Freebase types "in various domains including
geography, business, book, music, sports, people, biology" with location,
organization and business as the three largest.  The catalogue below covers
those domains with realistic predicates: a 72%/28% non-functional/functional
split (Table 3), explicit confusable pairs (author↔editor,
director↔producer — the paper's predicate-linkage errors), and hierarchical
location-valued predicates (the specific/general confusions of §4.4).

Each entry also declares generator hints: a relative entity-budget weight
(location-heavy, matching the paper's top types) and which naming and
literal-vocabulary functions realise its entities and values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kb.schema import EntityType, Predicate, Schema, ValueKind

__all__ = [
    "PredicateSpec",
    "TypeSpec",
    "CATALOG",
    "selected_types",
    "build_schema",
    "predicate_spec",
]


@dataclass(frozen=True)
class PredicateSpec:
    """Declarative predicate description, expanded into a Predicate."""

    name: str
    value_kind: ValueKind
    functional: bool = True
    max_truths: int = 1
    object_type: str | None = None  # short type name, e.g. "location"
    confusable_with: str | None = None  # sibling predicate short name
    hierarchical: bool = False
    literal_vocab: str | None = None  # NameForge method for literal values
    number_range: tuple[float, float] | None = None


@dataclass(frozen=True)
class TypeSpec:
    """Declarative type description."""

    type_id: str  # full 2-level id, e.g. "people/person"
    entity_weight: float  # relative share of the entity budget
    namer: str  # NameForge method producing canonical names
    predicates: tuple[PredicateSpec, ...]


CATALOG: tuple[TypeSpec, ...] = (
    TypeSpec(
        type_id="location/location",
        entity_weight=5.0,
        namer="place_name",
        predicates=(
            PredicateSpec(
                "population", ValueKind.NUMBER, number_range=(2_000, 30_000_000)
            ),
            PredicateSpec("area_km2", ValueKind.NUMBER, number_range=(5, 9_000_000)),
            PredicateSpec(
                "official_language",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="language",
            ),
            PredicateSpec(
                "landmark",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="landmark",
            ),
            PredicateSpec(
                "twin_city",
                ValueKind.ENTITY,
                functional=False,
                max_truths=3,
                object_type="location/location",
            ),
        ),
    ),
    TypeSpec(
        type_id="organization/organization",
        entity_weight=3.0,
        namer="org_name",
        predicates=(
            PredicateSpec(
                "founded_year", ValueKind.NUMBER, number_range=(1800, 2013)
            ),
            PredicateSpec(
                "founder",
                ValueKind.ENTITY,
                functional=False,
                max_truths=3,
                object_type="people/person",
            ),
            PredicateSpec(
                "headquarters",
                ValueKind.ENTITY,
                object_type="location/location",
                hierarchical=True,
            ),
            PredicateSpec("ceo", ValueKind.ENTITY, object_type="people/person"),
            PredicateSpec(
                "subsidiary",
                ValueKind.ENTITY,
                functional=False,
                max_truths=4,
                object_type="organization/organization",
            ),
            PredicateSpec(
                "office_location",
                ValueKind.ENTITY,
                functional=False,
                max_truths=3,
                object_type="location/location",
                hierarchical=True,
            ),
        ),
    ),
    TypeSpec(
        type_id="business/business",
        entity_weight=2.5,
        namer="org_name",
        predicates=(
            PredicateSpec(
                "industry",
                ValueKind.STRING,
                functional=False,
                max_truths=2,
                literal_vocab="industry",
            ),
            PredicateSpec(
                "revenue_musd", ValueKind.NUMBER, number_range=(1, 500_000)
            ),
            PredicateSpec(
                "parent_company",
                ValueKind.ENTITY,
                object_type="organization/organization",
            ),
            PredicateSpec(
                "hq_city",
                ValueKind.ENTITY,
                object_type="location/location",
                hierarchical=True,
            ),
            PredicateSpec(
                "market",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="industry",
            ),
        ),
    ),
    TypeSpec(
        type_id="people/person",
        entity_weight=4.0,
        namer="person_name",
        predicates=(
            PredicateSpec("birth_date", ValueKind.DATE),
            PredicateSpec(
                "birth_place",
                ValueKind.ENTITY,
                object_type="location/location",
                hierarchical=True,
            ),
            PredicateSpec(
                "nationality",
                ValueKind.ENTITY,
                functional=False,
                max_truths=2,
                object_type="location/location",
                hierarchical=True,
            ),
            PredicateSpec(
                "profession",
                ValueKind.STRING,
                functional=False,
                max_truths=4,
                literal_vocab="profession",
            ),
            PredicateSpec(
                "spouse",
                ValueKind.ENTITY,
                functional=False,
                max_truths=2,
                object_type="people/person",
            ),
            PredicateSpec(
                "children",
                ValueKind.ENTITY,
                functional=False,
                max_truths=6,
                object_type="people/person",
            ),
            PredicateSpec(
                "award",
                ValueKind.STRING,
                functional=False,
                max_truths=4,
                literal_vocab="award",
            ),
            PredicateSpec(
                "sibling",
                ValueKind.ENTITY,
                functional=False,
                max_truths=4,
                object_type="people/person",
            ),
        ),
    ),
    TypeSpec(
        type_id="film/film",
        entity_weight=2.0,
        namer="work_title",
        predicates=(
            PredicateSpec(
                "release_year", ValueKind.NUMBER, number_range=(1920, 2013)
            ),
            PredicateSpec(
                "director",
                ValueKind.ENTITY,
                object_type="people/person",
                confusable_with="producer",
            ),
            PredicateSpec(
                "producer",
                ValueKind.ENTITY,
                functional=False,
                max_truths=3,
                object_type="people/person",
                confusable_with="director",
            ),
            PredicateSpec(
                "actor",
                ValueKind.ENTITY,
                functional=False,
                max_truths=8,
                object_type="people/person",
            ),
            PredicateSpec(
                "genre",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="genre",
            ),
            PredicateSpec(
                "writer",
                ValueKind.ENTITY,
                functional=False,
                max_truths=3,
                object_type="people/person",
            ),
        ),
    ),
    TypeSpec(
        type_id="book/book",
        entity_weight=1.8,
        namer="work_title",
        predicates=(
            PredicateSpec(
                "author",
                ValueKind.ENTITY,
                functional=False,
                max_truths=2,
                object_type="people/person",
                confusable_with="editor",
            ),
            PredicateSpec(
                "editor",
                ValueKind.ENTITY,
                functional=False,
                max_truths=2,
                object_type="people/person",
                confusable_with="author",
            ),
            PredicateSpec(
                "publication_year", ValueKind.NUMBER, number_range=(1850, 2013)
            ),
            PredicateSpec(
                "publisher",
                ValueKind.ENTITY,
                object_type="organization/organization",
            ),
            PredicateSpec(
                "book_genre",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="genre",
            ),
        ),
    ),
    TypeSpec(
        type_id="music/album",
        entity_weight=1.6,
        namer="work_title",
        predicates=(
            PredicateSpec(
                "artist",
                ValueKind.ENTITY,
                functional=False,
                max_truths=2,
                object_type="people/person",
            ),
            PredicateSpec(
                "album_genre",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="genre",
            ),
            PredicateSpec(
                "release_year", ValueKind.NUMBER, number_range=(1950, 2013)
            ),
            PredicateSpec(
                "label",
                ValueKind.ENTITY,
                object_type="organization/organization",
            ),
            PredicateSpec("track_count", ValueKind.NUMBER, number_range=(4, 30)),
        ),
    ),
    TypeSpec(
        type_id="sports/team",
        entity_weight=1.2,
        namer="team_name",
        predicates=(
            PredicateSpec("sport", ValueKind.STRING, literal_vocab="sport"),
            PredicateSpec(
                "home_city",
                ValueKind.ENTITY,
                object_type="location/location",
                hierarchical=True,
            ),
            PredicateSpec("coach", ValueKind.ENTITY, object_type="people/person"),
            PredicateSpec(
                "championships", ValueKind.NUMBER, number_range=(0, 30)
            ),
            PredicateSpec(
                "player",
                ValueKind.ENTITY,
                functional=False,
                max_truths=8,
                object_type="people/person",
            ),
            PredicateSpec(
                "team_colors",
                ValueKind.STRING,
                functional=False,
                max_truths=2,
                literal_vocab="color",
            ),
        ),
    ),
    TypeSpec(
        type_id="biology/species",
        entity_weight=0.8,
        namer="species_name",
        predicates=(
            PredicateSpec(
                "taxon_class", ValueKind.STRING, literal_vocab="species_class"
            ),
            PredicateSpec(
                "lifespan_years", ValueKind.NUMBER, number_range=(1, 200)
            ),
            PredicateSpec(
                "habitat",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="habitat",
            ),
        ),
    ),
    TypeSpec(
        type_id="geography/mountain",
        entity_weight=0.8,
        namer="mountain_name",
        predicates=(
            PredicateSpec(
                "elevation_meters", ValueKind.NUMBER, number_range=(800, 8850)
            ),
            PredicateSpec(
                "located_in",
                ValueKind.ENTITY,
                object_type="location/location",
                hierarchical=True,
            ),
        ),
    ),
    TypeSpec(
        type_id="tv/series",
        entity_weight=1.0,
        namer="work_title",
        predicates=(
            PredicateSpec(
                "first_air_year", ValueKind.NUMBER, number_range=(1950, 2013)
            ),
            PredicateSpec(
                "creator",
                ValueKind.ENTITY,
                functional=False,
                max_truths=2,
                object_type="people/person",
            ),
            PredicateSpec(
                "cast",
                ValueKind.ENTITY,
                functional=False,
                max_truths=6,
                object_type="people/person",
            ),
            PredicateSpec(
                "series_genre",
                ValueKind.STRING,
                functional=False,
                max_truths=2,
                literal_vocab="genre",
            ),
        ),
    ),
    TypeSpec(
        type_id="games/game",
        entity_weight=0.7,
        namer="work_title",
        predicates=(
            PredicateSpec(
                "release_year", ValueKind.NUMBER, number_range=(1975, 2013)
            ),
            PredicateSpec(
                "developer",
                ValueKind.ENTITY,
                object_type="organization/organization",
                confusable_with="game_publisher",
            ),
            PredicateSpec(
                "game_publisher",
                ValueKind.ENTITY,
                object_type="organization/organization",
                confusable_with="developer",
            ),
            PredicateSpec(
                "platform",
                ValueKind.STRING,
                functional=False,
                max_truths=3,
                literal_vocab="platform",
            ),
        ),
    ),
)

# Types that must always be present because other types' predicates point at
# them (people, locations, organizations are object types everywhere).
_CORE_TYPES = ("location/location", "organization/organization", "people/person")


def selected_types(n_types: int) -> tuple[TypeSpec, ...]:
    """The first ``n_types`` catalogue entries, always including core types."""
    n_types = max(2, min(n_types, len(CATALOG)))
    chosen = list(CATALOG[:n_types])
    chosen_ids = {spec.type_id for spec in chosen}
    for core in _CORE_TYPES:
        if core not in chosen_ids:
            chosen.append(next(s for s in CATALOG if s.type_id == core))
            chosen_ids.add(core)
    return tuple(chosen)


def build_schema(n_types: int) -> tuple[Schema, tuple[TypeSpec, ...]]:
    """Instantiate a :class:`Schema` for the first ``n_types`` catalogue types.

    Predicates whose object type is not among the selected types are
    dropped, and dangling ``confusable_with`` references are cleared, so the
    result always validates.
    """
    specs = selected_types(n_types)
    chosen_ids = {spec.type_id for spec in specs}
    schema = Schema()
    for spec in specs:
        schema.add_type(EntityType(spec.type_id))
    for spec in specs:
        sibling_names = {p.name for p in spec.predicates}
        for pred in spec.predicates:
            object_type_id = pred.object_type
            if object_type_id is not None and object_type_id not in chosen_ids:
                continue
            confusable = None
            if pred.confusable_with in sibling_names:
                confusable = f"{spec.type_id}/{pred.confusable_with}"
            schema.add_predicate(
                Predicate(
                    pid=f"{spec.type_id}/{pred.name}",
                    type_id=spec.type_id,
                    value_kind=pred.value_kind,
                    functional=pred.functional,
                    max_truths=pred.max_truths,
                    object_type_id=object_type_id,
                    confusable_with=confusable,
                    hierarchical=pred.hierarchical,
                )
            )
    schema.validate()
    return schema, specs


def predicate_spec(specs: tuple[TypeSpec, ...], pid: str) -> PredicateSpec:
    """Look up the :class:`PredicateSpec` behind a full predicate id."""
    type_id, _, name = pid.rpartition("/")
    for spec in specs:
        if spec.type_id == type_id:
            for pred in spec.predicates:
                if pred.name == name:
                    return pred
    raise KeyError(pid)
