"""Web corpus generation: sites, pages, assertions, rendered content.

A corpus is a set of *sites* (each with a quality level, a date style, a
topical focus and rendering habits) holding *pages*.  Every page asserts a
set of facts about a few entities; with probability equal to the site's
error rate an assertion carries a wrong value drawn from the data item's
shared wrong-value pool (popular wrong values recur across sites — the
"copied false values" POPACCU is robust to); pages may also *copy*
assertions wholesale from earlier pages.  Assertions are then rendered into
TXT / DOM / TBL / ANO content for the extractors to parse.

The hidden :class:`~repro.world.facts.SourceAssertion` list on each page is
the analysis ground truth separating source errors from extraction errors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.kb.entities import Entity
from repro.kb.triples import DataItem, Triple
from repro.kb.values import EntityRef, Value
from repro.rng import named_rng, zipf_weights
from repro.world.config import WebConfig
from repro.world.content import (
    AnnotationBlock,
    ContentElement,
    DomRow,
    DomTree,
    Mention,
    Sentence,
    TextDocument,
    WebTable,
)
from repro.world.facts import SourceAssertion, World
from repro.world.labels import (
    TemplateSpec,
    ano_prop,
    build_templates,
    dom_label,
    tbl_header,
    templates_for_predicate,
)
from repro.world.literals import DATE_STYLE_EU, DATE_STYLE_ISO, DATE_STYLE_US, render_value

__all__ = [
    "SiteProfile",
    "WebPage",
    "WebCorpus",
    "generate_corpus",
    "stream_corpus",
]

_CATEGORIES = ("wiki", "news", "general")


@dataclass(frozen=True, slots=True)
class SiteProfile:
    """Per-site rendering habits and quality."""

    domain: str
    category: str
    error_rate: float
    date_style: str
    content_weights: tuple[tuple[str, float], ...]
    topic_types: tuple[str, ...]
    merged_born_rows: bool
    alias_usage: float
    subject_col: int
    grouped_numbers: bool


@dataclass(frozen=True, slots=True)
class WebPage:
    """One rendered web page.

    ``assertions`` is the hidden ground truth of what the page claims;
    ``elements`` is what extractors actually see.
    """

    url: str
    site: str
    category: str
    assertions: tuple[SourceAssertion, ...]
    elements: tuple[ContentElement, ...]


@dataclass
class WebCorpus:
    """All generated pages plus their site profiles."""

    config: WebConfig
    sites: dict[str, SiteProfile]
    pages: list[WebPage] = field(default_factory=list)

    def pages_of_site(self, domain: str) -> list[WebPage]:
        return [p for p in self.pages if p.site == domain]

    def n_assertions(self) -> int:
        return sum(len(p.assertions) for p in self.pages)

    def stats(self) -> dict[str, float]:
        """Headline corpus statistics (used by the Table 1 experiment)."""
        per_page = [len(p.assertions) for p in self.pages]
        content_counts: dict[str, int] = {}
        for page in self.pages:
            for element in page.elements:
                from repro.world.content import content_type_of

                key = content_type_of(element)
                content_counts[key] = content_counts.get(key, 0) + 1
        return {
            "sites": len(self.sites),
            "pages": len(self.pages),
            "assertions": sum(per_page),
            "mean_assertions_per_page": float(np.mean(per_page)) if per_page else 0.0,
            "median_assertions_per_page": float(np.median(per_page)) if per_page else 0.0,
            **{f"elements_{k}": v for k, v in sorted(content_counts.items())},
        }


# ---------------------------------------------------------------------------
# Site generation
# ---------------------------------------------------------------------------
def _make_sites(
    world: World, config: WebConfig, rng: np.random.Generator
) -> dict[str, SiteProfile]:
    type_ids = sorted({spec.type_id for spec in world.specs})
    type_weights = np.array(
        [spec.entity_weight for spec in sorted(world.specs, key=lambda s: s.type_id)]
    )
    type_weights = type_weights / type_weights.sum()
    n_wiki = max(1, config.n_sites // 40)
    n_news = max(1, config.n_sites // 10)
    sites: dict[str, SiteProfile] = {}
    mix_names = sorted(config.content_mix)
    mix_base = np.array([config.content_mix[k] for k in mix_names], dtype=float)
    mix_base = mix_base / mix_base.sum()
    for index in range(config.n_sites):
        if index < n_wiki:
            category = "wiki"
            domain = f"wiki{index}.example.org"
        elif index < n_wiki + n_news:
            category = "news"
            domain = f"news{index:03d}.example.org"
        else:
            category = "general"
            domain = f"site{index:04d}.example.org"
        error_rate = float(rng.beta(config.site_error_alpha, config.site_error_beta))
        if category == "wiki":
            error_rate *= 0.3
            date_style = DATE_STYLE_ISO
            topics = tuple(type_ids)
        else:
            if category == "news":
                date_style = DATE_STYLE_US
            else:
                date_style = [DATE_STYLE_ISO, DATE_STYLE_US, DATE_STYLE_EU][
                    int(rng.choice(3, p=[0.4, 0.4, 0.2]))
                ]
            n_topics = int(rng.integers(1, min(4, len(type_ids)) + 1))
            picked = rng.choice(
                len(type_ids), size=n_topics, replace=False, p=type_weights
            )
            topics = tuple(sorted(type_ids[i] for i in picked))
        # Per-site content mix: Dirichlet jitter around the corpus mix.
        jitter = rng.dirichlet(mix_base * 12 + 0.08)
        content_weights = tuple(zip(mix_names, (float(x) for x in jitter)))
        sites[domain] = SiteProfile(
            domain=domain,
            category=category,
            error_rate=error_rate,
            date_style=date_style,
            content_weights=content_weights,
            topic_types=topics,
            merged_born_rows=bool(rng.random() < 0.5),
            alias_usage=float(rng.uniform(0.0, 0.5)),
            subject_col=int(rng.random() < 0.15),
            grouped_numbers=bool(rng.random() < 0.3),
        )
    return sites


# ---------------------------------------------------------------------------
# Assertion construction
# ---------------------------------------------------------------------------
def _pick_entities(
    world: World,
    site: SiteProfile,
    rng: np.random.Generator,
    max_entities: int,
) -> list[Entity]:
    pool: list[Entity] = []
    weights: list[float] = []
    for type_id in site.topic_types:
        for entity in world.entities.of_type(type_id):
            pool.append(entity)
            weights.append(world.popularity.get(entity.entity_id, 1e-9))
    if not pool:
        return []
    probs = np.array(weights)
    probs = probs / probs.sum()
    n = int(rng.integers(1, max_entities + 1))
    n = min(n, len(pool))
    picked = rng.choice(len(pool), size=n, replace=False, p=probs)
    return [pool[i] for i in picked]


def _assert_item(
    world: World,
    site: SiteProfile,
    config: WebConfig,
    item: DataItem,
    rng: np.random.Generator,
) -> list[SourceAssertion]:
    """Produce the page's claim(s) for one data item."""
    truths = world.truth_values(item)
    if not truths:
        return []
    predicate = world.schema.predicate(item.predicate)
    assertions: list[SourceAssertion] = []
    if rng.random() < site.error_rate:
        popular = rng.random() < config.popular_wrong_rate
        wrong = world.draw_wrong_value(item, rng, popular=popular)
        if wrong is None:
            return []
        triple = Triple(item.subject, item.predicate, wrong)
        # A random wrong location may, by luck, generalise the truth.
        assertions.append(
            SourceAssertion(
                triple=triple,
                true_in_world=world.is_true(triple),
                exact=world.is_true_exact(triple),
            )
        )
        return assertions

    value: Value = truths[int(rng.integers(len(truths)))]
    exact = True
    if (
        predicate.hierarchical
        and isinstance(value, EntityRef)
        and rng.random() < config.generalization_rate
    ):
        ancestors = world.hierarchy.ancestors(value.entity_id)
        if ancestors:
            value = EntityRef(ancestors[int(rng.integers(len(ancestors)))])
            exact = False
    assertions.append(
        SourceAssertion(
            triple=Triple(item.subject, item.predicate, value),
            true_in_world=True,
            exact=exact,
        )
    )
    # Non-functional items sometimes get a second true value on the page.
    if not predicate.functional and len(truths) > 1 and rng.random() < 0.4:
        others = [t for t in truths if t != value]
        second = others[int(rng.integers(len(others)))]
        assertions.append(
            SourceAssertion(
                triple=Triple(item.subject, item.predicate, second),
                true_in_world=True,
                exact=True,
            )
        )
    return assertions


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
def _entity_surface(world: World, entity_id: str, site: SiteProfile, rng) -> str:
    entity = world.entities.get(entity_id)
    forms = entity.surface_forms()
    if len(forms) > 1 and rng.random() < site.alias_usage:
        return forms[1 + int(rng.integers(len(forms) - 1))]
    return entity.name


def _value_mention(
    world: World,
    value: Value,
    site: SiteProfile,
    rng,
    fact_ref: int | None,
) -> Mention:
    if isinstance(value, EntityRef):
        return Mention(
            surface=_entity_surface(world, value.entity_id, site, rng),
            kind="entity",
            fact_ref=fact_ref,
        )
    kind = value.canonical().split(":", 1)[0]
    return Mention(
        surface=render_value(value, site.date_style, site.grouped_numbers),
        kind=kind,
        fact_ref=fact_ref,
    )


def _subject_mention(world: World, subject: str, site: SiteProfile, rng) -> Mention:
    return Mention(
        surface=_entity_surface(world, subject, site, rng),
        kind="entity",
        fact_ref=None,
    )


def _render_dom(
    world: World,
    site: SiteProfile,
    subject: str,
    asserted: list[tuple[int, SourceAssertion]],
    rng,
) -> DomTree:
    by_pid: dict[str, list[tuple[int, SourceAssertion]]] = {}
    for index, assertion in asserted:
        by_pid.setdefault(assertion.triple.predicate, []).append((index, assertion))
    rows: list[DomRow] = []
    born_date = next(
        (p for p in by_pid if p.endswith("/birth_date")), None
    )
    born_place = next(
        (p for p in by_pid if p.endswith("/birth_place")), None
    )
    merged_pids: set[str] = set()
    if site.merged_born_rows and born_date and born_place:
        # The Wikipedia-style "Born" row: full name, date, place in one row.
        name_cell = Mention(
            surface=world.entities.get(subject).name, kind="string", fact_ref=None
        )
        date_index, date_assertion = by_pid[born_date][0]
        place_index, place_assertion = by_pid[born_place][0]
        cells = (
            name_cell,
            _value_mention(world, date_assertion.triple.obj, site, rng, date_index),
            _value_mention(world, place_assertion.triple.obj, site, rng, place_index),
        )
        cell_labels = ("name", "date", "place") if site.category == "wiki" else None
        rows.append(
            DomRow(label="Born", cells=cells, merged=True, cell_labels=cell_labels)
        )
        merged_pids = {born_date, born_place}
    for pid in sorted(by_pid):
        if pid in merged_pids:
            continue
        cells = tuple(
            _value_mention(world, assertion.triple.obj, site, rng, index)
            for index, assertion in by_pid[pid]
        )
        rows.append(DomRow(label=dom_label(pid), cells=cells))
    return DomTree(subject=_subject_mention(world, subject, site, rng), rows=tuple(rows))


def _render_text(
    world: World,
    site: SiteProfile,
    subject: str,
    asserted: list[tuple[int, SourceAssertion]],
    templates: dict[str, TemplateSpec],
    rng,
) -> TextDocument:
    subject_mention = _subject_mention(world, subject, site, rng)
    remaining = list(asserted)
    sentences: list[Sentence] = []
    # Merged born sentence when the site phrases it that way.
    born = {
        a.triple.predicate.rsplit("/", 1)[-1]: (i, a)
        for i, a in remaining
        if a.triple.predicate.rsplit("/", 1)[-1] in ("birth_date", "birth_place")
    }
    if len(born) == 2 and rng.random() < 0.5:
        date_index, date_assertion = born["birth_date"]
        place_index, place_assertion = born["birth_place"]
        type_id = date_assertion.triple.predicate.rsplit("/", 2)
        template_id = f"t.{date_assertion.triple.predicate.rsplit('/', 1)[0].replace('/', '.')}.born_full"
        spec = templates.get(template_id)
        if spec is not None:
            obj0 = _value_mention(world, date_assertion.triple.obj, site, rng, date_index)
            obj1 = _value_mention(world, place_assertion.triple.obj, site, rng, place_index)
            sentences.append(
                Sentence(
                    template_id=spec.template_id,
                    subject=subject_mention,
                    objects=(obj0, obj1),
                    text=spec.fmt.format(
                        subj=subject_mention.surface, obj0=obj0.surface, obj1=obj1.surface
                    ),
                )
            )
            remaining = [
                (i, a) for i, a in remaining if i not in (date_index, place_index)
            ]
    # Group remaining assertions by predicate for conjunctions.
    by_pid: dict[str, list[tuple[int, SourceAssertion]]] = {}
    for index, assertion in remaining:
        by_pid.setdefault(assertion.triple.predicate, []).append((index, assertion))
    for pid in sorted(by_pid):
        group = by_pid[pid]
        menu = templates_for_predicate(templates, pid)
        if not menu:
            continue
        singles = [t for t in menu if t.n_objects == 1 and not t.merged]
        conj = next((t for t in menu if t.n_objects == 2 and not t.merged), None)
        while group:
            if conj is not None and len(group) >= 2 and rng.random() < 0.5:
                (i0, a0), (i1, a1) = group[0], group[1]
                group = group[2:]
                obj0 = _value_mention(world, a0.triple.obj, site, rng, i0)
                obj1 = _value_mention(world, a1.triple.obj, site, rng, i1)
                sentences.append(
                    Sentence(
                        template_id=conj.template_id,
                        subject=subject_mention,
                        objects=(obj0, obj1),
                        text=conj.fmt.format(
                            subj=subject_mention.surface,
                            obj0=obj0.surface,
                            obj1=obj1.surface,
                        ),
                    )
                )
                continue
            index, assertion = group[0]
            group = group[1:]
            weights = np.array([t.weight for t in singles])
            spec = singles[int(rng.choice(len(singles), p=weights / weights.sum()))]
            obj0 = _value_mention(world, assertion.triple.obj, site, rng, index)
            sentences.append(
                Sentence(
                    template_id=spec.template_id,
                    subject=subject_mention,
                    objects=(obj0,),
                    text=spec.fmt.format(subj=subject_mention.surface, obj0=obj0.surface),
                )
            )
    return TextDocument(sentences=tuple(sentences))


def _render_table(
    world: World,
    site: SiteProfile,
    type_id: str,
    rows_data: list[tuple[str, list[tuple[int, SourceAssertion]]]],
    rng,
) -> WebTable | None:
    """Render several same-type subjects as one relational table."""
    pid_counts: dict[str, int] = {}
    for _, asserted in rows_data:
        for _, assertion in asserted:
            pid_counts[assertion.triple.predicate] = (
                pid_counts.get(assertion.triple.predicate, 0) + 1
            )
    if not pid_counts:
        return None
    columns = [
        pid
        for pid, _ in sorted(pid_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:4]
    ]
    headers = ["Name"] + [tbl_header(pid) for pid in columns]
    subject_col = 0
    if site.subject_col == 1:
        headers = ["#"] + headers
        subject_col = 1
    table_rows: list[tuple[Mention, ...]] = []
    for row_number, (subject, asserted) in enumerate(rows_data, start=1):
        claims = {a.triple.predicate: (i, a) for i, a in asserted}
        cells: list[Mention] = []
        if site.subject_col == 1:
            cells.append(Mention(surface=str(row_number), kind="number", fact_ref=None))
        cells.append(_subject_mention(world, subject, site, rng))
        for pid in columns:
            if pid in claims:
                index, assertion = claims[pid]
                cells.append(
                    _value_mention(world, assertion.triple.obj, site, rng, index)
                )
            else:
                cells.append(Mention(surface="", kind="empty", fact_ref=None))
        table_rows.append(tuple(cells))
    caption = f"{type_id.split('/')[-1].capitalize()} overview"
    return WebTable(
        caption=caption,
        headers=tuple(headers),
        rows=tuple(table_rows),
        subject_col=subject_col,
    )


def _render_ano(
    world: World,
    site: SiteProfile,
    subject: str,
    asserted: list[tuple[int, SourceAssertion]],
    rng,
) -> AnnotationBlock:
    props = tuple(
        (
            ano_prop(assertion.triple.predicate),
            _value_mention(world, assertion.triple.obj, site, rng, index),
        )
        for index, assertion in asserted
    )
    return AnnotationBlock(
        subject=_subject_mention(world, subject, site, rng), props=props
    )


# ---------------------------------------------------------------------------
# Corpus assembly
# ---------------------------------------------------------------------------
def generate_corpus(world: World, config: WebConfig, seed: int) -> WebCorpus:
    """Generate a deterministic :class:`WebCorpus` over ``world``."""
    rng = named_rng(seed, "webgen")
    sites = _make_sites(world, config, rng)
    corpus = WebCorpus(config=config, sites=sites)
    # The copy pool is corpus.pages itself: every generated page both
    # lands in the corpus and becomes a copy source for later pages.
    for _ in _corpus_pages(world, config, rng, sites, corpus.pages):
        pass
    return corpus


def stream_corpus(
    world: World,
    config: WebConfig,
    seed: int,
    chunk_pages: int = 2048,
    copy_window: int | None = 1024,
):
    """Yield the corpus as page chunks without materialising it.

    The out-of-core generator behind the ``web`` scale tier: pages are
    produced by the same per-page dataflow as :func:`generate_corpus`
    but handed out ``chunk_pages`` at a time, and the copy-source pool
    is a bounded window of the last ``copy_window`` generated pages
    instead of the whole corpus — memory stays O(window + chunk) no
    matter how many pages the config asks for.  With
    ``copy_window=None`` the pool is unbounded and the concatenated
    chunks equal ``generate_corpus(...).pages`` exactly (the streaming
    parity anchor); any finite window defines its own corpus — the
    ``web`` tier's semantics, deterministic in ``(config, seed,
    window)``.
    """
    if chunk_pages < 1:
        raise ValueError(f"chunk_pages must be >= 1, got {chunk_pages}")
    rng = named_rng(seed, "webgen")
    sites = _make_sites(world, config, rng)
    pool: object = [] if copy_window is None else deque(maxlen=copy_window)
    chunk: list[WebPage] = []
    for page in _corpus_pages(world, config, rng, sites, pool):
        chunk.append(page)
        if len(chunk) >= chunk_pages:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _corpus_pages(
    world: World,
    config: WebConfig,
    rng: np.random.Generator,
    sites: dict[str, SiteProfile],
    pool,
) -> "Iterator[WebPage]":
    """The shared per-page dataflow of corpus generation.

    Yields each kept page after appending it to ``pool`` — the copy
    branch samples its source from ``pool``, so the caller chooses the
    copy semantics: the growing corpus list (:func:`generate_corpus`)
    or a bounded recent-page window (:func:`stream_corpus`).
    """
    templates = build_templates(world.schema)

    domains = sorted(sites)
    site_weights = zipf_weights(len(domains), 1.05)
    order = rng.permutation(len(domains))
    weight_of = {domains[int(j)]: float(site_weights[k]) for k, j in enumerate(order)}
    probs = np.array([weight_of[d] for d in domains])
    probs = probs / probs.sum()
    page_sites = rng.choice(len(domains), size=config.n_pages, p=probs)
    page_counter: dict[str, int] = {}

    for page_index in range(config.n_pages):
        domain = domains[int(page_sites[page_index])]
        site = sites[domain]
        page_counter[domain] = page_counter.get(domain, 0) + 1
        url = f"http://{domain}/page{page_counter[domain]:05d}"

        assertions: list[SourceAssertion] = []
        # Copying: clone a slice of an earlier page (errors included).
        if pool and rng.random() < config.copy_rate:
            source = pool[int(rng.integers(len(pool)))]
            if source.assertions:
                take = int(rng.integers(1, len(source.assertions) + 1))
                picked = rng.choice(
                    len(source.assertions), size=take, replace=False
                )
                for i in sorted(int(x) for x in picked):
                    original = source.assertions[i]
                    assertions.append(
                        SourceAssertion(
                            triple=original.triple,
                            true_in_world=original.true_in_world,
                            exact=original.exact,
                            copied_from=source.url,
                        )
                    )

        entities = _pick_entities(world, site, rng, config.max_entities_per_page)
        budget = 1 + int(rng.geometric(1.0 / config.facts_per_page_mean))
        fresh_budget = max(0, budget - len(assertions))
        subject_items: list[DataItem] = []
        for entity in entities:
            for predicate in world.schema.predicates_of_type(entity.primary_type):
                item = DataItem(entity.entity_id, predicate.pid)
                if world.truth_values(item):
                    subject_items.append(item)
        if subject_items:
            picked_items = rng.permutation(len(subject_items))[:fresh_budget]
            for item_index in sorted(int(x) for x in picked_items):
                assertions.extend(
                    _assert_item(world, site, config, subject_items[item_index], rng)
                )

        if not assertions:
            continue

        # Partition assertions by subject; each subject renders into one
        # content type chosen from the site's mix.
        by_subject: dict[str, list[tuple[int, SourceAssertion]]] = {}
        for index, assertion in enumerate(assertions):
            by_subject.setdefault(assertion.triple.subject, []).append(
                (index, assertion)
            )
        mix_names = [k for k, _ in site.content_weights]
        mix_probs = np.array([w for _, w in site.content_weights])
        mix_probs = mix_probs / mix_probs.sum()
        elements: list[ContentElement] = []
        table_groups: dict[str, list[tuple[str, list[tuple[int, SourceAssertion]]]]] = {}
        for subject in sorted(by_subject):
            asserted = by_subject[subject]
            choice = mix_names[int(rng.choice(len(mix_names), p=mix_probs))]
            if choice == "TBL":
                type_id = world.entities.get(subject).primary_type
                table_groups.setdefault(type_id, []).append((subject, asserted))
            elif choice == "DOM":
                elements.append(_render_dom(world, site, subject, asserted, rng))
            elif choice == "TXT":
                elements.append(
                    _render_text(world, site, subject, asserted, templates, rng)
                )
            else:
                elements.append(_render_ano(world, site, subject, asserted, rng))
        for type_id in sorted(table_groups):
            table = _render_table(world, site, type_id, table_groups[type_id], rng)
            if table is not None:
                elements.append(table)

        page = WebPage(
            url=url,
            site=domain,
            category=site.category,
            assertions=tuple(assertions),
            elements=tuple(elements),
        )
        pool.append(page)
        yield page
