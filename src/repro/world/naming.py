"""Deterministic surface-form generation.

Entities need names that (a) look like the kind of thing they are, (b) are
deterministic given the seed, and (c) can deliberately *collide* — shared
aliases are the raw material of entity-linkage errors ("wrongly reconciling
the Broadway show Les Miserables to the novel of the same name").

Names are built from syllable pools; titles from word pools.  The generator
never repeats a canonical name within a run, but aliases may be shared
across entities on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["NameForge"]

_ONSETS = [
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl",
    "l", "m", "n", "p", "pr", "r", "s", "sh", "st", "t", "th", "tr", "v", "w",
]
_VOWELS = ["a", "e", "i", "o", "u", "ia", "ei", "ou", "ae"]
_CODAS = ["", "n", "r", "s", "l", "m", "th", "nd", "rk", "x"]

_TITLE_WORDS = [
    "Silent", "Golden", "Last", "Hidden", "Broken", "Crimson", "Eternal",
    "Falling", "Distant", "Burning", "Frozen", "Secret", "Lost", "Rising",
    "Shadow", "Winter", "Summer", "River", "Mountain", "Ocean", "Empire",
    "Garden", "Mirror", "Storm", "Harvest", "Journey", "Night", "Dawn",
]
_TITLE_NOUNS = [
    "Road", "City", "Dream", "Song", "Heart", "Crown", "Star", "House",
    "Letter", "Voyage", "Promise", "Echo", "Horizon", "Legacy", "Whisper",
    "Kingdom", "Island", "Harbor", "Flame", "Season",
]
_ORG_SUFFIXES = [
    "Industries", "Group", "Labs", "Systems", "Holdings", "Partners",
    "Media", "Works", "Corporation", "Collective", "Institute", "Foundry",
]
_PLACE_SUFFIXES = ["ville", "burg", "ton", " City", " Falls", " Springs", "ford", "haven"]
_PROFESSIONS = [
    "actor", "producer", "director", "novelist", "physicist", "composer",
    "journalist", "architect", "economist", "chemist", "historian",
    "illustrator", "screenwriter", "violinist", "biologist", "sculptor",
]
_GENRES = [
    "drama", "comedy", "thriller", "documentary", "romance", "mystery",
    "science fiction", "biography", "adventure", "historical", "noir", "satire",
]
_INDUSTRIES = [
    "aerospace", "retail", "logistics", "energy", "publishing", "insurance",
    "telecom", "agriculture", "robotics", "pharmaceuticals",
]
_SPORTS = ["football", "baseball", "basketball", "hockey", "cricket", "rugby"]
_LANG_SUFFIX = ["ish", "ese", "ian", "ic", "i"]
_SPECIES_CLASSES = ["mammal", "bird", "reptile", "amphibian", "fish", "insect"]
_COLORS = ["crimson", "navy", "gold", "emerald", "silver", "black", "white", "teal"]
_PLATFORMS = ["arcade", "console", "handheld", "desktop", "mobile", "cloud"]
_HABITATS = ["rainforest", "savanna", "tundra", "wetland", "coral reef", "desert",
             "taiga", "grassland"]


@dataclass
class NameForge:
    """Seeded name factory; guarantees canonical-name uniqueness."""

    rng: np.random.Generator
    _used: set[str] = field(default_factory=set)

    def _syllable(self) -> str:
        onset = _ONSETS[self.rng.integers(len(_ONSETS))]
        vowel = _VOWELS[self.rng.integers(len(_VOWELS))]
        coda = _CODAS[self.rng.integers(len(_CODAS))]
        return onset + vowel + coda

    def _word(self, n_syllables: int) -> str:
        word = "".join(self._syllable() for _ in range(n_syllables))
        return word.capitalize()

    def _unique(self, make) -> str:
        """Draw from ``make`` until the name is globally fresh."""
        for attempt in range(64):
            name = make()
            if name not in self._used:
                self._used.add(name)
                return name
        # Extremely unlikely at our scales; disambiguate explicitly.
        name = f"{make()} {len(self._used)}"
        self._used.add(name)
        return name

    # -- canonical names -------------------------------------------------
    def person_name(self) -> str:
        return self._unique(
            lambda: f"{self._word(2)} {self._word(int(self.rng.integers(2, 4)))}"
        )

    def place_name(self) -> str:
        def make() -> str:
            base = self._word(int(self.rng.integers(2, 4)))
            suffix = _PLACE_SUFFIXES[self.rng.integers(len(_PLACE_SUFFIXES))]
            return base + suffix

        return self._unique(make)

    def org_name(self) -> str:
        def make() -> str:
            base = self._word(int(self.rng.integers(2, 4)))
            suffix = _ORG_SUFFIXES[self.rng.integers(len(_ORG_SUFFIXES))]
            return f"{base} {suffix}"

        return self._unique(make)

    def work_title(self) -> str:
        def make() -> str:
            adj = _TITLE_WORDS[self.rng.integers(len(_TITLE_WORDS))]
            noun = _TITLE_NOUNS[self.rng.integers(len(_TITLE_NOUNS))]
            if self.rng.random() < 0.3:
                return f"The {adj} {noun}"
            return f"{adj} {noun}"

        return self._unique(make)

    def species_name(self) -> str:
        return self._unique(lambda: f"{self._word(2)} {self._word(2).lower()}")

    def mountain_name(self) -> str:
        return self._unique(lambda: f"Mount {self._word(int(self.rng.integers(2, 4)))}")

    def team_name(self) -> str:
        def make() -> str:
            place = self._word(2)
            mascot = _TITLE_NOUNS[self.rng.integers(len(_TITLE_NOUNS))]
            return f"{place} {mascot}s"

        return self._unique(make)

    # -- aliases ----------------------------------------------------------
    def alias_for(self, name: str) -> str:
        """A plausible alternative surface form for ``name``."""
        parts = name.split()
        roll = self.rng.random()
        if len(parts) >= 2 and roll < 0.4:
            # Initial + last word: "T. Cruise"
            return f"{parts[0][0]}. {parts[-1]}"
        if roll < 0.7:
            return parts[-1]
        return f"The {parts[-1]}" if not name.startswith("The ") else parts[-1]

    # -- literal vocabularies ---------------------------------------------
    def profession(self) -> str:
        return _PROFESSIONS[self.rng.integers(len(_PROFESSIONS))]

    def genre(self) -> str:
        return _GENRES[self.rng.integers(len(_GENRES))]

    def industry(self) -> str:
        return _INDUSTRIES[self.rng.integers(len(_INDUSTRIES))]

    def sport(self) -> str:
        return _SPORTS[self.rng.integers(len(_SPORTS))]

    def species_class(self) -> str:
        return _SPECIES_CLASSES[self.rng.integers(len(_SPECIES_CLASSES))]

    def color(self) -> str:
        return _COLORS[self.rng.integers(len(_COLORS))]

    def platform(self) -> str:
        return _PLATFORMS[self.rng.integers(len(_PLATFORMS))]

    def habitat(self) -> str:
        return _HABITATS[self.rng.integers(len(_HABITATS))]

    def award(self) -> str:
        return f"{self._word(2)} Prize"

    def landmark(self) -> str:
        noun = _TITLE_NOUNS[self.rng.integers(len(_TITLE_NOUNS))]
        return f"The {self._word(2)} {noun}"

    def language(self) -> str:
        base = self._word(2)
        return base + _LANG_SUFFIX[self.rng.integers(len(_LANG_SUFFIX))]

    def date(self, year_lo: int = 1900, year_hi: int = 2010) -> str:
        year = int(self.rng.integers(year_lo, year_hi + 1))
        month = int(self.rng.integers(1, 13))
        day = int(self.rng.integers(1, 29))
        return f"{year:04d}-{month:02d}-{day:02d}"
