"""Ground-truth world generation.

Builds the latent world the web will (imperfectly) describe:

- entities per type with a Zipf popularity skew (a few famous entities draw
  most page mentions — the paper's heavy head / long tail);
- a containment hierarchy over locations (continent > country > region >
  city) for the specific/general phenomena of §4.4;
- aliases, including deliberately *shared* aliases (confusable clusters),
  the raw material of entity-linkage errors;
- truth sets per data item: single truths for functional predicates,
  ``1 + Geometric`` truths for non-functional ones (mostly 1-2, per
  Figure 20).
"""

from __future__ import annotations

import numpy as np

from repro.kb.entities import Entity, EntityRegistry
from repro.kb.hierarchy import ValueHierarchy
from repro.kb.schema import Predicate, ValueKind
from repro.kb.triples import DataItem
from repro.kb.values import DateValue, EntityRef, NumberValue, StringValue, Value
from repro.rng import named_rng, zipf_weights
from repro.world.catalog import TypeSpec, build_schema, predicate_spec
from repro.world.config import WorldConfig
from repro.world.facts import World
from repro.world.naming import NameForge

__all__ = ["generate_world"]

_LOCATION_TYPE = "location/location"
# Share of location entities at each hierarchy level, cities last.
_LOCATION_LEVELS = (("continent", 0.03), ("country", 0.12), ("region", 0.25), ("city", 0.60))


def _allocate_entities(
    specs: tuple[TypeSpec, ...], n_entities: int
) -> dict[str, int]:
    """Split the entity budget across types proportionally to their weight."""
    weights = np.array([spec.entity_weight for spec in specs], dtype=float)
    weights = weights / weights.sum()
    counts = np.maximum(5, np.round(weights * n_entities).astype(int))
    return {spec.type_id: int(c) for spec, c in zip(specs, counts)}


def _generate_locations(
    count: int,
    forge: NameForge,
    registry: EntityRegistry,
    hierarchy: ValueHierarchy,
    rng: np.random.Generator,
    next_mid,
) -> list[str]:
    """Create location entities level by level, wiring containment edges."""
    level_counts: list[int] = []
    remaining = count
    for _, share in _LOCATION_LEVELS[:-1]:
        n = max(1, int(round(count * share)))
        level_counts.append(n)
        remaining -= n
    level_counts.append(max(1, remaining))

    levels: list[list[str]] = []
    for (level_name, _), n in zip(_LOCATION_LEVELS, level_counts):
        ids: list[str] = []
        for _ in range(n):
            entity_id = next_mid()
            name = forge.place_name()
            registry.add(
                Entity(
                    entity_id=entity_id,
                    type_ids=(_LOCATION_TYPE,),
                    name=name,
                )
            )
            if levels:  # attach to a random parent one level up
                parents = levels[-1]
                parent = parents[int(rng.integers(len(parents)))]
                hierarchy.add_edge(entity_id, parent)
            ids.append(entity_id)
        levels.append(ids)
    return [eid for level in levels for eid in level]


def _leaf_locations(registry: EntityRegistry, hierarchy: ValueHierarchy) -> list[str]:
    """Location entities with no children — the 'city' level."""
    return [
        entity.entity_id
        for entity in registry.of_type(_LOCATION_TYPE)
        if not hierarchy.children(entity.entity_id)
    ]


def _literal_value(
    spec, predicate: Predicate, forge: NameForge, rng: np.random.Generator
) -> Value:
    """Draw one literal truth for a non-entity-valued predicate."""
    if predicate.value_kind is ValueKind.DATE:
        return DateValue(forge.date())
    if predicate.value_kind is ValueKind.NUMBER:
        lo, hi = spec.number_range if spec.number_range else (1.0, 1000.0)
        if hi / max(lo, 1.0) > 1000:
            # Wide ranges (population) are sampled log-uniformly.
            value = float(np.exp(rng.uniform(np.log(max(lo, 1.0)), np.log(hi))))
            return NumberValue(float(round(value)))
        return NumberValue(float(int(rng.integers(int(lo), int(hi) + 1))))
    vocab = spec.literal_vocab or "genre"
    return StringValue(getattr(forge, vocab)())


def generate_world(config: WorldConfig, seed: int) -> World:
    """Generate a deterministic :class:`World` from ``config`` and ``seed``."""
    rng = named_rng(seed, "worldgen")
    forge = NameForge(rng=named_rng(seed, "worldgen.names"))
    schema, specs = build_schema(config.n_types)
    registry = EntityRegistry()
    hierarchy = ValueHierarchy()

    mid_counter = 0

    def next_mid() -> str:
        nonlocal mid_counter
        mid_counter += 1
        return f"/m/{mid_counter:06x}"

    counts = _allocate_entities(specs, config.n_entities)

    # Entities (locations first: other types' truths point at them).
    namer_by_type = {spec.type_id: spec.namer for spec in specs}
    ordered_types = sorted(
        counts, key=lambda t: 0 if t == _LOCATION_TYPE else 1
    )
    for type_id in ordered_types:
        n = counts[type_id]
        if type_id == _LOCATION_TYPE:
            _generate_locations(n, forge, registry, hierarchy, rng, next_mid)
            continue
        namer = getattr(forge, namer_by_type[type_id])
        for _ in range(n):
            registry.add(
                Entity(entity_id=next_mid(), type_ids=(type_id,), name=namer())
            )

    # Aliases and confusable clusters.  We mutate by re-adding is not
    # possible (registry is append-only), so aliases are decided before a
    # second pass builds the final registry.
    base_entities = list(registry)
    final_registry = EntityRegistry()
    alias_plan: dict[str, list[str]] = {e.entity_id: [] for e in base_entities}
    for entity in base_entities:
        if rng.random() < config.alias_rate:
            alias_plan[entity.entity_id].append(forge.alias_for(entity.name))
    for entity in base_entities:
        if rng.random() < config.confusable_rate:
            other = base_entities[int(rng.integers(len(base_entities)))]
            if other.entity_id != entity.entity_id:
                # Share the other entity's canonical name as our alias: both
                # now answer to the same surface form.
                alias_plan[entity.entity_id].append(other.name)
    for entity in base_entities:
        aliases = tuple(dict.fromkeys(alias_plan[entity.entity_id]))
        final_registry.add(
            Entity(
                entity_id=entity.entity_id,
                type_ids=entity.type_ids,
                name=entity.name,
                aliases=aliases,
            )
        )
    registry = final_registry

    # Popularity: Zipf within each type, scaled by the type's weight.
    popularity: dict[str, float] = {}
    weight_by_type = {spec.type_id: spec.entity_weight for spec in specs}
    for type_id in counts:
        members = registry.of_type(type_id)
        if not members:
            continue
        ranks = zipf_weights(len(members), config.entity_zipf)
        order = rng.permutation(len(members))
        for position, member_index in enumerate(order):
            entity = members[int(member_index)]
            popularity[entity.entity_id] = float(
                ranks[position] * weight_by_type[type_id]
            )

    # Truth sets.
    leaf_locs = _leaf_locations(registry, hierarchy)
    truths: dict[DataItem, tuple[Value, ...]] = {}
    spec_by_type = {spec.type_id: spec for spec in specs}
    for entity in registry:
        type_spec = spec_by_type[entity.primary_type]
        for predicate in schema.predicates_of_type(entity.primary_type):
            if rng.random() >= config.fact_fill_rate:
                continue
            pspec = predicate_spec(specs, predicate.pid)
            if predicate.functional:
                n_truths = 1
            else:
                n_truths = min(
                    1 + int(rng.geometric(config.multi_truth_geometric)) - 1,
                    predicate.max_truths,
                )
                n_truths = max(1, n_truths)
            values: list[Value] = []
            seen: set[Value] = set()
            attempts = 0
            while len(values) < n_truths and attempts < 30:
                attempts += 1
                if predicate.value_kind is ValueKind.ENTITY:
                    if predicate.hierarchical:
                        if not leaf_locs:
                            break
                        target = leaf_locs[int(rng.integers(len(leaf_locs)))]
                    else:
                        candidates = registry.of_type(predicate.object_type_id)
                        if not candidates:
                            break
                        pick = candidates[int(rng.integers(len(candidates)))]
                        target = pick.entity_id
                        if target == entity.entity_id:
                            continue
                    value: Value = EntityRef(target)
                else:
                    value = _literal_value(pspec, predicate, forge, rng)
                if value in seen:
                    continue
                seen.add(value)
                values.append(value)
            if values:
                item = DataItem(entity.entity_id, predicate.pid)
                truths[item] = tuple(values)

    return World(
        config=config,
        master_seed=seed,
        schema=schema,
        specs=specs,
        entities=registry,
        hierarchy=hierarchy,
        truths=truths,
        popularity=popularity,
    )
