"""Renderable web-content models.

A web page asserts facts; this module defines the four surface shapes those
assertions take, mirroring §3.1.2 of the paper:

- :class:`TextDocument` — sentences ("Tom Cruise is an American film actor
  and producer"), where triples hide in templated phrasing;
- :class:`DomTree` — infobox-style label/value rows, optionally *merged*
  (one ``Born`` row holding a name, a date and a place), the shape that
  trips naive DOM extractors;
- :class:`WebTable` — relational rows × attribute columns;
- :class:`AnnotationBlock` — schema.org-ish ``itemprop`` markup.

Every value slot is a :class:`Mention`: a surface string plus a kind tag.
Extractors work from surfaces only.  The ``fact_ref`` field is a **debug
channel** — it indexes the page's hidden assertion list so the evaluation
layer can classify extraction errors (triple identification vs. entity
linkage vs. predicate linkage); extractors must never read it, and the test
suite enforces that the fusion layer cannot see it at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Mention",
    "Sentence",
    "TextDocument",
    "DomRow",
    "DomTree",
    "WebTable",
    "AnnotationBlock",
    "ContentElement",
]


@dataclass(frozen=True, slots=True)
class Mention:
    """A surface occurrence of an entity or literal.

    ``kind`` is one of ``entity|string|number|date`` and reflects how the
    renderer formatted the slot (which an extractor can also sniff from the
    surface); ``fact_ref`` is debug-only (see module docstring).
    """

    surface: str
    kind: str
    fact_ref: int | None = None


@dataclass(frozen=True, slots=True)
class Sentence:
    """One templated sentence expressing 1+ facts about a subject.

    ``template_id`` names the phrasing (e.g. ``person_birth``); pattern
    libraries key on it, the way a distant-supervision extractor keys on a
    learned lexical pattern.  ``objects`` holds one mention per asserted
    fact; conjunction templates carry several ("... film actor and
    producer" asserts two professions).
    """

    template_id: str
    subject: Mention
    objects: tuple[Mention, ...]
    text: str


@dataclass(frozen=True, slots=True)
class TextDocument:
    """A run of prose: the TXT content type."""

    sentences: tuple[Sentence, ...]

    content_type = "TXT"


@dataclass(frozen=True, slots=True)
class DomRow:
    """One ``<tr>``-ish row of an infobox.

    ``label`` is the visible attribute name ("Born", "Director"...).
    ``cells`` are the value mentions.  ``merged`` marks rows that pack
    values of *different* predicates into one label (the paper's Wikipedia
    ``Born`` example holds the full name, the date, and the birthplace) —
    extractors that flatten merged rows commit triple-identification errors.
    ``cell_labels`` optionally gives a sub-label per cell (present only when
    the site renders nested ``<span>`` scaffolding that good extractors use).
    """

    label: str
    cells: tuple[Mention, ...]
    merged: bool = False
    cell_labels: tuple[str, ...] | None = None


@dataclass(frozen=True, slots=True)
class DomTree:
    """An infobox-like DOM fragment about one subject: the DOM content type."""

    subject: Mention
    rows: tuple[DomRow, ...]

    content_type = "DOM"


@dataclass(frozen=True, slots=True)
class WebTable:
    """A relational web table: the TBL content type.

    Row ``r``'s subject is ``rows[r][subject_col]``; column ``c`` holds the
    attribute named by ``headers[c]``.  Header strings are surface words
    and may be ambiguous ("Year") — resolving them to predicates is the
    schema-mapping task of the TBL extractors.
    """

    caption: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Mention, ...], ...]
    subject_col: int = 0


@dataclass(frozen=True, slots=True)
class AnnotationBlock:
    """Webmaster-authored markup (schema.org style): the ANO content type."""

    subject: Mention
    props: tuple[tuple[str, Mention], ...]  # (itemprop, value)

    content_type = "ANO"


ContentElement = Union[TextDocument, DomTree, WebTable, AnnotationBlock]


def content_type_of(element: ContentElement) -> str:
    """The paper's content-type tag (TXT/DOM/TBL/ANO) for ``element``."""
    if isinstance(element, TextDocument):
        return "TXT"
    if isinstance(element, DomTree):
        return "DOM"
    if isinstance(element, WebTable):
        return "TBL"
    if isinstance(element, AnnotationBlock):
        return "ANO"
    raise TypeError(f"not a content element: {element!r}")
