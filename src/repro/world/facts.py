"""The latent world: truth sets, wrong-value pools, Freebase snapshot.

:class:`World` is the ground truth fusion tries to recover.  It owns the
schema, the entity registry, the location containment hierarchy, and the
truth set of every data item.  Two derived artifacts matter downstream:

- **wrong-value pools** — per data item, a small Zipf-weighted pool of
  plausible wrong values.  Web sources draw erroneous claims from this
  shared pool, so the *same* wrong value recurs on independent pages
  (exactly the "popular false values" POPACCU models);
- **the Freebase snapshot** — a deliberately imperfect subset of the truth
  (missing values, generalised locations, a few outright errors) used to
  build the LCWA gold standard, reproducing the gold standard's documented
  failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kb.entities import EntityRegistry
from repro.kb.hierarchy import ValueHierarchy
from repro.kb.schema import Schema, ValueKind
from repro.kb.store import KnowledgeBase
from repro.kb.triples import DataItem, Triple
from repro.kb.values import (
    DateValue,
    EntityRef,
    NumberValue,
    StringValue,
    Value,
)
from repro.rng import split_seed, zipf_weights
from repro.world.catalog import TypeSpec
from repro.world.config import WorldConfig

__all__ = ["World", "SourceAssertion", "build_freebase_snapshot"]


@dataclass(frozen=True, slots=True)
class SourceAssertion:
    """What one web page claims about one data item.

    ``true_in_world`` is True when the claimed triple is exactly true or a
    hierarchical generalisation of a truth; ``exact`` distinguishes the two.
    ``copied_from`` records the URL this assertion was copied from, if any.
    These fields are ground truth for *analysis*; extraction and fusion
    never see them.
    """

    triple: Triple
    true_in_world: bool
    exact: bool
    copied_from: str | None = None

    @property
    def source_error(self) -> bool:
        return not self.true_in_world


@dataclass
class World:
    """Ground-truth world produced by :func:`repro.world.worldgen.generate_world`."""

    config: WorldConfig
    master_seed: int
    schema: Schema
    specs: tuple[TypeSpec, ...]
    entities: EntityRegistry
    hierarchy: ValueHierarchy
    truths: dict[DataItem, tuple[Value, ...]]
    popularity: dict[str, float]
    _wrong_pools: dict[DataItem, tuple[tuple[Value, ...], np.ndarray]] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    # Truth queries
    # ------------------------------------------------------------------
    def truth_values(self, item: DataItem) -> tuple[Value, ...]:
        return self.truths.get(item, ())

    def truth_count(self, item: DataItem) -> int:
        return len(self.truths.get(item, ()))

    def is_true_exact(self, triple: Triple) -> bool:
        return triple.obj in self.truths.get(triple.data_item, ())

    def is_generalization(self, triple: Triple) -> bool:
        """True if ``triple`` asserts a strict ancestor of an exact truth.

        Only meaningful for hierarchical entity-valued predicates:
        (Steve Jobs, birth place, USA) generalises the truth "San
        Francisco" and is still a true statement about the world.
        """
        predicate = self.schema.predicates.get(triple.predicate)
        if predicate is None or not predicate.hierarchical:
            return False
        if not isinstance(triple.obj, EntityRef):
            return False
        for truth in self.truths.get(triple.data_item, ()):
            if isinstance(truth, EntityRef) and self.hierarchy.is_ancestor(
                triple.obj.entity_id, truth.entity_id
            ):
                return True
        return False

    def is_true(self, triple: Triple) -> bool:
        """Exactly true, or a true generalisation."""
        return self.is_true_exact(triple) or self.is_generalization(triple)

    def data_items(self) -> list[DataItem]:
        return list(self.truths)

    def true_triples(self):
        """Iterate every exactly-true triple in the world."""
        for item, values in self.truths.items():
            for value in values:
                yield Triple(item.subject, item.predicate, value)

    # ------------------------------------------------------------------
    # Wrong-value pools
    # ------------------------------------------------------------------
    def wrong_pool(self, item: DataItem) -> tuple[tuple[Value, ...], np.ndarray]:
        """The shared pool of plausible wrong values for ``item``.

        Returns ``(values, weights)`` where weights are Zipf-normalised;
        deterministic per item (seeded by the item's canonical form), and
        cached.  Sources that err on this item draw from this pool, which is
        what makes some wrong values *popular*.
        """
        cached = self._wrong_pools.get(item)
        if cached is not None:
            return cached
        rng = np.random.default_rng(
            split_seed(self.master_seed, "wrongpool", item.canonical())
        )
        predicate = self.schema.predicate(item.predicate)
        truths = set(self.truths.get(item, ()))
        pool: list[Value] = []
        seen: set[Value] = set(truths)
        attempts = 0
        while len(pool) < self.config.wrong_pool_size and attempts < 200:
            attempts += 1
            candidate = self._plausible_wrong_value(predicate, item, rng)
            if candidate is None or candidate in seen:
                continue
            seen.add(candidate)
            pool.append(candidate)
        values = tuple(pool)
        weights = zipf_weights(len(values)) if values else np.array([])
        self._wrong_pools[item] = (values, weights)
        return values, weights

    def _plausible_wrong_value(
        self, predicate, item: DataItem, rng: np.random.Generator
    ) -> Value | None:
        truths = self.truths.get(item, ())
        if predicate.value_kind is ValueKind.ENTITY:
            candidates = self.entities.of_type(predicate.object_type_id)
            if not candidates:
                return None
            pick = candidates[int(rng.integers(len(candidates)))]
            return EntityRef(pick.entity_id)
        if predicate.value_kind is ValueKind.NUMBER:
            base = None
            for truth in truths:
                if isinstance(truth, NumberValue):
                    base = truth.value
                    break
            if base is None:
                base = float(rng.integers(1, 1000))
            style = rng.random()
            if style < 0.4:
                # Off-by-small: the paper's 8849 vs 8850.
                return NumberValue(base + float(rng.integers(1, 4)) * (1 if rng.random() < 0.5 else -1))
            if style < 0.7:
                return NumberValue(max(0.0, base * float(rng.choice([0.1, 10.0, 2.0]))))
            return NumberValue(float(np.round(base * (0.5 + rng.random()))))
        if predicate.value_kind is ValueKind.DATE:
            base_iso = None
            for truth in truths:
                if isinstance(truth, DateValue):
                    base_iso = truth.iso
                    break
            if base_iso is None:
                year, month, day = 1950, 1, 1
            else:
                year, month, day = (int(x) for x in base_iso.split("-"))
            style = rng.random()
            if style < 0.4:
                year += int(rng.integers(1, 5)) * (1 if rng.random() < 0.5 else -1)
            elif style < 0.7 and month <= 12 and day <= 12:
                month, day = day, month  # the classic month/day swap
                if month == day:
                    year += 1
            else:
                day = int(rng.integers(1, 29))
                month = int(rng.integers(1, 13))
            year = min(max(year, 1850), 2013)
            return DateValue(f"{year:04d}-{month:02d}-{day:02d}")
        # STRING: any other word from the same literal vocabulary would be
        # ideal; lacking the vocab here, perturb by suffix or reuse another
        # item's truth of the same predicate.
        for truth in truths:
            if isinstance(truth, StringValue):
                peers = [
                    v
                    for vs in self.truths.values()
                    for v in vs
                    if isinstance(v, StringValue) and v.text != truth.text
                ]
                if peers:
                    return peers[int(rng.integers(len(peers)))]
                return StringValue(truth.text + "s")
        return StringValue(f"unknown-{int(rng.integers(1_000_000))}")

    def draw_wrong_value(
        self, item: DataItem, rng: np.random.Generator, popular: bool
    ) -> Value | None:
        """Draw a wrong value for ``item``.

        ``popular=True`` draws from the shared Zipf pool (recurring wrong
        values); otherwise draws uniformly from the pool's tail, standing in
        for one-off source mistakes.
        """
        values, weights = self.wrong_pool(item)
        if not values:
            return None
        if popular:
            index = int(rng.choice(len(values), p=weights))
        else:
            index = int(rng.integers(len(values)))
        return values[index]


def build_freebase_snapshot(
    world: World, seed_name: str = "freebase"
) -> KnowledgeBase:
    """Build the imperfect Freebase-like reference KB from ``world``.

    Controlled by the world's :class:`~repro.world.config.WorldConfig`:
    item coverage, per-value recall for non-functional predicates,
    generalisation of hierarchical values, and a small outright error rate.
    Deterministic given the world's master seed.
    """
    config = world.config
    rng = np.random.default_rng(split_seed(world.master_seed, seed_name))
    snapshot = KnowledgeBase(name="freebase")
    for item in sorted(world.truths):
        values = world.truths[item]
        if not values or rng.random() >= config.freebase_item_coverage:
            continue
        predicate = world.schema.predicate(item.predicate)
        if rng.random() < config.freebase_error_rate:
            wrong = world.draw_wrong_value(item, rng, popular=False)
            if wrong is not None:
                snapshot.add(Triple(item.subject, item.predicate, wrong))
                continue
        stored: list[Value] = []
        if predicate.functional:
            stored.append(values[0])
        else:
            for value in values:
                if rng.random() < config.freebase_value_recall:
                    stored.append(value)
            if not stored:
                stored.append(values[0])
        generalize = (
            predicate.hierarchical
            and rng.random() < config.freebase_generalization_rate
        )
        for value in stored:
            if (
                generalize
                and isinstance(value, EntityRef)
                and world.hierarchy.ancestors(value.entity_id)
            ):
                ancestors = world.hierarchy.ancestors(value.entity_id)
                value = EntityRef(ancestors[int(rng.integers(len(ancestors)))])
            snapshot.add(Triple(item.subject, item.predicate, value))
    return snapshot
