"""Rendering literal values to surfaces, and parsing them back.

The renderer prints a :class:`~repro.kb.values.Value` the way a web page
would; extractors must parse the surface back.  Date formats are the
deliberate hazard: ISO (``1962-07-03``) is unambiguous, the US form
(``7/3/1962``) is month-first, the EU form (``3.7.1962``) is day-first.  A
*naive* parser assumes month-first for any separator and therefore swaps
day and month on EU-styled pages whenever the day is a valid month — a
mechanically-generated triple-identification error of exactly the kind the
paper attributes to extractors.
"""

from __future__ import annotations

from repro.kb.values import DateValue, NumberValue, StringValue, Value

__all__ = [
    "render_value",
    "parse_literal",
    "parse_literal_naive",
    "DATE_STYLE_ISO",
    "DATE_STYLE_US",
    "DATE_STYLE_EU",
]

DATE_STYLE_ISO = "iso"
DATE_STYLE_US = "us"
DATE_STYLE_EU = "eu"


def render_value(value: Value, date_style: str = DATE_STYLE_ISO, grouped_numbers: bool = False) -> str:
    """Render a literal value as page text.

    Entity values are *not* rendered here — the web generator renders them
    through surface forms (names/aliases) because that is where entity
    linkage difficulty comes from.
    """
    if isinstance(value, DateValue):
        year, month, day = (int(x) for x in value.iso.split("-"))
        if date_style == DATE_STYLE_US:
            return f"{month}/{day}/{year}"
        if date_style == DATE_STYLE_EU:
            return f"{day}.{month}.{year}"
        return value.iso
    if isinstance(value, NumberValue):
        if float(value.value).is_integer():
            text = f"{int(value.value):,}" if grouped_numbers else str(int(value.value))
        else:
            text = f"{value.value:g}"
        return text
    if isinstance(value, StringValue):
        return value.text
    raise TypeError(f"not a literal value: {value!r}")


def _parse_date(surface: str, assume_month_first: bool) -> DateValue | None:
    surface = surface.strip()
    if "-" in surface:
        parts = surface.split("-")
        if len(parts) == 3 and all(p.isdigit() for p in parts):
            year, month, day = (int(p) for p in parts)
            if 1 <= month <= 12 and 1 <= day <= 31:
                return DateValue(f"{year:04d}-{month:02d}-{day:02d}")
        return None
    for separator, month_first in (("/", True), (".", False)):
        if separator in surface:
            parts = surface.split(separator)
            if len(parts) != 3 or not all(p.isdigit() for p in parts):
                return None
            a, b, year = (int(p) for p in parts)
            if assume_month_first or month_first:
                month, day = a, b
            else:
                day, month = a, b
            if not (1 <= month <= 12 and 1 <= day <= 31):
                # A correct parser falls back to the only valid reading.
                month, day = day, month
                if not (1 <= month <= 12 and 1 <= day <= 31):
                    return None
            return DateValue(f"{year:04d}-{month:02d}-{day:02d}")
    return None


def _parse_number(surface: str) -> NumberValue | None:
    text = surface.strip().replace(",", "")
    try:
        return NumberValue(float(text))
    except ValueError:
        return None


def parse_literal(surface: str, kind: str) -> Value | None:
    """Correct parser: knows each separator's convention."""
    if kind == "date":
        return _parse_date(surface, assume_month_first=False)
    if kind == "number":
        return _parse_number(surface)
    if kind == "string":
        return StringValue(surface)
    return None


def parse_literal_naive(surface: str, kind: str) -> Value | None:
    """Naive parser: assumes month-first for *any* separated date.

    On EU-styled surfaces this swaps day and month whenever the printed day
    is ≤ 12 — producing a wrong-but-plausible value.
    """
    if kind == "date":
        return _parse_date(surface, assume_month_first=True)
    return parse_literal(surface, kind)
