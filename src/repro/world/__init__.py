"""Synthetic ground-truth world and web substrate.

The paper's evaluation ran over 1B+ crawled web pages; offline we build the
closest synthetic equivalent: a *world* of entities and true facts (the
latent truth fusion is trying to recover), a Freebase-like *snapshot* of a
subset of those facts (the gold-standard reference), and a *web corpus* of
pages that assert facts — sometimes wrongly, sometimes copied — rendered
into the four content types the paper extracts from (TXT / DOM / TBL / ANO).

The split between *source errors* (a page asserts a wrong value) and
*extraction errors* (an extractor misreads a correct assertion) is explicit
here and auditable downstream, which is what the paper's error analysis
(Figure 17) and future direction 1 both require.
"""

from repro.world.config import WorldConfig, WebConfig
from repro.world.facts import World, SourceAssertion, build_freebase_snapshot
from repro.world.worldgen import generate_world
from repro.world.content import (
    Mention,
    Sentence,
    TextDocument,
    DomRow,
    DomTree,
    WebTable,
    AnnotationBlock,
    ContentElement,
)
from repro.world.webgen import WebPage, WebCorpus, generate_corpus

__all__ = [
    "WorldConfig",
    "WebConfig",
    "World",
    "SourceAssertion",
    "build_freebase_snapshot",
    "generate_world",
    "Mention",
    "Sentence",
    "TextDocument",
    "DomRow",
    "DomTree",
    "WebTable",
    "AnnotationBlock",
    "ContentElement",
    "WebPage",
    "WebCorpus",
    "generate_corpus",
]
