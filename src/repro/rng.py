"""Deterministic random-number utilities.

All stochastic components of the library (world generation, web rendering,
extraction noise, reducer sampling) draw from :class:`numpy.random.Generator`
instances derived from a single master seed.  Components never share a
generator; instead each asks for a *named stream* so that adding a new
consumer does not perturb the draws seen by existing ones.  This is what
makes scenarios and experiments exactly reproducible run-to-run.

Example
-------
>>> rng = named_rng(42, "worldgen")
>>> rng2 = named_rng(42, "worldgen")
>>> int(rng.integers(1000)) == int(rng2.integers(1000))
True
>>> rng3 = named_rng(42, "webgen")  # independent stream
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["named_rng", "stream_seed", "split_seed", "zipf_weights"]

_SEED_BYTES = 8


def stream_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for the stream ``name``.

    The derivation hashes the master seed together with the stream name, so
    streams are statistically independent and insensitive to the order in
    which they are created.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def named_rng(master_seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the stream ``name``."""
    return np.random.default_rng(stream_seed(master_seed, name))


def split_seed(master_seed: int, *names: str) -> int:
    """Derive a sub-seed along a path of names, e.g. ``("webgen", "site3")``."""
    seed = master_seed
    for name in names:
        seed = stream_seed(seed, name)
    return seed


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf weights ``w_i ∝ 1/(i+1)^exponent`` for ``n`` ranks.

    The paper repeatedly observes heavy-head/long-tail skew (triples per
    type, per entity, per source); sampling against these weights is how the
    synthetic scenario reproduces that skew.
    """
    if n <= 0:
        raise ValueError(f"need n >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(exponent))
    return weights / weights.sum()
