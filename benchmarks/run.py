#!/usr/bin/env python
"""The benchmark runner: one entrypoint for every registered case.

Usage::

    python benchmarks/run.py --list
    python benchmarks/run.py --case pipeline --scale tiny
    python benchmarks/run.py --case backends --case sampling --workers 4
    python benchmarks/run.py --all --scale small

Each selected case runs against one shared :class:`BenchContext` — the
scenario is built once per scale and every parallel case reuses a single
warm worker pool — asserts its documented parity contract *before*
timing, and writes a machine-readable envelope to
``benchmarks/results/BENCH_<case>.json`` (alongside whatever text report
the case itself persists, e.g. ``results/backends.txt`` or the per-figure
``results/<id>.txt`` artifacts).

The script is self-bootstrapping: it runs from a plain checkout (no
``PYTHONPATH`` needed) and from an installed package alike.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.registry import REGISTRY, RESULTS_DIR, SCALES, BenchContext  # noqa: E402


def _list_cases() -> None:
    width = max(len(name) for name in REGISTRY)
    for name in sorted(REGISTRY, key=lambda n: (REGISTRY[n].kind, n)):
        case = REGISTRY[name]
        print(f"{name:<{width}}  [{case.kind}]  {case.description}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run registered benchmark cases -> results/BENCH_<case>.json"
    )
    parser.add_argument(
        "--case",
        action="append",
        default=None,
        choices=sorted(REGISTRY),
        metavar="NAME",
        help="case to run (repeatable; see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered case"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered cases and exit"
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="scenario preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the shared parallel executor (default: CPU count)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=RESULTS_DIR,
        help="where BENCH_<case>.json and text reports land",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="scenario artifact cache directory (repro.artifacts): warm "
        "runs skip worldgen, bit-identically (default: no on-disk cache)",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_cases()
        return 0
    names = args.case or (sorted(REGISTRY) if args.all else None)
    if not names:
        parser.error("select cases with --case NAME (repeatable) or --all")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    ctx = BenchContext(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        results_dir=args.out_dir,
        cache_dir=args.cache_dir,
    )
    failures: list[str] = []
    try:
        for name in names:
            case = REGISTRY[name]
            start = time.perf_counter()
            try:
                report = case.run(ctx)
            except AssertionError as error:
                failures.append(name)
                print(f"{name}: FAILED — {error}", file=sys.stderr)
                continue
            elapsed = time.perf_counter() - start
            envelope = {
                "case": name,
                "kind": case.kind,
                "scale": ctx.scale,
                "seed": ctx.seed,
                **ctx.environment(),
                "elapsed_seconds": round(elapsed, 3),
                "report": report,
            }
            out = args.out_dir / f"BENCH_{name}.json"
            out.write_text(json.dumps(envelope, indent=2) + "\n")
            print(f"{name}: {elapsed:.2f}s -> {out}")
    finally:
        ctx.close()
    if failures:
        print(f"{len(failures)} case(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
