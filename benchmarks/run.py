#!/usr/bin/env python
"""The benchmark runner: one entrypoint for every registered case.

Usage::

    python benchmarks/run.py --list
    python benchmarks/run.py --case pipeline --scale tiny
    python benchmarks/run.py --case backends --case sampling --workers 4
    python benchmarks/run.py --all --scale small
    python benchmarks/run.py --case pipeline --compare
    python benchmarks/run.py --case pipeline --compare --update-baseline

Each selected case runs against one shared :class:`BenchContext` — the
scenario is built once per scale and every parallel case reuses a single
warm worker pool — asserts its documented parity contract *before*
timing, and writes a machine-readable envelope to
``benchmarks/results/BENCH_<case>.json`` (alongside whatever text report
the case itself persists, e.g. ``results/backends.txt`` or the per-figure
``results/<id>.txt`` artifacts).  The envelope carries both the cold
single-pass ``elapsed_seconds`` and the per-stage best-of-N
``best_of_seconds`` the stage cases measure, plus the environment
fingerprint and git commit the perf trajectory needs.

``--compare`` diffs every fresh envelope against its committed baseline
(``benchmarks/baselines/BASELINE_<case>.json``) via
:mod:`benchmarks.compare`, writes the human-readable diff to
``results/COMPARE_<case>.txt``, and exits non-zero on structural drift
or a wall-clock regression beyond tolerance; ``--update-baseline``
blesses the fresh run instead.

A case that fails — assertion or any other exception — is recorded and
reported, and the remaining selected cases still run; the exit code is
non-zero if anything failed.

The script is self-bootstrapping: it runs from a plain checkout (no
``PYTHONPATH`` needed) and from an installed package alike.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
import traceback
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from benchmarks.compare import (  # noqa: E402
    BASELINES_DIR,
    compare_envelope,
    load_baseline,
    stem_of,
    update_baseline,
)
from benchmarks.registry import (  # noqa: E402
    REGISTRY,
    RESULTS_DIR,
    SCALES,
    TIMING_ROUNDS,
    BenchContext,
)


def _list_cases() -> None:
    width = max(len(name) for name in REGISTRY)
    for name in sorted(REGISTRY, key=lambda n: (REGISTRY[n].kind, n)):
        case = REGISTRY[name]
        print(f"{name:<{width}}  [{case.kind}]  {case.description}")


def _git_commit() -> str | None:
    """Trajectory provenance: which tree produced this envelope."""
    try:
        proc = subprocess.run(
            ["git", "-C", str(_REPO_ROOT), "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run registered benchmark cases -> results/BENCH_<case>.json"
    )
    parser.add_argument(
        "--case",
        action="append",
        default=None,
        choices=sorted(REGISTRY),
        metavar="NAME",
        help="case to run (repeatable; see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered case"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered cases and exit"
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="small",
        help="scenario preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the shared parallel executor (default: CPU count)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=RESULTS_DIR,
        help="where BENCH_<case>.json and text reports land",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="scenario artifact cache directory (repro.artifacts): warm "
        "runs skip worldgen, bit-identically (default: no on-disk cache)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="diff each envelope against benchmarks/baselines/"
        "BASELINE_<case>.json; non-zero exit on structural drift or "
        "wall-clock regression beyond tolerance",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="with --compare: bless the fresh run as the baseline for "
        "this environment fingerprint instead of gating",
    )
    parser.add_argument(
        "--baselines-dir", type=Path, default=BASELINES_DIR,
        help="baseline directory (default: benchmarks/baselines)",
    )
    args = parser.parse_args(argv)

    if args.list:
        _list_cases()
        return 0
    if args.case and args.all:
        parser.error(
            "--case and --all are mutually exclusive: --all already runs "
            "every registered case"
        )
    if args.update_baseline and not args.compare:
        parser.error("--update-baseline requires --compare")
    names = args.case or (sorted(REGISTRY) if args.all else None)
    if not names:
        parser.error("select cases with --case NAME (repeatable) or --all")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    ctx = BenchContext(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        results_dir=args.out_dir,
        cache_dir=args.cache_dir,
    )
    git_commit = _git_commit()
    failures: list[str] = []
    envelopes: dict[str, dict] = {}
    try:
        for name in names:
            case = REGISTRY[name]
            start = time.perf_counter()
            try:
                report = case.run(ctx)
            except AssertionError as error:
                failures.append(name)
                print(f"{name}: FAILED — {error}", file=sys.stderr)
                continue
            except Exception as error:
                # Any other exception (registry KeyError, shm
                # FileNotFoundError, ...) must not abort the whole run:
                # record it, keep going, exit non-zero at the end.
                failures.append(name)
                print(
                    f"{name}: ERROR — {type(error).__name__}: {error}",
                    file=sys.stderr,
                )
                traceback.print_exc(file=sys.stderr)
                continue
            elapsed = time.perf_counter() - start
            envelope = {
                "case": name,
                "kind": case.kind,
                "scale": ctx.scale,
                "seed": ctx.seed,
                **ctx.environment(),
                "git_commit": git_commit,
                # Cold single-pass wall-clock of the whole case body —
                # setup, parity assertions and all.  Never compared
                # against baselines; the per-stage best-of-N below is.
                "elapsed_seconds": round(elapsed, 3),
                # A case may override the invocation-wide rounds (the
                # streaming web branch is a single measured pass).
                "timing_rounds": report.get("timing_rounds", TIMING_ROUNDS),
                "best_of_seconds": report.get("best_of", {}),
                "report": report,
            }
            stem = stem_of(name, ctx.scale)
            out = args.out_dir / f"BENCH_{stem}.json"
            out.write_text(json.dumps(envelope, indent=2) + "\n")
            envelopes[stem] = envelope
            print(f"{name}: {elapsed:.2f}s -> {out}")
    finally:
        ctx.close()

    regressions: list[str] = []
    if args.compare:
        for stem, envelope in envelopes.items():
            if args.update_baseline:
                path = update_baseline(envelope, args.baselines_dir)
                print(f"{stem}: baseline blessed -> {path}")
                continue
            baseline = load_baseline(stem, args.baselines_dir)
            result = compare_envelope(envelope, baseline)
            diff_path = args.out_dir / f"COMPARE_{stem}.txt"
            diff_path.write_text(result.render())
            if result.ok:
                print(f"{stem}: compare OK -> {diff_path}")
            else:
                regressions.append(stem)
                print(f"{stem}: compare REGRESSION -> {diff_path}",
                      file=sys.stderr)
                sys.stderr.write(result.render())

    if failures:
        print(f"{len(failures)} case(s) failed: {', '.join(failures)}",
              file=sys.stderr)
    if regressions:
        print(
            f"{len(regressions)} case(s) regressed against baseline: "
            f"{', '.join(regressions)}",
            file=sys.stderr,
        )
    return 1 if failures or regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
