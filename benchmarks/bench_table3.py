"""Benchmark: Table 3 — functional vs non-functional predicates.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/table3.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_table3(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "table3")
    assert (
        result.data["non_functional"]["predicates"]
        > result.data["functional"]["predicates"]
    )
