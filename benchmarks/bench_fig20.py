"""Benchmark: Figure 20 — #truths per data item.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig20.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig20(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig20")
    distribution = dict(result.data["distribution"])
    # Items with 0 or 1 truths dominate (paper: 95%).
    assert distribution["0"] + distribution["1"] > 0.8
