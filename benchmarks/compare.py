"""Perf trajectory: committed baselines and the regression comparator.

Every registered stage case emits best-of-N per-stage wall-clock in its
``BENCH_<case>.json`` envelope (``best_of_seconds``, stable stage keys).
This module turns those envelopes into a durable contract:

- ``benchmarks/baselines/BASELINE_<case>.json`` holds the blessed
  numbers — per-stage best-of-N seconds keyed by an **environment
  fingerprint** (python major.minor + machine + cpu count + workers),
  plus the structural facts the case must keep reproducing (the stage
  key set and the contract keys: parity, sampling, round-state mode,
  workload shape).
- :func:`compare_envelope` diffs a fresh envelope against the baseline.
  **Structural drift is always an error**: a missing or new stage key, a
  changed parity/sampling contract, a changed scale/seed/workload.
  **Timing drift is an error only beyond tolerance** — and only when the
  run's environment fingerprint has a blessed entry: wall-clock from a
  1-core dev container is not comparable to the 4-vCPU CI runner class,
  so fingerprints that were never blessed get the structural gate plus a
  loud "timing gate skipped" note instead of noise-driven failures.
- Tolerance is deliberately generous: ``fresh <= max(multiplier x base,
  base + floor)`` with a 3x multiplier and a 0.25s absolute floor, since
  best-of-N on a shared CI runner still jitters and sub-100ms stages are
  scheduler-noise-dominated.

The runner wires this in as ``benchmarks/run.py --compare
[--update-baseline]``; this module is also its own CLI for gating or
blessing an *existing* envelope without re-running the case (CI uses it
to regenerate runner-class baseline candidates as artifacts)::

    python benchmarks/compare.py benchmarks/results/BENCH_pipeline.json
    python benchmarks/compare.py benchmarks/results/BENCH_pipeline.json \
        --update-baseline --baselines-dir bench-candidates
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

#: Where the blessed baselines live (committed to the repo).
BASELINES_DIR = BENCH_DIR / "baselines"

#: Bumped when the baseline schema changes incompatibly; a mismatched
#: format is structural drift (re-bless, don't guess).
BASELINE_FORMAT = 1

#: Timing budget = max(multiplier x base, base + floor).  Generous on
#: purpose: the gate exists to catch 3x regressions that would otherwise
#: rot silently, not 20% wobble on a noisy shared runner.
TOLERANCE_MULTIPLIER = 3.0
TOLERANCE_FLOOR_SECONDS = 0.25

#: Report keys that form the structural contract when present.  These
#: are facts a case must keep reproducing exactly — parity/sampling
#: contracts, round-state residency, and the deterministic workload
#: shape — never timings (``vectorized_speedup`` et al. stay out).
CONTRACT_KEYS = (
    "bit_identical",
    "hybrid_parity",
    "sampling",
    "backend_used",
    "round_state",
    "sample_limit",
    "n_pages",
    "n_records",
    "changed_on_first_pass",
)


def fingerprint_of(envelope: dict) -> str:
    """The timing-comparability key for an envelope's environment.

    Wall-clock only compares within a runner class: same interpreter
    line, same architecture, same core count, same worker count.
    """
    python = ".".join(str(envelope.get("python", "?")).split(".")[:2])
    return (
        f"py{python}-{envelope.get('machine', '?')}"
        f"-cpu{envelope.get('cpu_count', '?')}-w{envelope.get('workers', '?')}"
    )


def stem_of(case: str, scale: str | None = None) -> str:
    """The file stem for a case at a scale.

    The default ``small`` scale keeps the bare historical stem
    (``BENCH_pipeline.json`` / ``BASELINE_pipeline.json``); any other
    scale qualifies it (``pipeline--web``) so one case can hold an
    independent baseline per scale tier without the tiers gating each
    other's structure or timings.
    """
    if scale in (None, "small"):
        return case
    return f"{case}--{scale}"


def baseline_path(stem: str, baselines_dir: Path = BASELINES_DIR) -> Path:
    return Path(baselines_dir) / f"BASELINE_{stem}.json"


def load_baseline(stem: str, baselines_dir: Path = BASELINES_DIR) -> dict | None:
    path = baseline_path(stem, baselines_dir)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _contracts_of(envelope: dict) -> dict:
    report = envelope.get("report") or {}
    return {key: report[key] for key in CONTRACT_KEYS if key in report}


def _environment_entry(envelope: dict) -> dict:
    return {
        "python": envelope.get("python"),
        "machine": envelope.get("machine"),
        "cpu_count": envelope.get("cpu_count"),
        "workers": envelope.get("workers"),
        "git_commit": envelope.get("git_commit"),
        "best_of_seconds": {
            stage: round(float(seconds), 4)
            for stage, seconds in (envelope.get("best_of_seconds") or {}).items()
        },
    }


def baseline_from_envelope(envelope: dict) -> dict:
    """A fresh baseline blessing exactly one environment fingerprint."""
    return {
        "format": BASELINE_FORMAT,
        "case": envelope["case"],
        "kind": envelope.get("kind"),
        "scale": envelope.get("scale"),
        "seed": envelope.get("seed"),
        "timing_rounds": envelope.get("timing_rounds"),
        "stages": sorted(envelope.get("best_of_seconds") or {}),
        "contracts": _contracts_of(envelope),
        "environments": {fingerprint_of(envelope): _environment_entry(envelope)},
    }


def _atomic_write_json(path: Path, payload: dict) -> None:
    """tmp + rename in the destination directory: readers never see a
    torn baseline, and a crash leaves the old blessing intact."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


def update_baseline(
    envelope: dict, baselines_dir: Path = BASELINES_DIR
) -> Path:
    """Bless ``envelope`` as the baseline for its fingerprint.

    Other fingerprints' entries survive as long as the structural facts
    (scale/seed, stage key set, contracts) are unchanged; a structural
    change invalidates every blessed timing, so the baseline is rebuilt
    around the fresh run alone.  The write is atomic.
    """
    fresh = baseline_from_envelope(envelope)
    stem = stem_of(envelope["case"], envelope.get("scale"))
    existing = load_baseline(stem, baselines_dir)
    if existing is not None:
        structural = ("format", "case", "kind", "scale", "seed", "stages", "contracts")
        if all(existing.get(key) == fresh[key] for key in structural):
            environments = dict(existing.get("environments") or {})
            environments.update(fresh["environments"])
            fresh["environments"] = environments
    path = baseline_path(stem, baselines_dir)
    _atomic_write_json(path, fresh)
    return path


@dataclass
class CompareResult:
    """The verdict of one envelope-vs-baseline diff."""

    case: str
    fingerprint: str
    errors: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Per-stage rows for the human-readable report:
    #: (stage, base_seconds, fresh_seconds, budget_seconds, verdict).
    stage_rows: list[tuple] = field(default_factory=list)
    timing_gated: bool = False

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        lines = [
            f"perf compare: case={self.case} fingerprint={self.fingerprint}",
            f"verdict: {'OK' if self.ok else 'REGRESSION'}"
            + ("" if self.timing_gated else " (timing gate skipped)"),
        ]
        if self.stage_rows:
            width = max(len(stage) for stage, *_ in self.stage_rows)
            lines.append(
                f"{'stage':<{width}}  {'base':>8}  {'fresh':>8}  "
                f"{'budget':>8}  verdict"
            )
            for stage, base, fresh, budget, verdict in self.stage_rows:
                lines.append(
                    f"{stage:<{width}}  {base:8.3f}  {fresh:8.3f}  "
                    f"{budget:8.3f}  {verdict}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        for error in self.errors:
            lines.append(f"error: {error}")
        return "\n".join(lines) + "\n"


def compare_envelope(
    envelope: dict,
    baseline: dict | None,
    multiplier: float = TOLERANCE_MULTIPLIER,
    floor_seconds: float = TOLERANCE_FLOOR_SECONDS,
) -> CompareResult:
    """Diff a fresh envelope against its blessed baseline."""
    result = CompareResult(
        case=envelope.get("case", "?"), fingerprint=fingerprint_of(envelope)
    )
    if baseline is None:
        result.errors.append(
            "no committed baseline for this case — bless one with "
            "--compare --update-baseline"
        )
        return result
    if baseline.get("format") != BASELINE_FORMAT:
        result.errors.append(
            f"baseline format {baseline.get('format')!r} != "
            f"{BASELINE_FORMAT} (re-bless with --update-baseline)"
        )
        return result

    # Structural identity: the run must be the workload the baseline
    # pinned.  A changed scale/seed/kind is never "a bit slower".
    for key in ("case", "kind", "scale", "seed"):
        if envelope.get(key) != baseline.get(key):
            result.errors.append(
                f"structural drift: {key} changed "
                f"{baseline.get(key)!r} -> {envelope.get(key)!r}"
            )

    # Contract keys: parity/sampling/round-state/workload facts.
    contracts = _contracts_of(envelope)
    base_contracts = baseline.get("contracts") or {}
    for key, base_value in sorted(base_contracts.items()):
        if key not in contracts:
            result.errors.append(
                f"structural drift: contract key {key!r} disappeared "
                f"(baseline pinned {base_value!r})"
            )
        elif contracts[key] != base_value:
            result.errors.append(
                f"structural drift: contract {key!r} changed "
                f"{base_value!r} -> {contracts[key]!r}"
            )
    for key in sorted(set(contracts) - set(base_contracts)):
        result.errors.append(
            f"structural drift: new contract key {key!r} not in baseline "
            "(bless it with --update-baseline)"
        )

    # Stage key set: environment-independent, enforced even when the
    # timing gate is skipped.
    fresh_stages = set(envelope.get("best_of_seconds") or {})
    base_stages = set(baseline.get("stages") or [])
    for stage in sorted(base_stages - fresh_stages):
        result.errors.append(f"structural drift: stage {stage!r} disappeared")
    for stage in sorted(fresh_stages - base_stages):
        result.errors.append(
            f"structural drift: new stage {stage!r} not in baseline "
            "(bless it with --update-baseline)"
        )

    if envelope.get("timing_rounds") != baseline.get("timing_rounds"):
        result.notes.append(
            f"timing_rounds changed {baseline.get('timing_rounds')!r} -> "
            f"{envelope.get('timing_rounds')!r}; best-of semantics shifted"
        )

    # Timing gate: only a blessed entry for this exact runner class is
    # comparable wall-clock.
    entry = (baseline.get("environments") or {}).get(result.fingerprint)
    if entry is None:
        blessed = ", ".join(sorted(baseline.get("environments") or {})) or "none"
        result.notes.append(
            f"no blessed timings for fingerprint {result.fingerprint} "
            f"(blessed: {blessed}); timing gate skipped, structural "
            "checks still enforced — bless this runner class with "
            "--update-baseline"
        )
        return result

    result.timing_gated = True
    fresh_timings = envelope.get("best_of_seconds") or {}
    for stage, base_seconds in sorted((entry.get("best_of_seconds") or {}).items()):
        if stage not in fresh_timings:
            continue  # already reported as structural drift above
        fresh_seconds = float(fresh_timings[stage])
        budget = max(base_seconds * multiplier, base_seconds + floor_seconds)
        if fresh_seconds > budget:
            verdict = "REGRESSION"
            result.errors.append(
                f"timing regression: stage {stage!r} took "
                f"{fresh_seconds:.3f}s, budget {budget:.3f}s "
                f"(best-of-N baseline {base_seconds:.3f}s x {multiplier:g} "
                f"multiplier, {floor_seconds:g}s floor)"
            )
        elif base_seconds > floor_seconds and fresh_seconds * multiplier < base_seconds:
            verdict = "improved"
            result.notes.append(
                f"stage {stage!r} improved {base_seconds:.3f}s -> "
                f"{fresh_seconds:.3f}s; consider re-blessing so the gate "
                "protects the win"
            )
        else:
            verdict = "ok"
        result.stage_rows.append(
            (stage, base_seconds, fresh_seconds, budget, verdict)
        )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "diff BENCH_<case>.json envelopes against committed baselines "
            "(or bless them with --update-baseline)"
        )
    )
    parser.add_argument(
        "envelopes", nargs="+", type=Path, metavar="BENCH_JSON",
        help="envelope file(s) written by benchmarks/run.py",
    )
    parser.add_argument(
        "--baselines-dir", type=Path, default=BASELINES_DIR,
        help="baseline directory (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="bless the envelope(s) instead of gating against them",
    )
    parser.add_argument(
        "--multiplier", type=float, default=TOLERANCE_MULTIPLIER,
        help="timing tolerance multiplier (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    failed = 0
    for envelope_path in args.envelopes:
        envelope = json.loads(envelope_path.read_text())
        if args.update_baseline:
            path = update_baseline(envelope, args.baselines_dir)
            print(f"{envelope['case']}: blessed -> {path}")
            continue
        baseline = load_baseline(
            stem_of(envelope["case"], envelope.get("scale")), args.baselines_dir
        )
        result = compare_envelope(envelope, baseline, multiplier=args.multiplier)
        sys.stdout.write(result.render())
        failed += not result.ok
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
