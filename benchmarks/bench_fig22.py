"""Benchmark: Figure 22 — coverage when filtering by confidence.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig22.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig22(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig22")
    points = dict(result.data["points"])
    assert points[0.1] < 1.0  # even theta=0.1 already loses triples
    assert points[0.9] < points[0.1]
