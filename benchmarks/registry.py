"""The benchmark registry: every measurable case behind one discoverable API.

Historically each paper figure/table had its own ``bench_fig*.py`` script
(25 near-identical files); this module replaces them with a single
registry the runner (``benchmarks/run.py``) and the pytest face
(``benchmarks/bench_registry.py``) both discover cases from.

Three kinds of case live here:

- **stage** cases (``pipeline``, ``backends``, ``sampling``,
  ``extraction``) — the performance benchmarks proper.  Each one
  *asserts its backends' documented parity contract* (serial == parallel
  bitwise; vectorized/hybrid within the 1e-9
  ``repro.fusion.PARITY_TOLERANCE_ABS`` tolerance) **before** reporting a
  single timing, so a comparison can never quietly measure two different
  computations.
- **experiment** cases (``fig3`` … ``fig22``, ``table1`` … ``table3``) —
  regenerate one paper artifact on the shared scenario, persist the
  rendered report to ``benchmarks/results/<id>.txt`` and run the
  per-figure sanity checks the old scripts carried.
- **extension** case (``extensions``) — the §5 future-direction ablations
  (split quality, multi-truth, hierarchy, confidence weighting) against
  their natural baselines, persisted to ``results/ext_*.txt``.

Every case takes a :class:`BenchContext` — the shared, *warm* resources
of one runner invocation: scenarios are built once per scale and the
parallel cases share one live :class:`ParallelExecutor` (one pool paid
for per invocation, the way a long-running service would hold it), and
returns a JSON-serializable report the runner wraps into
``benchmarks/results/BENCH_<case>.json``.
"""

from __future__ import annotations

import multiprocessing
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.datasets import (
    STREAMING_SCALES,
    build_scenario,
    medium_config,
    small_config,
    tiny_config,
    web_config,
)
from repro.experiments import experiment_ids, run_experiment
from repro.mapreduce.executors import ParallelExecutor

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SCALES = {
    "tiny": tiny_config,
    "small": small_config,
    "medium": medium_config,
    "web": web_config,
}

#: The documented parity bound hybrid/vectorized metrics must honour
#: against serial (asserted equal to ``repro.fusion.PARITY_TOLERANCE_ABS``
#: at run time so a drifting contract fails loudly here too).
TOLERANCE_PARITY_ABS = 1e-9

#: Minimum vectorized-over-serial speedup the ``backends`` case enforces.
MIN_VECTORIZED_SPEEDUP = 3.0

#: Minimum batched-over-scalar classification speedup the
#: ``extraction_stages`` case enforces (``classify_batch`` vs the
#: per-record ``classify_record`` reference, bitwise-identical output).
MIN_CLASSIFY_SPEEDUP = 2.0

#: Minimum batched-over-scalar synthesis speedup the ``extraction_stages``
#: case enforces (``synthesize_batch`` vs the per-page ``extract_page``
#: reference, bitwise-identical records).  Measured speedups run ~2.5-3.2x
#: depending on host load (the shared floor — RNG draws, frozen ``Triple``
#: construction, linker lookups — is identical work on both sides, and the
#: single-vCPU CI boxes swing the walk/draw cost mix); the enforced floor
#: sits below that band, mirroring how ``MIN_CLASSIFY_SPEEDUP`` relates to
#: its ~3.2x typical measurement.
MIN_SYNTHESIS_SPEEDUP = 2.0

#: Peak-RSS ceiling (MiB) the ``pipeline`` case enforces at the ``web``
#: scale.  The materialised web corpus + record list would run well past
#: 10 GiB (72k pages, ~10⁶ heavyweight record objects, ~28x ``small``);
#: the streaming pipeline's whole point is staying two orders of
#: magnitude under that.  Measured peak on the reference 1-core box
#: (hybrid, 2 workers, default chunking, mapped columns): ~390 MiB —
#: one in-flight chunk of records + the growing accumulator + the pool.
#: The ceiling carries ~2.5x headroom for allocator/platform variance
#: and higher worker counts while staying 10x+ under the materialised
#: footprint the tier exists to avoid.
WEB_PEAK_RSS_CEILING_MB = 1024

#: Stage timings are best-of-N perf_counter passes.  Public because the
#: runner promotes it into every envelope (``timing_rounds``) so the
#: perf-trajectory comparator knows what the blessed numbers mean.
TIMING_ROUNDS = 3

_TIMING_ROUNDS = TIMING_ROUNDS  # backwards-compatible alias


@dataclass
class BenchContext:
    """Shared warm state for one runner invocation.

    ``scenario()`` builds (and caches) the deterministic scenario for the
    context's scale; ``executor()`` returns the invocation-wide warm
    :class:`ParallelExecutor` every parallel case shares — the pool and
    its resident state are paid for once, not once per case.  ``close()``
    releases the pool (the runner calls it in a ``finally``).
    ``cache_dir`` (``--cache-dir``) points worldgen at the on-disk
    scenario artifact cache (:mod:`repro.artifacts`) so repeat
    invocations — CI lanes above all — skip generation entirely; hits are
    bit-identical to a fresh build by the artifact contract.
    """

    scale: str = "small"
    seed: int = 0
    workers: int | None = None
    results_dir: Path = RESULTS_DIR
    cache_dir: Path | None = None
    _scenarios: dict = field(default_factory=dict, repr=False)
    _executor: ParallelExecutor | None = field(default=None, repr=False)

    def scenario(self):
        if self.scale in STREAMING_SCALES:
            raise RuntimeError(
                f"scale {self.scale!r} is out-of-core: no case may "
                "materialise its scenario — only the streaming-aware "
                "cases (pipeline) run at this scale"
            )
        key = (self.scale, self.seed)
        if key not in self._scenarios:
            self._scenarios[key] = build_scenario(
                SCALES[self.scale](seed=self.seed), cache_dir=self.cache_dir
            )
        return self._scenarios[key]

    def executor(self) -> ParallelExecutor:
        if self._executor is None:
            self._executor = ParallelExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def environment(self) -> dict:
        """The host facts every report carries.

        ``python``/``machine``/``cpu_count``/``workers`` double as the
        perf-trajectory environment fingerprint
        (:func:`benchmarks.compare.fingerprint_of`): baseline wall-clock
        only gates runs from the same runner class.
        """
        return {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "workers": self.workers or max(2, os.cpu_count() or 1),
        }


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: a name, a kind, and a runnable body."""

    name: str
    run: Callable[[BenchContext], dict]
    description: str
    kind: str = "stage"  # "stage" | "experiment" | "extension"


REGISTRY: dict[str, BenchCase] = {}


def register(name: str, description: str, kind: str = "stage"):
    """Class the decorated callable as the body of case ``name``."""

    def decorate(fn: Callable[[BenchContext], dict]):
        REGISTRY[name] = BenchCase(
            name=name, run=fn, description=description, kind=kind
        )
        return fn

    return decorate


def _best_of(fn, rounds: int = TIMING_ROUNDS) -> float:
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


# ---------------------------------------------------------------------------
# Stage cases: the performance benchmarks (parity asserted before timing)
# ---------------------------------------------------------------------------


@register(
    "pipeline",
    "end-to-end per-stage wall-clock: serial vs parallel vs hybrid on one "
    "shared executor each (serial==parallel asserted bitwise, hybrid "
    "metrics within 1e-9, before any timing is reported)",
)
def pipeline_case(ctx: BenchContext) -> dict:
    """Port of the old ``bench_pipeline.py`` script mode.

    The parallel and hybrid runs share the context's warm executor; the
    serial run owns a throwaway ``SerialExecutor`` as before.  The report
    is the artifact the ROADMAP speedup numbers (and the CI
    ``perf-crossover`` lane) come from.
    """
    from repro.endtoend import run_end_to_end
    from repro.fusion import PARITY_TOLERANCE_ABS

    assert TOLERANCE_PARITY_ABS == PARITY_TOLERANCE_ABS

    if ctx.scale in STREAMING_SCALES:
        return _streaming_pipeline_case(ctx)

    config = SCALES[ctx.scale](seed=ctx.seed)
    executor = ctx.executor()
    serial = run_end_to_end(
        config, method="popaccu+", backend="serial", cache_dir=ctx.cache_dir
    )
    parallel = run_end_to_end(
        config, method="popaccu+", backend="parallel",
        n_workers=ctx.workers, executor=executor, cache_dir=ctx.cache_dir,
    )
    hybrid = run_end_to_end(
        config, method="popaccu+", backend="hybrid",
        n_workers=ctx.workers, executor=executor, cache_dir=ctx.cache_dir,
    )

    # Parity first, timings second: serial == parallel bit-for-bit,
    # hybrid within the documented tolerance contract.
    assert serial.fusion.probabilities == parallel.fusion.probabilities
    assert serial.fusion.accuracies == parallel.fusion.accuracies
    assert serial.scenario.records == parallel.scenario.records
    assert hybrid.fusion.diagnostics["backend_used"] == "hybrid"
    assert hybrid.scenario.records == serial.scenario.records
    hybrid_metric_delta = max(
        abs(hybrid.metrics[name] - value) for name, value in serial.metrics.items()
    )
    assert hybrid_metric_delta <= TOLERANCE_PARITY_ABS, (
        f"hybrid metrics drifted {hybrid_metric_delta:.3e} from serial "
        f"(contract: <= {TOLERANCE_PARITY_ABS})"
    )

    # Best-of-N per-stage wall-clock (the first, parity-asserted pass
    # counts as round 1).  The cold ``stages`` numbers below stay in the
    # report for eyeballing, but the perf-trajectory comparator gates on
    # these: best-of-N over a warm pool is what survives runner noise.
    stage_rounds: dict[str, list[dict]] = {
        "serial": [serial.timings],
        "parallel": [parallel.timings],
        "hybrid": [hybrid.timings],
    }
    for _ in range(TIMING_ROUNDS - 1):
        stage_rounds["serial"].append(
            run_end_to_end(
                config, method="popaccu+", backend="serial",
                cache_dir=ctx.cache_dir,
            ).timings
        )
        stage_rounds["parallel"].append(
            run_end_to_end(
                config, method="popaccu+", backend="parallel",
                n_workers=ctx.workers, executor=executor,
                cache_dir=ctx.cache_dir,
            ).timings
        )
        stage_rounds["hybrid"].append(
            run_end_to_end(
                config, method="popaccu+", backend="hybrid",
                n_workers=ctx.workers, executor=executor,
                cache_dir=ctx.cache_dir,
            ).timings
        )
    best_of = {
        f"{backend}.{stage}": round(min(t[stage] for t in rounds), 4)
        for backend, rounds in stage_rounds.items()
        for stage in rounds[0]
    }

    def round3(timings: dict) -> dict:
        return {stage: round(elapsed, 3) for stage, elapsed in timings.items()}

    return {
        "best_of": best_of,
        "n_pages": serial.diagnostics["n_pages"],
        "n_records": serial.diagnostics["n_records"],
        "workers": parallel.diagnostics.get("n_workers"),
        "bit_identical": True,
        "scenario_cache": serial.diagnostics.get("scenario_cache", "off"),
        "hybrid_parity": hybrid.fusion.diagnostics["parity"],
        "hybrid_max_metric_delta": hybrid_metric_delta,
        "round_state": parallel.diagnostics.get("round_state"),
        "stages": {
            "serial": round3(serial.timings),
            "parallel": round3(parallel.timings),
            "hybrid": round3(hybrid.timings),
        },
        "parallel_fallbacks": {
            "tiny": parallel.diagnostics.get("fallbacks_tiny", 0),
            "unpicklable": parallel.diagnostics.get("fallbacks_unpicklable", 0),
            "shm": parallel.diagnostics.get("fallbacks_shm", 0),
        },
        "metrics": {name: round(v, 6) for name, v in serial.metrics.items()},
    }


def _streaming_pipeline_case(ctx: BenchContext) -> dict:
    """The ``pipeline`` case's out-of-core branch (``--scale web``).

    One measured :func:`~repro.endtoend.run_streaming_pipeline` pass
    under the ``hybrid`` backend — a web-scale run is minutes of
    wall-clock, so unlike the in-memory branch it is a single round, not
    best-of-N (the envelope records ``timing_rounds: 1``).  The parity
    gates the in-memory branch runs here are enforced at ``small`` by
    the regression suite instead (mapped == in-memory bitwise, streaming
    == record path per backend contract) — asserting them at web would
    require the forbidden materialised reference.  What *is* asserted
    before the numbers are trusted: the run stayed under
    :data:`WEB_PEAK_RSS_CEILING_MB`, the columns actually memory-mapped
    when a cache directory was supplied, and the hybrid tolerance
    contract engaged.
    """
    from repro.endtoend import peak_rss_mb, run_streaming_pipeline

    config = SCALES[ctx.scale](seed=ctx.seed)
    result = run_streaming_pipeline(
        config,
        method="popaccu+",
        backend="hybrid",
        n_workers=ctx.workers,
        cache_dir=ctx.cache_dir,
    )
    diagnostics = result.diagnostics
    assert diagnostics["parity"] == "tolerance"
    if ctx.cache_dir is not None:
        assert diagnostics["column_store"] == "mapped", diagnostics["column_store"]
    peak = peak_rss_mb()
    assert peak <= WEB_PEAK_RSS_CEILING_MB, (
        f"web-scale streaming pipeline peaked at {peak:.0f} MiB "
        f"(ceiling: {WEB_PEAK_RSS_CEILING_MB} MiB) — the out-of-core "
        "path is leaking residency somewhere"
    )
    return {
        "streaming": True,
        "timing_rounds": 1,
        "best_of": {
            f"hybrid.{stage}": round(elapsed, 4)
            for stage, elapsed in result.timings.items()
        },
        "n_pages": result.n_pages,
        "n_records": result.n_records,
        "n_chunks": diagnostics["n_chunks"],
        "chunk_pages": diagnostics["chunk_pages"],
        "workers": diagnostics.get("n_workers"),
        "column_store": diagnostics["column_store"],
        "peak_rss_mb": round(peak, 1),
        "rss_ceiling_mb": WEB_PEAK_RSS_CEILING_MB,
        "hybrid_parity": diagnostics["parity"],
        "round_state": diagnostics.get("round_state"),
        "state_bytes_shipped": diagnostics.get("state_bytes_shipped"),
        "parallel_fallbacks": {
            "tiny": diagnostics.get("fallbacks_tiny", 0),
            "unpicklable": diagnostics.get("fallbacks_unpicklable", 0),
            "shm": diagnostics.get("fallbacks_shm", 0),
        },
        "stages": {
            "hybrid": {
                stage: round(elapsed, 3)
                for stage, elapsed in result.timings.items()
            }
        },
        "metrics": {name: round(v, 6) for name, v in result.metrics.items()},
    }


@register(
    "backends",
    "one POPACCU round under all four fusion backends on the shared warm "
    "executor (parallel bitwise, vectorized/hybrid 1e-9, vectorized >= 3x "
    "serial) -> results/backends.txt",
)
def backends_case(ctx: BenchContext) -> dict:
    from repro.fusion import FusionConfig, popaccu

    fusion_input = ctx.scenario().fusion_input()
    executor = ctx.executor()

    def run(backend: str):
        config = FusionConfig(max_rounds=1, convergence_tol=0.0, backend=backend)
        if backend in ("parallel", "hybrid"):
            return popaccu(config).fuse(fusion_input, executor=executor)
        return popaccu(config).fuse(fusion_input)

    # Warm the shared caches (claim matrix + columnar index + pool) once,
    # the way any multi-round fusion run would.
    results = {
        backend: run(backend)
        for backend in ("serial", "parallel", "vectorized", "hybrid")
    }
    assert results["vectorized"].diagnostics["backend_used"] == "vectorized"
    assert results["hybrid"].diagnostics["backend_used"] == "hybrid"

    # Parity before timing.  Parallel is bit-identical under fork
    # (spawn-only platforms agree to the last ulp — see
    # repro.mapreduce.executors); vectorized and hybrid honour the 1e-9
    # tolerance contract.
    serial = results["serial"]
    if "fork" in multiprocessing.get_all_start_methods():
        assert results["parallel"].probabilities == serial.probabilities
    else:  # pragma: no cover - spawn-only platforms
        for triple, probability in serial.probabilities.items():
            assert abs(results["parallel"].probabilities[triple] - probability) < 1e-12
    max_delta = 0.0
    for backend in ("vectorized", "hybrid"):
        for triple, probability in serial.probabilities.items():
            delta = abs(results[backend].probabilities[triple] - probability)
            max_delta = max(max_delta, delta)
            assert delta <= TOLERANCE_PARITY_ABS, (backend, triple)

    timings = {backend: _best_of(lambda b=backend: run(b)) for backend in results}
    speedup = timings["serial"] / timings["vectorized"]
    lines = [
        "POPACCU single round, shared session scenario "
        f"({len(serial.probabilities)} fused triples); best of {TIMING_ROUNDS}",
        *(
            f"{backend:>12}: {seconds * 1000:9.1f} ms"
            for backend, seconds in sorted(timings.items(), key=lambda kv: kv[1])
        ),
        f"vectorized speedup over serial-scalar: {speedup:.1f}x",
    ]
    (ctx.results_dir / "backends.txt").write_text("\n".join(lines) + "\n")
    assert speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized backend only {speedup:.2f}x faster than scalar "
        f"(required >= {MIN_VECTORIZED_SPEEDUP}x)\n" + "\n".join(lines)
    )
    return {
        "best_of": {b: round(s, 4) for b, s in timings.items()},
        "timings_ms": {b: round(s * 1000, 1) for b, s in timings.items()},
        "vectorized_speedup": round(speedup, 2),
        "tolerance_max_delta": max_delta,
        "round_state": results["parallel"].diagnostics.get("round_state"),
        "n_triples": len(serial.probabilities),
    }


@register(
    "sampling",
    "an L-sampled POPACCU round: canonical-order sampling keeps the "
    "parallel backend engaged and bit-identical -> results/sampling.txt",
)
def sampling_case(ctx: BenchContext) -> dict:
    from repro.fusion import FusionConfig, popaccu

    fusion_input = ctx.scenario().fusion_input()
    executor = ctx.executor()
    # Engage sampling on a meaningful fraction of items without gutting
    # the workload (the small scenario's largest items carry ~40 claims).
    sample_limit = 5

    def run(backend: str):
        config = FusionConfig(
            max_rounds=1,
            convergence_tol=0.0,
            backend=backend,
            sample_limit=sample_limit,
        )
        if backend == "parallel":
            return popaccu(config).fuse(fusion_input, executor=executor)
        return popaccu(config).fuse(fusion_input)

    results = {backend: run(backend) for backend in ("serial", "parallel")}
    parallel = results["parallel"]
    assert parallel.diagnostics["backend_used"] == "parallel", (
        "sampling must no longer force the serial fallback"
    )
    assert parallel.diagnostics["sampling"] == "canonical-order"
    if "fork" in multiprocessing.get_all_start_methods():
        assert parallel.probabilities == results["serial"].probabilities

    timings = {backend: _best_of(lambda b=backend: run(b)) for backend in results}
    lines = [
        f"POPACCU single round, L={sample_limit} (sampling engaged), "
        f"canonical-order contract; best of {TIMING_ROUNDS}",
        *(
            f"{backend:>12}: {seconds * 1000:9.1f} ms"
            for backend, seconds in sorted(timings.items(), key=lambda kv: kv[1])
        ),
        f"parallel backend_used: {parallel.diagnostics['backend_used']} "
        "(no serial fallback)",
    ]
    (ctx.results_dir / "sampling.txt").write_text("\n".join(lines) + "\n")
    return {
        "sample_limit": sample_limit,
        "best_of": {b: round(s, 4) for b, s in timings.items()},
        "timings_ms": {b: round(s * 1000, 1) for b, s in timings.items()},
        "backend_used": parallel.diagnostics["backend_used"],
        "sampling": parallel.diagnostics["sampling"],
    }


@register(
    "extraction",
    "the extraction stage alone, serial vs parallel over the shared warm "
    "executor (record stream asserted bit-identical before timing)",
)
def extraction_case(ctx: BenchContext) -> dict:
    scenario = ctx.scenario()
    pipeline, corpus = scenario.pipeline, scenario.corpus
    executor = ctx.executor()

    serial_records = pipeline.run(corpus, backend="serial")
    fallbacks_before = executor.fallbacks_unpicklable
    parallel_records = pipeline.run(corpus, backend="parallel", executor=executor)
    assert parallel_records == serial_records  # bitwise, before timing
    # Delta, not the lifetime counter: the executor is shared across the
    # whole runner invocation and earlier cases may fall back legitimately.
    assert executor.fallbacks_unpicklable == fallbacks_before

    timings = {
        "serial": _best_of(lambda: pipeline.run(corpus, backend="serial")),
        "parallel": _best_of(
            lambda: pipeline.run(corpus, backend="parallel", executor=executor)
        ),
    }
    return {
        "n_pages": len(corpus.pages),
        "n_records": len(serial_records),
        "bit_identical": True,
        "best_of": {b: round(s, 4) for b, s in timings.items()},
        "timings_ms": {b: round(s * 1000, 1) for b, s in timings.items()},
    }


@register(
    "extraction_stages",
    "the extraction stage decomposed: coverage masks, scalar extract_page "
    "vs the synthesize_batch kernel, and scalar classify_record vs the "
    "classify_batch kernel (records asserted bit-identical before timing; "
    "both kernels >= 2x their scalar reference)",
)
def extraction_stages_case(ctx: BenchContext) -> dict:
    """Stage breakdown behind the ``extraction`` headline number.

    Synthesis and classification are timed separately so each kernel's
    speedup is visible instead of being diluted by the other stage's
    cost.  The scalar ``synthesis`` stage is the pipeline-faithful
    reference loop (coverage masks + per-page ``extract_page``, exactly
    what the pre-kernel serial backend ran); ``synthesis_batch`` times
    :func:`~repro.extract.synthesis.synthesize_batch` against bench-held
    masks and a warm :class:`~repro.extract.synthesis.SynthesisCaches` —
    mask reuse and cache persistence are how the batched pipeline
    backends actually run the kernel (coverage has its own stage), and
    the scalar loop's linker memos are equally warm across rounds.  Both
    classifiers are timed against *pristine* (unannotated) records —
    the kernel annotates in place and the scalar reference's no-copy
    fast path would otherwise make re-classification artificially cheap
    — so each timed round resets the debug channels to their synthesis
    defaults first (untimed).
    """
    from repro.extract.kernels import classify_batch
    from repro.extract.synthesis import SynthesisCaches, synthesize_batch
    from repro.extract.pipeline import classify_record

    scenario = ctx.scenario()
    pipeline = scenario.pipeline
    pages = list(scenario.corpus.pages)
    extractors = pipeline.extractors

    def coverage() -> list:
        return [extractor.coverage_mask(pages) for extractor in extractors]

    def synthesize() -> list:
        masks = coverage()
        per_page = []
        for index, page in enumerate(pages):
            records = []
            for extractor, mask in zip(extractors, masks):
                if mask[index]:
                    records.extend(extractor.extract_page(page))
            per_page.append(records)
        return per_page

    held_masks = coverage()
    warm_caches = SynthesisCaches()

    def synthesize_kernel() -> list:
        return synthesize_batch(
            extractors, pages, masks=held_masks, caches=warm_caches
        )

    per_page = synthesize()
    # Synthesis parity first: the kernel's record stream equals the
    # scalar reference page-for-page, bit-for-bit (same dataclass
    # equality the property suite asserts per extractor).
    kernel_per_page = synthesize_kernel()
    assert kernel_per_page == per_page  # bitwise, before timing
    batches = list(zip(pages, per_page))

    # Parity first: the scalar reference's output records equal the
    # kernel's in-place annotation bit-for-bit.  The reference runs on a
    # second, independently synthesized (deterministic, so bit-identical)
    # record set — classify_record returns the *same* object on the
    # no-change path, and comparing against aliases of records the kernel
    # just mutated would vacuously pass.
    scalar_records = [
        classify_record(record, page)
        for page, page_records in zip(pages, synthesize())
        for record in page_records
    ]
    changed = classify_batch(batches)
    kernel_records = [
        record for page_records in per_page for record in page_records
    ]
    assert kernel_records == scalar_records  # bitwise, before timing

    def reset() -> None:
        # Back to synthesis defaults (fresh records carry error_kind=None,
        # source_error=False) so each timed round classifies cold.
        for page_records in per_page:
            for record in page_records:
                object.__setattr__(record.debug, "error_kind", None)
                object.__setattr__(record.debug, "source_error", False)

    def timed_classify(fn) -> float:
        best = None
        for _ in range(TIMING_ROUNDS):
            reset()
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return best

    timings = {
        "coverage": _best_of(coverage),
        "synthesis": _best_of(synthesize),
        "synthesis_batch": _best_of(synthesize_kernel),
        "classify_scalar": timed_classify(
            lambda: [
                classify_record(record, page)
                for page, page_records in batches
                for record in page_records
            ]
        ),
        "classify_batch": timed_classify(lambda: classify_batch(batches)),
    }
    speedup = timings["classify_scalar"] / timings["classify_batch"]
    assert speedup >= MIN_CLASSIFY_SPEEDUP, (
        f"classify_batch only {speedup:.2f}x faster than the scalar "
        f"reference (required >= {MIN_CLASSIFY_SPEEDUP}x)"
    )
    synthesis_speedup = timings["synthesis"] / timings["synthesis_batch"]
    assert synthesis_speedup >= MIN_SYNTHESIS_SPEEDUP, (
        f"synthesize_batch only {synthesis_speedup:.2f}x faster than the "
        f"scalar reference (required >= {MIN_SYNTHESIS_SPEEDUP}x)"
    )
    return {
        "n_pages": len(pages),
        "n_records": len(kernel_records),
        "bit_identical": True,
        "changed_on_first_pass": changed,
        "best_of": {
            stage: round(seconds, 4) for stage, seconds in timings.items()
        },
        "timings_ms": {
            stage: round(seconds * 1000, 1) for stage, seconds in timings.items()
        },
        "classify_speedup": round(speedup, 2),
        "synthesis_speedup": round(synthesis_speedup, 2),
    }


# ---------------------------------------------------------------------------
# Experiment cases: one per paper figure/table, with the sanity checks the
# old per-figure bench scripts carried
# ---------------------------------------------------------------------------


def _check_fig3(data, scenario):
    contributions = data["contributions"]
    assert contributions["DOM"] == max(contributions.values())
    assert contributions["TBL"] == min(contributions.values())
    # Overlaps are small relative to contributions.
    assert max(data["overlaps"].values()) < contributions["DOM"] * 0.5


def _check_fig4(data, scenario):
    assert 0.0 < data["share_low"] < 1.0
    assert abs(sum(s for _b, s in data["histogram"]) - 1.0) < 1e-9


def _check_fig5(data, scenario):
    assert data["mean_gap"] > 0.1  # paper: 0.32
    assert data["share_above_half"] > 0.0  # paper: 21%


def _check_fig6(data, scenario):
    points = data["points"]
    assert points, "no accuracy points"
    lows = [a for x, _n, a in points if x == 1]
    highs = [a for x, _n, a in points if x >= 4]
    assert not highs or not lows or max(highs) > lows[0]


def _check_fig7(data, scenario):
    points = data["points"]
    assert points[0][2] < 0.6  # single-URL triples are unreliable
    assert max(a for _e, _n, a in points) > points[0][2]


def _check_fig9(data, scenario):
    assert data["VOTE"]["auc_pr"] == min(
        data[m]["auc_pr"] for m in ("VOTE", "ACCU", "POPACCU")
    )


def _check_fig10(data, scenario):
    assert len(data) == 4
    finest = data["(Ext, Site, Pred, Pattern)"]
    coarsest = data["(Extractor, URL)"]
    assert finest["n_provenances"] != coarsest["n_provenances"]


def _check_fig11(data, scenario):
    assert data["BYCOV"]["predicted_share"] < 1.0
    assert data["NOFILTERING"]["predicted_share"] == 1.0


def _check_fig12(data, scenario):
    assert data["100%"]["auc_pr"] > data["default"]["auc_pr"]


def _check_fig13(data, scenario):
    assert data["+GoldStandard"]["wdev"] < data["POPACCU"]["wdev"]
    assert data["+GoldStandard"]["auc_pr"] > data["POPACCU"]["auc_pr"]


def _check_fig14(data, scenario):
    per_round = data["per_round_wdev"]
    assert len(per_round["DefaultAccu"]) == 5
    lr = data["lr_table"]
    assert abs(lr["L=1K, R=5"]["wdev"] - lr["L=1M, R=5"]["wdev"]) < 0.02


def _check_fig15(data, scenario):
    assert data["POPACCU+"]["auc_pr"] == max(d["auc_pr"] for d in data.values())


def _check_fig16(data, scenario):
    # The paper sees 80% of triples below 0.1 or above 0.9; polarisation
    # is weaker at laptop scale (fewer provenances per item), so the
    # check asserts the direction, not the paper's magnitude.
    assert data["share_low"] + data["share_high"] > 0.3
    assert data["share_low"] > data["share_high"]


def _check_fig17(data, scenario):
    assert data["n_false_positives"] > 0
    assert data["n_false_negatives"] > 0
    assert "multiple_truths" in data["fn_categories"]


def _check_fig18(data, scenario):
    single = dict((e, a) for e, _n, a in data["1 extractor"])
    multi_key = next(k for k in data if k.startswith(">="))
    multi = dict((e, a) for e, _n, a in data[multi_key])
    shared = set(single) & set(multi)
    assert shared
    gaps = [multi[e] - single[e] for e in shared]
    assert sum(gaps) / len(gaps) > 0


def _check_fig19(data, scenario):
    assert data["same_type"]["n"] + data["cross_type"]["n"] == len(data["pairs"])
    assert data["cross_type"]["negative"] > 0


def _check_fig20(data, scenario):
    distribution = dict(data["distribution"])
    # Items with 0 or 1 truths dominate (paper: 95%).
    assert distribution["0"] + distribution["1"] > 0.8


def _check_fig21(data, scenario):
    assert set(data) == {"TXT1", "DOM2", "TBL1", "ANO"}
    # DOM2 reports extremes: most confidences at the edges.
    dom2 = dict(data["DOM2"]["coverage"])
    assert dom2[0.1] > 0.3


def _check_fig22(data, scenario):
    points = dict(data["points"])
    assert points[0.1] < 1.0  # even theta=0.1 already loses triples
    assert points[0.9] < points[0.1]


def _check_table1(data, scenario):
    counts = data["counts"]
    assert counts["#Triples (unique)"] > 1000
    skews = data["skews"]
    # The paper's hallmark: median far below mean (heavy head, long tail).
    assert skews["#Triples/entity"]["median"] < skews["#Triples/entity"]["mean"]


def _check_table2(data, scenario):
    assert len(data) == 12
    # The quality spread: careful extractors far above sloppy ones.
    assert data["TXT4"]["accuracy"] > data["DOM2"]["accuracy"] + 0.3
    # Volume ordering: DOM1 is the largest contributor, as in the paper.
    assert data["DOM1"]["records"] == max(d["records"] for d in data.values())


def _check_table3(data, scenario):
    assert (
        data["non_functional"]["predicates"] > data["functional"]["predicates"]
    )


#: Per-experiment sanity checks (signature: ``check(result.data, scenario)``).
#: These are the assertions the replaced ``bench_fig*.py`` scripts carried.
EXPERIMENT_CHECKS: dict[str, Callable] = {
    "fig3": _check_fig3,
    "fig4": _check_fig4,
    "fig5": _check_fig5,
    "fig6": _check_fig6,
    "fig7": _check_fig7,
    "fig9": _check_fig9,
    "fig10": _check_fig10,
    "fig11": _check_fig11,
    "fig12": _check_fig12,
    "fig13": _check_fig13,
    "fig14": _check_fig14,
    "fig15": _check_fig15,
    "fig16": _check_fig16,
    "fig17": _check_fig17,
    "fig18": _check_fig18,
    "fig19": _check_fig19,
    "fig20": _check_fig20,
    "fig21": _check_fig21,
    "fig22": _check_fig22,
    "table1": _check_table1,
    "table2": _check_table2,
    "table3": _check_table3,
}


def _experiment_body(experiment_id: str) -> Callable[[BenchContext], dict]:
    def run(ctx: BenchContext) -> dict:
        scenario = ctx.scenario()
        start = time.perf_counter()
        result = run_experiment(experiment_id, scenario)
        elapsed = time.perf_counter() - start
        (ctx.results_dir / f"{experiment_id}.txt").write_text(result.text + "\n")
        assert result.data
        check = EXPERIMENT_CHECKS.get(experiment_id)
        if check is not None:
            check(result.data, scenario)
        return {
            "experiment": experiment_id,
            "seconds": round(elapsed, 3),
            "checked": check is not None,
            "report": f"results/{experiment_id}.txt",
        }

    return run


for _experiment_id in experiment_ids():
    REGISTRY[_experiment_id] = BenchCase(
        name=_experiment_id,
        run=_experiment_body(_experiment_id),
        description=(
            f"regenerate paper artifact {_experiment_id} on the shared "
            f"scenario -> results/{_experiment_id}.txt"
        ),
        kind="experiment",
    )


# ---------------------------------------------------------------------------
# Extension case: the §5 future-direction ablations
# ---------------------------------------------------------------------------


@register(
    "extensions",
    "the §5 future-direction fusers against their baselines "
    "-> results/ext_{split,funct,hier,conf}.txt",
    kind="extension",
)
def extensions_case(ctx: BenchContext) -> dict:
    from repro.experiments.common import metrics_for
    from repro.fusion import FusionConfig, accu, popaccu
    from repro.fusion.extensions import (
        ConfidenceWeightedFuser,
        HierarchicalFuser,
        MultiTruthFuser,
        SplitQualityFuser,
    )
    from repro.report import format_table

    scenario = ctx.scenario()
    fusion_input = scenario.fusion_input()
    world = scenario.world
    report: dict = {}

    def record(name: str, rows, extra: str = "") -> None:
        text = format_table(
            ("model", "Dev.", "WDev.", "AUC-PR"), rows, title=name, float_digits=4
        )
        if extra:
            text += "\n" + extra
        (ctx.results_dir / f"{name}.txt").write_text(text + "\n")

    # Direction 1: factored extractor × source quality vs plain ACCU.
    split = SplitQualityFuser(FusionConfig()).fuse(fusion_input)
    base = accu().fuse(fusion_input)
    ours = metrics_for(split.probabilities, scenario.gold)
    baseline = metrics_for(base.probabilities, scenario.gold)
    quality = split.diagnostics["extractor_quality"]
    record(
        "ext_split",
        [("SPLITQ", *ours.row()), ("ACCU", *baseline.row())],
        "learned extractor quality: "
        + ", ".join(
            f"{k}={v:.2f}" for k, v in sorted(quality.items(), key=lambda kv: -kv[1])
        ),
    )
    # The factored model must at least rank the sloppy extractor below
    # the careful ones.
    assert quality["DOM2"] < quality["DOM3"]
    assert quality["DOM2"] < quality["TXT4"]
    report["ext_split"] = {"auc_pr": ours.auc_pr, "baseline_auc_pr": baseline.auc_pr}

    # Direction 3: multi-truth fusion vs single-truth POPACCU.
    multi = MultiTruthFuser(FusionConfig(max_rounds=3)).fuse(fusion_input)
    pop = popaccu().fuse(fusion_input)

    def non_functional_recall(probabilities):
        hits = total = 0
        for triple, probability in probabilities.items():
            predicate = world.schema.predicates.get(triple.predicate)
            if predicate is None or predicate.functional:
                continue
            if world.is_true_exact(triple):
                total += 1
                hits += probability > 0.5
        return hits / total if total else 0.0

    ours_recall = non_functional_recall(multi.probabilities)
    base_recall = non_functional_recall(pop.probabilities)
    functionality = multi.diagnostics["functionality"]
    record(
        "ext_funct",
        [
            ("MULTITRUTH", *metrics_for(multi.probabilities, scenario.gold).row()),
            ("POPACCU", *metrics_for(pop.probabilities, scenario.gold).row()),
        ],
        f"recall of true non-functional values at p>0.5 (vs world truth): "
        f"MULTITRUTH={ours_recall:.3f} POPACCU={base_recall:.3f}\n"
        "learned functionality (top 3): "
        + ", ".join(
            f"{pid.rsplit('/', 1)[-1]}={v:.2f}"
            for pid, v in sorted(functionality.items(), key=lambda kv: -kv[1])[:3]
        ),
    )
    assert ours_recall >= base_recall  # dropping single-truth must not lose truths
    report["ext_funct"] = {"recall": ours_recall, "baseline_recall": base_recall}

    # Direction 4: hierarchical value support vs plain ACCU (scored
    # against world truth — LCWA labels true-but-general values false,
    # the very artifact direction 4 fixes).
    hier = HierarchicalFuser(
        world.schema, world.hierarchy, FusionConfig(max_rounds=3)
    ).fuse(fusion_input)

    def hierarchical_recall(probabilities):
        hits = total = 0
        for triple, probability in probabilities.items():
            predicate = world.schema.predicates.get(triple.predicate)
            if predicate is None or not predicate.hierarchical:
                continue
            if world.is_true(triple):  # exact or true generalisation
                total += 1
                hits += probability > 0.5
        return hits / total if total else 0.0

    ours_recall = hierarchical_recall(hier.probabilities)
    base_recall = hierarchical_recall(base.probabilities)
    record(
        "ext_hier",
        [
            ("HIERACCU", *metrics_for(hier.probabilities, scenario.gold).row()),
            ("ACCU", *baseline.row()),
        ],
        f"recall of true (incl. generalised) hierarchical values at p>0.5: "
        f"HIERACCU={ours_recall:.3f} ACCU={base_recall:.3f}",
    )
    assert ours_recall >= base_recall
    report["ext_hier"] = {"recall": ours_recall, "baseline_recall": base_recall}

    # Direction 5: confidence-weighted votes vs plain ACCU.
    conf = ConfidenceWeightedFuser(FusionConfig()).fuse(fusion_input)
    conf_metrics = metrics_for(conf.probabilities, scenario.gold)
    record(
        "ext_conf",
        [("CONFACCU", *conf_metrics.row()), ("ACCU", *baseline.row())],
    )
    assert conf_metrics.auc_pr > baseline.auc_pr - 0.05
    report["ext_conf"] = {
        "auc_pr": conf_metrics.auc_pr,
        "baseline_auc_pr": baseline.auc_pr,
    }
    return report
