"""Benchmark: Table 1 — corpus overview and skew.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/table1.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_table1(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "table1")
    counts = result.data["counts"]
    assert counts["#Triples (unique)"] > 1000
    skews = result.data["skews"]
    # The paper's hallmark: median far below mean (heavy head, long tail).
    assert skews["#Triples/entity"]["median"] < skews["#Triples/entity"]["mean"]
