"""Benchmark: Figure 19 — Kappa correlation between extractor pairs.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig19.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig19(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig19")
    assert result.data["same_type"]["n"] + result.data["cross_type"]["n"] == len(
        result.data["pairs"]
    )
    assert result.data["cross_type"]["negative"] > 0
