"""Benchmark: Figure 18 — accuracy by #provenances × #extractors.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig18.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig18(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig18")
    single = dict((e, a) for e, _n, a in result.data["1 extractor"])
    multi_key = next(k for k in result.data if k.startswith(">="))
    multi = dict((e, a) for e, _n, a in result.data[multi_key])
    shared = set(single) & set(multi)
    assert shared
    gaps = [multi[e] - single[e] for e in shared]
    assert sum(gaps) / len(gaps) > 0
