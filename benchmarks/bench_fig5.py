"""Benchmark: Figure 5 — best-vs-worst extractor gap per page.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig5.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig5(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig5")
    assert result.data["mean_gap"] > 0.1  # paper: 0.32
    assert result.data["share_above_half"] > 0.0  # paper: 21%
