"""Benchmark: Figure 11 — provenance selection filters.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig11.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig11(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig11")
    assert result.data["BYCOV"]["predicted_share"] < 1.0
    assert result.data["NOFILTERING"]["predicted_share"] == 1.0
