"""Benchmark: Figure 4 — distribution of predicate accuracy.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig4.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig4(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig4")
    assert 0.0 < result.data["share_low"] < 1.0
    assert abs(sum(s for _b, s in result.data["histogram"]) - 1.0) < 1e-9
