"""Benchmark: Figure 14 — rounds, sampling L and round cap R.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig14.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig14(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig14")
    per_round = result.data["per_round_wdev"]
    assert len(per_round["DefaultAccu"]) == 5
    lr = result.data["lr_table"]
    assert abs(lr["L=1K, R=5"]["wdev"] - lr["L=1M, R=5"]["wdev"]) < 0.02
