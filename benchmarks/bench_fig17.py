"""Benchmark: Figure 17 — error categorisation of POPACCU+.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig17.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig17(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig17")
    assert result.data["n_false_positives"] > 0
    assert result.data["n_false_negatives"] > 0
    assert "multiple_truths" in result.data["fn_categories"]
