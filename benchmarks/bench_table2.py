"""Benchmark: Table 2 — per-extractor volume and quality.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/table2.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_table2(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "table2")
    assert len(result.data) == 12
    # The quality spread: careful extractors far above sloppy ones.
    assert result.data["TXT4"]["accuracy"] > result.data["DOM2"]["accuracy"] + 0.3
    # Volume ordering: DOM1 is the largest contributor, as in the paper.
    assert result.data["DOM1"]["records"] == max(
        d["records"] for d in result.data.values()
    )
