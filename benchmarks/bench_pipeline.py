"""Throughput benchmarks for the pipeline stages themselves.

Unlike the per-figure benches (one-shot regeneration), these measure the
hot paths with repeated rounds: world generation, extraction, claim-matrix
construction, and one fusion round — the numbers that determine how far
the laptop-scale reproduction can be pushed.

Besides the pytest-benchmark cases, this module is directly runnable::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--scale small]

which runs the full pipeline end-to-end under the serial, parallel and
hybrid backends on one shared executor each, asserts serial == parallel
bit-identically and hybrid within the 1e-9 metric-delta contract, and
writes the machine-readable per-stage wall-clock comparison to
``benchmarks/results/BENCH_pipeline.json`` — the artifact the ROADMAP
speedup numbers come from.
"""

import argparse
import json
import os
import platform
from pathlib import Path

from repro.datasets import ScenarioConfig, build_scenario
from repro.fusion import FusionConfig, FusionInput, Granularity, popaccu
from repro.world.config import WebConfig, WorldConfig
from repro.world.worldgen import generate_world

_BENCH_WORLD = WorldConfig(n_types=10, n_entities=400)
_BENCH_WEB = WebConfig(n_sites=40, n_pages=400)


def bench_world_generation(benchmark):
    world = benchmark(generate_world, _BENCH_WORLD, 7)
    assert len(world.entities) > 100


def bench_extraction(benchmark):
    scenario = build_scenario(
        ScenarioConfig(seed=7, world=_BENCH_WORLD, web=_BENCH_WEB)
    )
    pipeline, corpus = scenario.pipeline, scenario.corpus
    records = benchmark(pipeline.run, corpus)
    assert len(records) > 1000


def bench_extraction_serial_small(benchmark, scenario):
    """The extraction stage alone at the ``small`` scale (serial reference).

    Compare against ``bench_extraction_parallel_small``: on a >= 4-core
    host the URL-hash-sharded process-pool backend is expected to run this
    stage >= 2x faster (extraction is page-wise embarrassingly parallel;
    the wire cost is compact record tuples, not pickled dataclasses).  On
    1-2 cores the pool overhead wins instead — see ROADMAP.
    """
    pipeline, corpus = scenario.pipeline, scenario.corpus
    records = benchmark.pedantic(
        pipeline.run, args=(corpus,), kwargs={"backend": "serial"},
        rounds=3, iterations=1,
    )
    assert len(records) > 10_000


def bench_extraction_parallel_small(benchmark, scenario):
    """The same extraction through the parallel executor (bit-identical)."""
    from repro.mapreduce.executors import ParallelExecutor

    pipeline, corpus = scenario.pipeline, scenario.corpus
    with ParallelExecutor() as executor:
        records = benchmark.pedantic(
            pipeline.run, args=(corpus,), kwargs={"executor": executor},
            rounds=3, iterations=1,
        )
    assert len(records) > 10_000
    assert executor.fallbacks == 0


def bench_claim_matrix(benchmark):
    scenario = build_scenario(
        ScenarioConfig(seed=7, world=_BENCH_WORLD, web=_BENCH_WEB)
    )
    records = scenario.records

    def build():
        return FusionInput(records).claims(Granularity.EXTRACTOR_URL)

    matrix = benchmark(build)
    assert matrix.n_claims() > 1000


def bench_popaccu_round(benchmark, scenario):
    """One full POPACCU round (stage I + stage II) on the shared corpus."""
    fusion_input = scenario.fusion_input()
    config = FusionConfig(max_rounds=1, convergence_tol=0.0)

    def one_round():
        return popaccu(config).fuse(fusion_input)

    result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result.probabilities


def bench_popaccu_round_parallel(benchmark, scenario):
    """The same POPACCU round through the columnar-shuffle parallel backend.

    Compare against ``bench_popaccu_round``: shard payloads are integer
    item/provenance ids plus contiguous float buffers (the claim columns
    are pool-resident), so the wall-clock difference against serial is
    pure pool dispatch plus real parallel compute — no object pickling.
    """
    from repro.mapreduce.executors import ParallelExecutor

    fusion_input = scenario.fusion_input()
    config = FusionConfig(max_rounds=1, convergence_tol=0.0)
    fusion_input.claims(config.granularity).columnar()  # build index once

    with ParallelExecutor() as executor:

        def one_round():
            return popaccu(config, backend="parallel").fuse(
                fusion_input, executor=executor
            )

        result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result.probabilities
    assert result.diagnostics["backend_used"] == "parallel"


def bench_popaccu_round_hybrid(benchmark, scenario):
    """The same POPACCU round through the hybrid backend.

    Compare against ``bench_popaccu_round_parallel``: shard payloads are
    identical (integer ids + float buffers over pool-resident columns),
    but each worker runs one batched numpy kernel call per shard instead
    of the per-item scalar loop — the ~40x kernel win multiplied by the
    worker count, at tolerance (1e-9) instead of bitwise parity.
    """
    from repro.mapreduce.executors import ParallelExecutor

    fusion_input = scenario.fusion_input()
    config = FusionConfig(max_rounds=1, convergence_tol=0.0)
    fusion_input.claims(config.granularity).columnar()  # build index once

    with ParallelExecutor() as executor:

        def one_round():
            return popaccu(config, backend="hybrid").fuse(
                fusion_input, executor=executor
            )

        result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result.probabilities
    assert result.diagnostics["backend_used"] == "hybrid"
    assert result.diagnostics["parity"] == "tolerance"


def bench_popaccu_round_vectorized(benchmark, scenario):
    """The same POPACCU round through the vectorized columnar backend.

    Compare against ``bench_popaccu_round``: the batched numpy kernels
    replace the per-item scalar loop (the claim matrix and its columnar
    index are cached on the shared fusion input, as in any multi-round or
    repeated-configuration run).
    """
    fusion_input = scenario.fusion_input()
    config = FusionConfig(max_rounds=1, convergence_tol=0.0, backend="vectorized")
    fusion_input.claims(config.granularity).columnar()  # build index once

    def one_round():
        return popaccu(config).fuse(fusion_input)

    result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result.probabilities
    assert result.diagnostics["backend_used"] == "vectorized"


# ---------------------------------------------------------------------------
# Script mode: serial vs. parallel end-to-end, machine-readable
# ---------------------------------------------------------------------------


#: The documented parity bound hybrid metrics must honour against serial
#: (re-exported from the fusion layer so a drifting contract fails loudly
#: here too).
HYBRID_METRIC_TOLERANCE = 1e-9


def collect_pipeline_timings(
    scale: str = "small", seed: int = 0, workers: int | None = None
) -> dict:
    """Serial vs. parallel vs. hybrid per-stage wall-clock, full pipeline.

    All runs go through :func:`repro.endtoend.run_end_to_end` (one shared
    executor per run).  Before any number is reported the parallel run's
    output is asserted *bit-identical* to serial and the hybrid run's
    headline metrics are asserted within the documented 1e-9 tolerance
    contract, so the comparison can never quietly measure two different
    computations.
    """
    from repro.datasets import medium_config, small_config, tiny_config
    from repro.endtoend import run_end_to_end
    from repro.fusion import PARITY_TOLERANCE_ABS

    assert HYBRID_METRIC_TOLERANCE == PARITY_TOLERANCE_ABS

    config = {"tiny": tiny_config, "small": small_config, "medium": medium_config}[
        scale
    ](seed=seed)
    serial = run_end_to_end(config, method="popaccu+", backend="serial")
    parallel = run_end_to_end(
        config, method="popaccu+", backend="parallel", n_workers=workers
    )
    hybrid = run_end_to_end(
        config, method="popaccu+", backend="hybrid", n_workers=workers
    )
    assert serial.fusion.probabilities == parallel.fusion.probabilities
    assert serial.fusion.accuracies == parallel.fusion.accuracies
    assert serial.scenario.records == parallel.scenario.records
    assert hybrid.fusion.diagnostics["backend_used"] == "hybrid"
    assert hybrid.scenario.records == serial.scenario.records
    hybrid_metric_delta = max(
        abs(hybrid.metrics[name] - value) for name, value in serial.metrics.items()
    )
    assert hybrid_metric_delta <= HYBRID_METRIC_TOLERANCE, (
        f"hybrid metrics drifted {hybrid_metric_delta:.3e} from serial "
        f"(contract: <= {HYBRID_METRIC_TOLERANCE})"
    )

    def round3(timings: dict) -> dict:
        return {stage: round(elapsed, 3) for stage, elapsed in timings.items()}

    return {
        "scale": scale,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "workers": parallel.diagnostics.get("n_workers"),
        "python": platform.python_version(),
        "n_pages": serial.diagnostics["n_pages"],
        "n_records": serial.diagnostics["n_records"],
        "bit_identical": True,
        "hybrid_parity": hybrid.fusion.diagnostics["parity"],
        "hybrid_max_metric_delta": hybrid_metric_delta,
        "stages": {
            "serial": round3(serial.timings),
            "parallel": round3(parallel.timings),
            "hybrid": round3(hybrid.timings),
        },
        "parallel_fallbacks": {
            "tiny": parallel.diagnostics.get("fallbacks_tiny", 0),
            "unpicklable": parallel.diagnostics.get("fallbacks_unpicklable", 0),
        },
        "metrics": {name: round(v, 6) for name, v in serial.metrics.items()},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial vs. parallel pipeline wall-clock -> BENCH_pipeline.json"
    )
    parser.add_argument(
        "--scale", choices=("tiny", "small", "medium"), default="small"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count (default: CPU count)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).parent / "results" / "BENCH_pipeline.json",
    )
    args = parser.parse_args(argv)

    report = collect_pipeline_timings(args.scale, args.seed, args.workers)
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
