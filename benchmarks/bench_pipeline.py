"""Throughput benchmarks for the pipeline stages themselves.

Unlike the per-figure benches (one-shot regeneration), these measure the
hot paths with repeated rounds: world generation, extraction, claim-matrix
construction, and one fusion round — the numbers that determine how far
the laptop-scale reproduction can be pushed.
"""

from repro.datasets import ScenarioConfig, build_scenario
from repro.fusion import FusionConfig, FusionInput, Granularity, popaccu
from repro.world.config import WebConfig, WorldConfig
from repro.world.worldgen import generate_world

_BENCH_WORLD = WorldConfig(n_types=10, n_entities=400)
_BENCH_WEB = WebConfig(n_sites=40, n_pages=400)


def bench_world_generation(benchmark):
    world = benchmark(generate_world, _BENCH_WORLD, 7)
    assert len(world.entities) > 100


def bench_extraction(benchmark):
    scenario = build_scenario(
        ScenarioConfig(seed=7, world=_BENCH_WORLD, web=_BENCH_WEB)
    )
    pipeline, corpus = scenario.pipeline, scenario.corpus
    records = benchmark(pipeline.run, corpus)
    assert len(records) > 1000


def bench_extraction_serial_small(benchmark, scenario):
    """The extraction stage alone at the ``small`` scale (serial reference).

    Compare against ``bench_extraction_parallel_small``: on a >= 4-core
    host the URL-hash-sharded process-pool backend is expected to run this
    stage >= 2x faster (extraction is page-wise embarrassingly parallel;
    the wire cost is compact record tuples, not pickled dataclasses).  On
    1-2 cores the pool overhead wins instead — see ROADMAP.
    """
    pipeline, corpus = scenario.pipeline, scenario.corpus
    records = benchmark.pedantic(
        pipeline.run, args=(corpus,), kwargs={"backend": "serial"},
        rounds=3, iterations=1,
    )
    assert len(records) > 10_000


def bench_extraction_parallel_small(benchmark, scenario):
    """The same extraction through the parallel executor (bit-identical)."""
    from repro.mapreduce.executors import ParallelExecutor

    pipeline, corpus = scenario.pipeline, scenario.corpus
    with ParallelExecutor() as executor:
        records = benchmark.pedantic(
            pipeline.run, args=(corpus,), kwargs={"executor": executor},
            rounds=3, iterations=1,
        )
    assert len(records) > 10_000
    assert executor.fallbacks == 0


def bench_claim_matrix(benchmark):
    scenario = build_scenario(
        ScenarioConfig(seed=7, world=_BENCH_WORLD, web=_BENCH_WEB)
    )
    records = scenario.records

    def build():
        return FusionInput(records).claims(Granularity.EXTRACTOR_URL)

    matrix = benchmark(build)
    assert matrix.n_claims() > 1000


def bench_popaccu_round(benchmark, scenario):
    """One full POPACCU round (stage I + stage II) on the shared corpus."""
    fusion_input = scenario.fusion_input()
    config = FusionConfig(max_rounds=1, convergence_tol=0.0)

    def one_round():
        return popaccu(config).fuse(fusion_input)

    result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result.probabilities


def bench_popaccu_round_vectorized(benchmark, scenario):
    """The same POPACCU round through the vectorized columnar backend.

    Compare against ``bench_popaccu_round``: the batched numpy kernels
    replace the per-item scalar loop (the claim matrix and its columnar
    index are cached on the shared fusion input, as in any multi-round or
    repeated-configuration run).
    """
    fusion_input = scenario.fusion_input()
    config = FusionConfig(max_rounds=1, convergence_tol=0.0, backend="vectorized")
    fusion_input.claims(config.granularity).columnar()  # build index once

    def one_round():
        return popaccu(config).fuse(fusion_input)

    result = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert result.probabilities
    assert result.diagnostics["backend_used"] == "vectorized"
