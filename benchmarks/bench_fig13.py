"""Benchmark: Figure 13 — cumulative refinements to POPACCU+.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig13.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig13(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig13")
    assert result.data["+GoldStandard"]["wdev"] < result.data["POPACCU"]["wdev"]
    assert result.data["+GoldStandard"]["auc_pr"] > result.data["POPACCU"]["auc_pr"]
