"""Backend comparison bench: serial vs parallel vs vectorized vs hybrid.

Times one full POPACCU round (Stage I + Stage II + Stage III) on the
shared session scenario under each execution backend, checks the results
agree under their documented parity contracts (parallel bitwise,
vectorized/hybrid 1e-9 tolerance), asserts the headline speedup
(vectorized ≥ 3x over scalar-serial on the ``bench_popaccu_round``
scenario), and persists a small report to
``benchmarks/results/backends.txt``.  A second bench times the
canonical-order sampling contract: an ``L``-sampled round through the
parallel backend (which no longer falls back to serial) vs the sampled
serial reference, persisted to ``benchmarks/results/sampling.txt``.

Timings are taken with ``time.perf_counter`` (best of three) so the
numbers — and the speedup assertion — are valid even when pytest-benchmark
runs with ``--benchmark-disable`` (the repo default; pass
``--benchmark-enable`` for the plugin's own statistics).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.fusion import FusionConfig, popaccu

_ROUNDS = 3
_MIN_SPEEDUP = 3.0


def _best_of(fn, rounds: int = _ROUNDS) -> float:
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def bench_backend_comparison(benchmark, scenario, results_dir):
    fusion_input = scenario.fusion_input()

    def run(backend: str):
        config = FusionConfig(max_rounds=1, convergence_tol=0.0, backend=backend)
        return popaccu(config).fuse(fusion_input)

    # Warm the shared caches (claim matrix + columnar index) once, the way
    # any multi-round fusion run would.
    results = {
        backend: run(backend)
        for backend in ("serial", "parallel", "vectorized", "hybrid")
    }
    assert results["vectorized"].diagnostics["backend_used"] == "vectorized"
    assert results["hybrid"].diagnostics["backend_used"] == "hybrid"

    # Parallel is bit-identical under fork (spawn-only platforms agree to
    # the last ulp — see repro.mapreduce.executors); vectorized and hybrid
    # within the documented 1e-9 tolerance contract.
    serial = results["serial"]
    if "fork" in multiprocessing.get_all_start_methods():
        assert results["parallel"].probabilities == serial.probabilities
    else:
        for triple, probability in serial.probabilities.items():
            assert results["parallel"].probabilities[triple] == pytest.approx(
                probability, abs=1e-12
            )
    for backend in ("vectorized", "hybrid"):
        for triple, probability in serial.probabilities.items():
            assert results[backend].probabilities[triple] == pytest.approx(
                probability, abs=1e-9
            )

    timings = {backend: _best_of(lambda b=backend: run(b)) for backend in results}
    benchmark.pedantic(lambda: run("vectorized"), rounds=1, iterations=1)

    speedup = timings["serial"] / timings["vectorized"]
    lines = [
        "POPACCU single round, shared session scenario "
        f"({len(serial.probabilities)} fused triples); best of {_ROUNDS}",
        *(
            f"{backend:>12}: {seconds * 1000:9.1f} ms"
            for backend, seconds in sorted(timings.items(), key=lambda kv: kv[1])
        ),
        f"vectorized speedup over serial-scalar: {speedup:.1f}x",
    ]
    (results_dir / "backends.txt").write_text("\n".join(lines) + "\n")

    assert speedup >= _MIN_SPEEDUP, (
        f"vectorized backend only {speedup:.2f}x faster than scalar "
        f"(required >= {_MIN_SPEEDUP}x)\n" + "\n".join(lines)
    )


def bench_sampling_contract(benchmark, scenario, results_dir):
    """Canonical-order sampling keeps the parallel backend engaged.

    Before the contract, any reducer-input bound ``L`` small enough to
    engage silently degraded every parallel run to the in-process serial
    reference ("serial (parallel fallback)").  Now the shard workers
    re-draw the canonical-order subsets against the resident columns:
    this bench asserts the sampled parallel run really runs parallel,
    stays bit-identical to the sampled serial reference, and records the
    wall-clock of both to ``benchmarks/results/sampling.txt``.
    """
    fusion_input = scenario.fusion_input()
    # Engage sampling on a meaningful fraction of items without gutting
    # the workload (the small scenario's largest items carry ~40 claims).
    sample_limit = 5

    def run(backend: str):
        config = FusionConfig(
            max_rounds=1,
            convergence_tol=0.0,
            backend=backend,
            sample_limit=sample_limit,
        )
        return popaccu(config).fuse(fusion_input)

    results = {backend: run(backend) for backend in ("serial", "parallel")}
    parallel = results["parallel"]
    assert parallel.diagnostics["backend_used"] == "parallel", (
        "sampling must no longer force the serial fallback"
    )
    assert parallel.diagnostics["sampling"] == "canonical-order"
    if "fork" in multiprocessing.get_all_start_methods():
        assert parallel.probabilities == results["serial"].probabilities

    timings = {backend: _best_of(lambda b=backend: run(b)) for backend in results}
    benchmark.pedantic(lambda: run("parallel"), rounds=1, iterations=1)

    lines = [
        f"POPACCU single round, L={sample_limit} (sampling engaged), "
        f"canonical-order contract; best of {_ROUNDS}",
        *(
            f"{backend:>12}: {seconds * 1000:9.1f} ms"
            for backend, seconds in sorted(timings.items(), key=lambda kv: kv[1])
        ),
        f"parallel backend_used: {parallel.diagnostics['backend_used']} "
        "(no serial fallback)",
    ]
    (results_dir / "sampling.txt").write_text("\n".join(lines) + "\n")
