"""Backend comparison bench: serial-scalar vs parallel vs vectorized.

Times one full POPACCU round (Stage I + Stage II + Stage III) on the
shared session scenario under each execution backend, checks the results
agree, asserts the headline speedup (vectorized ≥ 3x over scalar-serial
on the ``bench_popaccu_round`` scenario), and persists a small report to
``benchmarks/results/backends.txt``.

Timings are taken with ``time.perf_counter`` (best of three) so the
numbers — and the speedup assertion — are valid even when pytest-benchmark
runs with ``--benchmark-disable`` (the repo default; pass
``--benchmark-enable`` for the plugin's own statistics).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.fusion import FusionConfig, popaccu

_ROUNDS = 3
_MIN_SPEEDUP = 3.0


def _best_of(fn, rounds: int = _ROUNDS) -> float:
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def bench_backend_comparison(benchmark, scenario, results_dir):
    fusion_input = scenario.fusion_input()

    def run(backend: str):
        config = FusionConfig(max_rounds=1, convergence_tol=0.0, backend=backend)
        return popaccu(config).fuse(fusion_input)

    # Warm the shared caches (claim matrix + columnar index) once, the way
    # any multi-round fusion run would.
    results = {backend: run(backend) for backend in ("serial", "parallel", "vectorized")}
    assert results["vectorized"].diagnostics["backend_used"] == "vectorized"

    # Parallel is bit-identical under fork (spawn-only platforms agree to
    # the last ulp — see repro.mapreduce.executors); vectorized within
    # numerical noise.
    serial = results["serial"]
    if "fork" in multiprocessing.get_all_start_methods():
        assert results["parallel"].probabilities == serial.probabilities
    else:
        for triple, probability in serial.probabilities.items():
            assert results["parallel"].probabilities[triple] == pytest.approx(
                probability, abs=1e-12
            )
    for triple, probability in serial.probabilities.items():
        assert results["vectorized"].probabilities[triple] == pytest.approx(
            probability, abs=1e-9
        )

    timings = {backend: _best_of(lambda b=backend: run(b)) for backend in results}
    benchmark.pedantic(lambda: run("vectorized"), rounds=1, iterations=1)

    speedup = timings["serial"] / timings["vectorized"]
    lines = [
        "POPACCU single round, shared session scenario "
        f"({len(serial.probabilities)} fused triples); best of {_ROUNDS}",
        *(
            f"{backend:>12}: {seconds * 1000:9.1f} ms"
            for backend, seconds in sorted(timings.items(), key=lambda kv: kv[1])
        ),
        f"vectorized speedup over serial-scalar: {speedup:.1f}x",
    ]
    (results_dir / "backends.txt").write_text("\n".join(lines) + "\n")

    assert speedup >= _MIN_SPEEDUP, (
        f"vectorized backend only {speedup:.2f}x faster than scalar "
        f"(required >= {_MIN_SPEEDUP}x)\n" + "\n".join(lines)
    )
