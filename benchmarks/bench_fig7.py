"""Benchmark: Figure 7 — accuracy by #URLs.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig7.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig7(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig7")
    points = result.data["points"]
    assert points[0][2] < 0.6  # single-URL triples are unreliable
    assert max(a for _e, _n, a in points) > points[0][2]
