"""Benchmark: Figure 10 — provenance granularity sweep.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig10.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig10(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig10")
    assert len(result.data) == 4
    finest = result.data["(Ext, Site, Pred, Pattern)"]
    coarsest = result.data["(Extractor, URL)"]
    assert finest["n_provenances"] != coarsest["n_provenances"]
