"""Benchmark: Figure 9 — calibration of the basic fusion methods.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig9.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig9(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig9")
    assert result.data["VOTE"]["auc_pr"] == min(
        result.data[m]["auc_pr"] for m in ("VOTE", "ACCU", "POPACCU")
    )
