"""Benchmark fixtures.

All benches share one deterministic ``small``-scale scenario (~35K
extraction records); it is built once per session.  Each bench regenerates
one table/figure of the paper through the experiment registry, times it
with pytest-benchmark, and writes the rendered rows/series to
``benchmarks/results/<id>.txt`` so the numbers that back EXPERIMENTS.md
are reproducible artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import build_scenario, small_config


@pytest.fixture(scope="session")
def scenario():
    return build_scenario(small_config(seed=0))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def run_and_record(benchmark, scenario, results_dir, experiment_id: str):
    """Shared bench body: time the experiment once, persist its report."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, scenario), rounds=1, iterations=1
    )
    (results_dir / f"{experiment_id}.txt").write_text(result.text + "\n")
    assert result.data
    return result
