"""Benchmark fixtures.

All cases share one :class:`benchmarks.registry.BenchContext` per
session: the deterministic ``small``-scale scenario is built once, and
the parallel cases reuse a single warm process pool (released at session
end).  Case bodies live in ``benchmarks/registry.py``; this conftest only
wires them into pytest.
"""

from __future__ import annotations

import pytest

from benchmarks.registry import BenchContext


@pytest.fixture(scope="session")
def bench_context():
    ctx = BenchContext(scale="small", seed=0)
    yield ctx
    ctx.close()
