"""Benchmark: Figure 12 — gold-standard accuracy initialisation.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig12.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig12(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig12")
    assert result.data["100%"]["auc_pr"] > result.data["default"]["auc_pr"]
