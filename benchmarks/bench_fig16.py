"""Benchmark: Figure 16 — distribution of predicted probabilities.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig16.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig16(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig16")
    # The paper sees 80% of triples below 0.1 or above 0.9; polarisation is
    # weaker at laptop scale (fewer provenances per item), so the bench
    # asserts the direction, not the paper's magnitude.
    assert result.data["share_low"] + result.data["share_high"] > 0.3
    assert result.data["share_low"] > result.data["share_high"]
