"""Benchmark: Figure 21 — confidence behaviour of four extractors.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig21.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig21(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig21")
    assert set(result.data) == {"TXT1", "DOM2", "TBL1", "ANO"}
    # DOM2 reports extremes: most confidences at the edges.
    dom2 = dict(result.data["DOM2"]["coverage"])
    assert dom2[0.1] > 0.3
