"""Ablation benches for the §5 future-direction fusers.

Each bench runs one extension fuser against its natural baseline on the
shared scenario and records the comparison — the ablation counterpart to
DESIGN.md's extension table.
"""

from repro.experiments.common import metrics_for
from repro.fusion import FusionConfig, accu, popaccu
from repro.fusion.extensions import (
    ConfidenceWeightedFuser,
    HierarchicalFuser,
    MultiTruthFuser,
    SplitQualityFuser,
)
from repro.report import format_table


def _record(results_dir, name, rows, extra=""):
    text = format_table(
        ("model", "Dev.", "WDev.", "AUC-PR"), rows, title=name, float_digits=4
    )
    if extra:
        text += "\n" + extra
    (results_dir / f"{name}.txt").write_text(text + "\n")


def bench_ext_split(benchmark, scenario, results_dir):
    """Direction 1: factored extractor × source quality vs plain ACCU."""
    fusion_input = scenario.fusion_input()
    result = benchmark.pedantic(
        SplitQualityFuser(FusionConfig()).fuse, args=(fusion_input,),
        rounds=1, iterations=1,
    )
    base = accu().fuse(fusion_input)
    ours = metrics_for(result.probabilities, scenario.gold)
    baseline = metrics_for(base.probabilities, scenario.gold)
    quality = result.diagnostics["extractor_quality"]
    extra = "learned extractor quality: " + ", ".join(
        f"{k}={v:.2f}" for k, v in sorted(quality.items(), key=lambda kv: -kv[1])
    )
    _record(
        results_dir,
        "ext_split",
        [("SPLITQ", *ours.row()), ("ACCU", *baseline.row())],
        extra,
    )
    # The factored model must at least rank the sloppy extractor below the
    # careful ones.
    assert quality["DOM2"] < quality["DOM3"]
    assert quality["DOM2"] < quality["TXT4"]


def bench_ext_funct(benchmark, scenario, results_dir):
    """Direction 3: multi-truth fusion vs single-truth POPACCU."""
    fusion_input = scenario.fusion_input()
    fuser = MultiTruthFuser(FusionConfig(max_rounds=3))
    result = benchmark.pedantic(
        fuser.fuse, args=(fusion_input,), rounds=1, iterations=1
    )
    base = popaccu().fuse(fusion_input)
    world = scenario.world

    def non_functional_recall(probabilities):
        hits = total = 0
        for triple, probability in probabilities.items():
            predicate = world.schema.predicates.get(triple.predicate)
            if predicate is None or predicate.functional:
                continue
            if world.is_true_exact(triple):
                total += 1
                hits += probability > 0.5
        return hits / total if total else 0.0

    ours = non_functional_recall(result.probabilities)
    baseline = non_functional_recall(base.probabilities)
    functionality = result.diagnostics["functionality"]
    extra = (
        f"recall of true non-functional values at p>0.5 (vs world truth): "
        f"MULTITRUTH={ours:.3f} POPACCU={baseline:.3f}\n"
        "learned functionality (top 3): "
        + ", ".join(
            f"{pid.rsplit('/', 1)[-1]}={v:.2f}"
            for pid, v in sorted(functionality.items(), key=lambda kv: -kv[1])[:3]
        )
    )
    ours_m = metrics_for(result.probabilities, scenario.gold)
    base_m = metrics_for(base.probabilities, scenario.gold)
    _record(
        results_dir,
        "ext_funct",
        [("MULTITRUTH", *ours_m.row()), ("POPACCU", *base_m.row())],
        extra,
    )
    assert ours >= baseline  # dropping single-truth must not lose truths


def bench_ext_hier(benchmark, scenario, results_dir):
    """Direction 4: hierarchical value support vs plain ACCU.

    Scored against *world* truth (hierarchy-aware), because LCWA labels
    true-but-general values false — the very artifact direction 4 fixes.
    """
    fusion_input = scenario.fusion_input()
    fuser = HierarchicalFuser(
        scenario.world.schema, scenario.world.hierarchy, FusionConfig(max_rounds=3)
    )
    result = benchmark.pedantic(
        fuser.fuse, args=(fusion_input,), rounds=1, iterations=1
    )
    base = accu().fuse(fusion_input)
    world = scenario.world

    def hierarchical_recall(probabilities):
        hits = total = 0
        for triple, probability in probabilities.items():
            predicate = world.schema.predicates.get(triple.predicate)
            if predicate is None or not predicate.hierarchical:
                continue
            if world.is_true(triple):  # exact or true generalisation
                total += 1
                hits += probability > 0.5
        return hits / total if total else 0.0

    ours = hierarchical_recall(result.probabilities)
    baseline = hierarchical_recall(base.probabilities)
    extra = (
        f"recall of true (incl. generalised) hierarchical values at p>0.5: "
        f"HIERACCU={ours:.3f} ACCU={baseline:.3f}"
    )
    ours_m = metrics_for(result.probabilities, scenario.gold)
    base_m = metrics_for(base.probabilities, scenario.gold)
    _record(
        results_dir,
        "ext_hier",
        [("HIERACCU", *ours_m.row()), ("ACCU", *base_m.row())],
        extra,
    )
    assert ours >= baseline


def bench_ext_conf(benchmark, scenario, results_dir):
    """Direction 5: confidence-weighted votes vs plain ACCU."""
    fusion_input = scenario.fusion_input()
    fuser = ConfidenceWeightedFuser(FusionConfig())
    result = benchmark.pedantic(
        fuser.fuse, args=(fusion_input,), rounds=1, iterations=1
    )
    base = accu().fuse(fusion_input)
    ours = metrics_for(result.probabilities, scenario.gold)
    baseline = metrics_for(base.probabilities, scenario.gold)
    _record(
        results_dir,
        "ext_conf",
        [("CONFACCU", *ours.row()), ("ACCU", *baseline.row())],
    )
    assert ours.auc_pr > baseline.auc_pr - 0.05
