"""Benchmark: Figure 3 — content-type contributions and overlaps.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig3.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig3(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig3")
    contributions = result.data["contributions"]
    assert contributions["DOM"] == max(contributions.values())
    assert contributions["TBL"] == min(contributions.values())
    # Overlaps are small relative to contributions.
    assert max(result.data["overlaps"].values()) < contributions["DOM"] * 0.5
