"""Benchmark: Figure 6 — accuracy by #extractors.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig6.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig6(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig6")
    points = result.data["points"]
    assert points, "no accuracy points"
    lows = [a for x, _n, a in points if x == 1]
    highs = [a for x, _n, a in points if x >= 4]
    assert not highs or not lows or max(highs) > lows[0]
