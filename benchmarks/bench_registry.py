"""The pytest-benchmark face of the registry.

One parametrized bench per registered case — the same bodies
``benchmarks/run.py`` executes, timed by pytest-benchmark when the plugin
is enabled.  Collect explicitly (benchmarks are excluded from the tier-1
``testpaths``)::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-enable

Every case asserts its parity contract before timing and persists its
text report under ``benchmarks/results/`` exactly as the runner does; the
``bench_context`` fixture (``conftest.py``) supplies the shared scenario
cache and warm executor once per session.
"""

from __future__ import annotations

import pytest

from benchmarks.registry import REGISTRY


@pytest.mark.parametrize("name", sorted(REGISTRY))
def bench_case(benchmark, bench_context, name):
    case = REGISTRY[name]
    report = benchmark.pedantic(
        case.run, args=(bench_context,), rounds=1, iterations=1
    )
    assert report, f"case {name} returned an empty report"
