"""Benchmark: Figure 15 — PR curves of the five models.

Regenerates the paper artifact on the shared small-scale scenario and
records the rendered rows in ``benchmarks/results/fig15.txt``.
"""

from benchmarks.conftest import run_and_record


def bench_fig15(benchmark, scenario, results_dir):
    result = run_and_record(benchmark, scenario, results_dir, "fig15")
    assert result.data["POPACCU+"]["auc_pr"] == max(
        d["auc_pr"] for d in result.data.values()
    )
