"""Docs lint: keep the documentation front door from rotting.

Three classes of drift this catches, all run in CI and in the tier-1
suite (``tests/test_docs.py``):

1. **Dead relative links** — every ``[text](target)`` in the tracked
   markdown files must resolve to a file or directory in the tree
   (anchors stripped; absolute URLs skipped).
2. **CLI docs out of sync** — every ``repro-kf <subcommand>`` mention in
   the docs must name a real subcommand of the argparse parser, every
   fusion backend in ``repro.fusion.BACKENDS`` (and pipeline backend in
   ``repro.endtoend.PIPELINE_BACKENDS``) must be documented in the README
   backend matrix, and the README must mention every subcommand the CLI
   actually exposes.
3. **Benchmark entrypoints out of sync** — every ``benchmarks/<x>.py``
   script the docs mention must exist (the 25 ad-hoc ``bench_fig*``
   scripts were replaced by the registry runner), and the README must
   document the ``benchmarks/run.py`` entrypoint itself plus the
   perf-trajectory surface (``benchmarks/compare.py`` and the
   ``--compare`` regression gate).
4. **Tool entrypoints out of sync** — every lint entrypoint under
   ``tools/`` (docs lint, contracts lint) must be mentioned somewhere in
   the tracked docs, and every ``tools/<x>.py`` the docs mention must
   exist.
5. **Scale presets out of sync** — every ``--scale`` preset the CLI
   exposes (``repro.cli._SCALES``) must have a row in the README
   scale-preset table, so adding a tier without documenting its memory
   and wall-clock expectations fails CI.

Usage::

    python tools/docs_lint.py        # exits non-zero with a report
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Markdown files whose relative links must resolve.
LINKED_DOCS = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/SCALING.md",
    "ROADMAP.md",
    "src/repro/mapreduce/README.md",
)

#: Docs whose ``repro-kf <subcommand>`` mentions must match the parser.
CLI_DOCS = ("README.md", "docs/ARCHITECTURE.md", "docs/SCALING.md")

#: Docs whose ``benchmarks/<script>.py`` mentions must name real files.
BENCH_DOCS = CLI_DOCS + ("ROADMAP.md", "src/repro/mapreduce/README.md")

#: Docs that may satisfy the tool-entrypoint documentation requirement.
TOOL_DOCS = CLI_DOCS + ("ROADMAP.md",)

#: Lint entrypoints that must stay documented: an undocumented checker
#: is a checker nobody runs locally before CI tells them about it.
REQUIRED_TOOLS = ("tools/docs_lint.py", "tools/contracts_lint.py")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CLI_MENTION = re.compile(r"repro-kf\s+([a-z][a-z0-9_-]*)")
_BENCH_SCRIPT = re.compile(r"benchmarks/([A-Za-z0-9_]+\.py)")
_TOOL_SCRIPT = re.compile(r"tools/([A-Za-z0-9_]+\.py)")


def check_links(root: Path = REPO_ROOT) -> list[str]:
    """Every relative markdown link resolves to an existing path."""
    errors: list[str] = []
    for name in LINKED_DOCS:
        doc = root / name
        if not doc.exists():
            errors.append(f"{name}: tracked doc is missing")
            continue
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (doc.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{name}: dead link -> {target}")
    return errors


def _cli_surface() -> tuple[set[str], set[str], set[str]]:
    """(subcommands, fusion backends, pipeline backends) from the code."""
    from repro.cli import _build_parser
    from repro.endtoend import PIPELINE_BACKENDS
    from repro.fusion import BACKENDS

    import argparse

    subcommands: set[str] = set()
    for action in _build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            subcommands.update(action.choices)
    return subcommands, set(BACKENDS), set(PIPELINE_BACKENDS)


def check_cli_sync(root: Path = REPO_ROOT) -> list[str]:
    """Doc'd subcommands exist; real subcommands and backends are doc'd."""
    errors: list[str] = []
    subcommands, backends, pipeline_backends = _cli_surface()

    mentioned: set[str] = set()
    for name in CLI_DOCS:
        doc = root / name
        if not doc.exists():
            errors.append(f"{name}: tracked doc is missing")
            continue
        text = doc.read_text()
        for token in _CLI_MENTION.findall(text):
            mentioned.add(token)
            if token not in subcommands:
                errors.append(
                    f"{name}: documents 'repro-kf {token}' but the CLI has "
                    f"no such subcommand (has: {sorted(subcommands)})"
                )

    readme_path = root / "README.md"
    if not readme_path.exists():
        # Already reported as a missing tracked doc above.
        return errors
    readme = readme_path.read_text()
    for subcommand in sorted(subcommands - mentioned):
        errors.append(
            f"README.md: CLI subcommand {subcommand!r} is undocumented"
        )
    for backend in sorted(backends):
        if f"`{backend}`" not in readme:
            errors.append(
                f"README.md: fusion backend {backend!r} missing from the "
                "backend matrix"
            )
    for backend in sorted(pipeline_backends):
        if f"`{backend}`" not in readme:
            errors.append(
                f"README.md: pipeline backend {backend!r} undocumented"
            )
    return errors


def check_bench_sync(root: Path = REPO_ROOT) -> list[str]:
    """Doc'd benchmark scripts exist; the runner itself is documented."""
    errors: list[str] = []
    for name in BENCH_DOCS:
        doc = root / name
        if not doc.exists():
            # Already reported by check_links for tracked docs.
            continue
        for script in sorted(set(_BENCH_SCRIPT.findall(doc.read_text()))):
            if not (root / "benchmarks" / script).exists():
                errors.append(
                    f"{name}: references benchmarks/{script}, which does "
                    "not exist (bench cases live in the registry now)"
                )
    readme_path = root / "README.md"
    if readme_path.exists():
        readme = readme_path.read_text()
        # The perf-trajectory surface must stay documented alongside the
        # runner itself: an ungated benchmark is a number nobody trusts.
        for token, what in (
            ("benchmarks/run.py", "the benchmark runner entrypoint"),
            ("benchmarks/compare.py", "the perf-trajectory comparator"),
            ("--compare", "the baseline regression gate flag"),
        ):
            if token not in readme:
                errors.append(f"README.md: {what} {token} is undocumented")
    return errors


def check_tool_sync(root: Path = REPO_ROOT) -> list[str]:
    """Doc'd tools exist; the required lint entrypoints are documented."""
    errors: list[str] = []
    mentioned: set[str] = set()
    for name in TOOL_DOCS:
        doc = root / name
        if not doc.exists():
            # Already reported by check_links for tracked docs.
            continue
        for script in sorted(set(_TOOL_SCRIPT.findall(doc.read_text()))):
            mentioned.add(f"tools/{script}")
            if not (root / "tools" / script).exists():
                errors.append(
                    f"{name}: references tools/{script}, which does not exist"
                )
    for tool in REQUIRED_TOOLS:
        if not (root / tool).exists():
            errors.append(f"{tool}: required lint entrypoint is missing")
        elif tool not in mentioned:
            errors.append(
                f"{tool}: lint entrypoint is undocumented (mention it in "
                f"one of {TOOL_DOCS})"
            )
    return errors


def check_scale_sync(root: Path = REPO_ROOT) -> list[str]:
    """Every CLI scale preset has a row in the README scale table."""
    from repro.cli import _SCALES

    readme_path = root / "README.md"
    if not readme_path.exists():
        # Already reported as a missing tracked doc by check_links.
        return []
    readme = readme_path.read_text()
    errors: list[str] = []
    for scale in sorted(_SCALES):
        # A table row starting "| `tiny`" — a prose mention is not enough;
        # the table is where RSS/wall-clock expectations live.
        if not re.search(rf"^\|\s*`{re.escape(scale)}`", readme, re.M):
            errors.append(
                f"README.md: scale preset {scale!r} has no row in the "
                "scale-preset table"
            )
    return errors


def run_lint(root: Path = REPO_ROOT) -> list[str]:
    return (
        check_links(root)
        + check_cli_sync(root)
        + check_bench_sync(root)
        + check_tool_sync(root)
        + check_scale_sync(root)
    )


def main() -> int:
    errors = run_lint()
    if errors:
        print(f"docs lint: {len(errors)} problem(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("docs lint: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
