#!/usr/bin/env python
"""Contract lint entrypoint for CI — exits non-zero on any finding.

Runs the AST contract checker (``repro.analysis``) over ``src/repro``
against the committed baseline.  Companion to ``docs_lint.py``: docs
lint keeps the documentation honest, this keeps the determinism
contracts honest.  Also reachable as ``repro-kf lint`` once the package
is installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import render_human, run_lint  # noqa: E402


def main() -> int:
    result = run_lint(REPO_ROOT)
    print(render_human(result))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
