"""The §5 future directions, implemented and measured.

Runs the four extension fusers next to the paper's POPACCU+ on one
scenario and reports the same metrics, plus each extension's headline
diagnostic:

- SPLITQ: the per-extractor quality factors it learned (compare Table 2);
- MULTITRUTH: learned predicate functionality (spouse ~1, actor >> 1);
- HIERACCU: how many hierarchy-related value pairs both score high;
- CONFACCU: effect of confidence weighting vs plain ACCU.

Run:  python examples/future_directions.py
"""

from repro.datasets import build_scenario, tiny_config
from repro.experiments.common import metrics_for, standard_fusion_results
from repro.fusion import FusionConfig, accu
from repro.fusion.extensions import (
    ConfidenceWeightedFuser,
    HierarchicalFuser,
    MultiTruthFuser,
    SplitQualityFuser,
)
from repro.report import format_table


def main() -> None:
    scenario = build_scenario(tiny_config(seed=0))
    fusion_input = scenario.fusion_input()
    gold = scenario.gold

    runs = {}
    runs["POPACCU+"] = standard_fusion_results(scenario)["POPACCU+"]
    runs["ACCU"] = accu().fuse(fusion_input)
    runs["SPLITQ"] = SplitQualityFuser(FusionConfig()).fuse(fusion_input)
    runs["MULTITRUTH"] = MultiTruthFuser(FusionConfig(max_rounds=3)).fuse(
        fusion_input
    )
    runs["HIERACCU"] = HierarchicalFuser(
        scenario.world.schema, scenario.world.hierarchy, FusionConfig(max_rounds=3)
    ).fuse(fusion_input)
    runs["CONFACCU"] = ConfidenceWeightedFuser(FusionConfig()).fuse(fusion_input)

    rows = []
    for name, result in runs.items():
        metrics = metrics_for(result.probabilities, gold)
        rows.append((name, metrics.dev, metrics.wdev, metrics.auc_pr))
    print(
        format_table(
            ("model", "Dev.", "WDev.", "AUC-PR"),
            rows,
            title="Future-direction fusers vs the paper's models",
            float_digits=4,
        )
    )

    quality = runs["SPLITQ"].diagnostics["extractor_quality"]
    print("\nSPLITQ learned extractor quality (direction 1):")
    for extractor, value in sorted(quality.items(), key=lambda kv: -kv[1]):
        print(f"  {extractor:6} {value:.2f}")

    functionality = runs["MULTITRUTH"].diagnostics["functionality"]
    print("\nMULTITRUTH learned functionality — expected #truths (direction 3):")
    interesting = sorted(functionality.items(), key=lambda kv: -kv[1])
    for pid, value in interesting[:5]:
        print(f"  {pid.rsplit('/', 1)[-1]:20} {value:.2f}")
    print("  ...")
    for pid, value in interesting[-3:]:
        print(f"  {pid.rsplit('/', 1)[-1]:20} {value:.2f}")

    # Direction 4: count items where a specific value and its ancestor both
    # end up plausible under the hierarchical fuser.
    both_high = 0
    by_item: dict = {}
    for triple, probability in runs["HIERACCU"].probabilities.items():
        by_item.setdefault(triple.data_item, []).append((triple, probability))
    hierarchy = scenario.world.hierarchy
    from repro.kb import EntityRef

    for item, scored in by_item.items():
        entities = [
            (t.obj.entity_id, p)
            for t, p in scored
            if isinstance(t.obj, EntityRef) and p > 0.5
        ]
        for i in range(len(entities)):
            for j in range(len(entities)):
                if i != j and hierarchy.is_ancestor(entities[i][0], entities[j][0]):
                    both_high += 1
    print(
        f"\nHIERACCU items where a value AND its ancestor both score > 0.5: "
        f"{both_high} (single-truth fusers force these to compete)"
    )


if __name__ == "__main__":
    main()
