"""Error analysis: why does the best model still get things wrong?

Reproduces the paper's §4.4 investigation (Figure 17) with receipts: runs
POPACCU+ on a synthetic scenario, categorises every false positive and
false negative against the known ground truth, and prints one concrete
example per category with human-readable entity names.

Run:  python examples/error_analysis_demo.py
"""

from repro.datasets import build_scenario, tiny_config
from repro.eval.analysis import analyze_errors
from repro.experiments.common import standard_fusion_results
from repro.kb import EntityRef, Triple


def pretty(scenario, triple: Triple) -> str:
    """Render a triple with entity names instead of mids."""

    def name_of(entity_id: str) -> str:
        try:
            return scenario.world.entities.get(entity_id).name
        except Exception:
            return entity_id

    obj = triple.obj
    obj_text = (
        name_of(obj.entity_id) if isinstance(obj, EntityRef) else obj.canonical()
    )
    return (
        f"({name_of(triple.subject)}, "
        f"{triple.predicate.rsplit('/', 1)[-1]}, {obj_text})"
    )


def main() -> None:
    scenario = build_scenario(tiny_config(seed=0))
    result = standard_fusion_results(scenario)["POPACCU+"]
    breakdown = analyze_errors(scenario, result.probabilities)

    print(
        f"POPACCU+ made {breakdown.n_false_positives} false positives "
        f"(p >= {breakdown.fp_threshold}) and {breakdown.n_false_negatives} "
        f"false negatives (p <= {breakdown.fn_threshold})\n"
    )
    print("false positives by cause (paper Fig 17 left):")
    for category, share in breakdown.fp_shares().items():
        count = breakdown.fp_categories[category]
        example = breakdown.fp_examples.get(category)
        print(f"  {category:28} {count:4d}  ({share:.0%})")
        if example is not None:
            print(f"      e.g. {pretty(scenario, example)}")
    if breakdown.fp_extraction_kinds:
        print("\n  extraction-error kinds among the genuine errors:")
        for kind, count in breakdown.fp_extraction_kinds.most_common():
            print(f"      {kind:26} {count}")

    print("\nfalse negatives by cause (paper Fig 17 right):")
    for category, share in breakdown.fn_shares().items():
        count = breakdown.fn_categories[category]
        example = breakdown.fn_examples.get(category)
        print(f"  {category:28} {count:4d}  ({share:.0%})")
        if example is not None:
            print(f"      e.g. {pretty(scenario, example)}")

    print(
        "\nReading guide: the paper found 50% of its false positives were"
        "\nnot errors at all but artifacts of the local closed-world"
        "\nassumption, and 65% of false negatives came from the single-truth"
        "\nassumption on non-functional predicates.  The categories above"
        "\nare computed exhaustively because the synthetic world knows the"
        "\ntrue cause of every mistake."
    )


if __name__ == "__main__":
    main()
