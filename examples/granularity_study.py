"""Provenance granularity: how to slice the 3-D input (paper §4.3.1).

Knowledge fusion flattens (extractor × source × data item) into 2-D by
choosing a provenance key.  This example sweeps all the granularities the
paper evaluates — including the two degenerate ones of Figure 9 — and
shows the trade-off the paper describes: coarser sources have more support
data for accuracy estimation but blur quality differences; finer sources
are sharper but starve.

Run:  python examples/granularity_study.py
"""

from dataclasses import replace

from repro.datasets import build_scenario, tiny_config
from repro.experiments.common import metrics_for
from repro.fusion import FusionConfig, Granularity, popaccu
from repro.report import format_table

LEVELS = (
    ("URL only ('Only src')", Granularity.URL_ONLY),
    ("pattern only ('Only ext')", Granularity.EXTRACTOR_PATTERN_ONLY),
    ("(Extractor, URL)", Granularity.EXTRACTOR_URL),
    ("(Extractor, Site)", Granularity.EXTRACTOR_SITE),
    ("(Ext, Site, Predicate)", Granularity.EXTRACTOR_SITE_PREDICATE),
    ("(Ext, Site, Pred, Pattern)", Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN),
)


def main() -> None:
    scenario = build_scenario(tiny_config(seed=0))
    fusion_input = scenario.fusion_input()

    rows = []
    for label, granularity in LEVELS:
        matrix = fusion_input.claims(granularity)
        support = list(matrix.provenance_support().values())
        singletons = sum(1 for s in support if s == 1) / len(support)
        config = replace(FusionConfig(), granularity=granularity)
        result = popaccu(config).fuse(fusion_input)
        metrics = metrics_for(result.probabilities, scenario.gold)
        rows.append(
            (
                label,
                len(support),
                f"{singletons:.0%}",
                metrics.dev,
                metrics.wdev,
                metrics.auc_pr,
            )
        )
    print(
        format_table(
            (
                "granularity",
                "#provenances",
                "singleton",
                "Dev.",
                "WDev.",
                "AUC-PR",
            ),
            rows,
            title="POPACCU across provenance granularities (paper Figs 9-10)",
            float_digits=4,
        )
    )
    print(
        "\n'singleton' = share of provenances contributing one triple —"
        "\nthe accuracy-evaluation starvation the coverage filter targets."
        "\nThe paper's best setting is the finest: (Extractor, Site,"
        "\nPredicate, Pattern)."
    )


if __name__ == "__main__":
    main()
