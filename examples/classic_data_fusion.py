"""Classic 2-D data fusion: the book-author scenario.

Before knowledge fusion there was data fusion (§2 of the paper): a flat
source × data-item matrix with no extractors in between.  This example
rebuilds the canonical motivating scenario of the ACCU line of work — a
set of online bookstores listing authors for the same books, with a sloppy
aggregator whose catalogue two mirrors copy verbatim — and shows why
accuracy-aware fusion beats voting when a wrong value arrives with extra
copied votes.

The key mechanic: on the *uncontested* books three honest stores outvote
the copiers, so the Bayesian fusers learn that the aggregator family is
unreliable; on the *contested* books (listed by only two honest stores)
that learned accuracy is what flips the outcome, while VOTE just counts
3 > 2 and gets them wrong.

In library terms a "source" is a provenance with a single URL and one
shared trivial extractor — exactly how the 2-D problem embeds into 3-D.

Run:  python examples/classic_data_fusion.py
"""

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionInput, accu, popaccu, vote
from repro.kb import StringValue, Triple

# The latent truth.
TRUTH = {
    "/book/rapport": "Marc Chen",
    "/book/harbor": "Ines Valdez",
    "/book/orchid": "Tomas Brandt",
    "/book/meridian": "Ada Okafor",
    "/book/lantern": "Noor Haddad",
    "/book/sundial": "Petra Lindqvist",
}

# Books where the aggregator is wrong and the honest stores outnumber the
# copiers 4 to 3 — the copiers' visible track record.
_COMMON_WRONG = {
    "/book/harbor": "I. Valdez-Smith",
    "/book/meridian": "A. Okafor Ltd.",
    "/book/lantern": "N. Haddad & Sons",
    "/book/sundial": "P. Lindqvist Jr.",
}
# Contested books: three honest stores against the three copiers — a dead
# tie by headcount.
_CONTESTED_WRONG = {
    "/book/rapport": "M. Chen Jr.",
    "/book/orchid": "T. Brandt & Co.",
}

CLAIMS = {
    "honest1": dict(TRUTH),
    "honest2": dict(TRUTH),
    "honest3": dict(TRUTH),
    "honest4": {k: v for k, v in TRUTH.items() if k in _COMMON_WRONG},
    "aggregator": {**_COMMON_WRONG, **_CONTESTED_WRONG},
    "mirror1": {**_COMMON_WRONG, **_CONTESTED_WRONG},
    "mirror2": {**_COMMON_WRONG, **_CONTESTED_WRONG},
}


def main() -> None:
    records = []
    for store, catalog in CLAIMS.items():
        for book, author in catalog.items():
            records.append(
                ExtractionRecord(
                    triple=Triple(book, "book/book/author", StringValue(author)),
                    extractor="STORE",  # one shared trivial "extractor"
                    url=f"http://{store}.example.org/catalog",
                    site=f"{store}.example.org",
                    content_type="TBL",
                )
            )
    fusion_input = FusionInput(records)
    results = [fuser.fuse(fusion_input) for fuser in (vote(), accu(), popaccu())]

    print("book-author fusion with a copied-but-wrong aggregator\n")
    header = f"{'book':12}{'candidate':20}" + "".join(
        f"{r.method:>10}" for r in results
    )
    print(header + "   truth?")
    print("-" * (len(header) + 9))
    for triple in sorted(results[0].probabilities):
        is_true = TRUTH[triple.subject] == triple.obj.text
        contested = triple.subject in _CONTESTED_WRONG
        row = f"{triple.subject.split('/')[-1]:12}{triple.obj.text:20}"
        for result in results:
            row += f"{result.probabilities[triple]:10.3f}"
        marks = (" <- true" if is_true else "") + (" (contested)" if contested else "")
        print(row + marks)

    contested_right = all(
        result.probabilities[
            Triple(book, "book/book/author", StringValue(TRUTH[book]))
        ]
        > 0.5
        for result in results[1:]  # ACCU and POPACCU
        for book in _CONTESTED_WRONG
    )
    print(
        "\nOn the contested books the headcount is a 3-3 tie, so VOTE is"
        "\nstuck at 0.5; the Bayesian fusers have learned from the other"
        "\nfour books that the aggregator family is unreliable, and get "
        + ("them right." if contested_right else "them wrong (unexpected!).")
    )


if __name__ == "__main__":
    main()
