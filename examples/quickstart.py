"""Quickstart: fuse a handful of conflicting extractions.

The smallest possible knowledge-fusion session: build extraction records
by hand (three extractors disagreeing about Tom Cruise's birth date across
a few pages), run the three basic fusers, and print the probability each
assigns to each candidate value.

Run:  python examples/quickstart.py
"""

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionInput, accu, popaccu, vote
from repro.kb import DateValue, Triple


def claim(date: str, extractor: str, url: str) -> ExtractionRecord:
    """One extraction: (Tom Cruise, birth date, <date>) from one page."""
    return ExtractionRecord(
        triple=Triple("/m/07r1h", "people/person/birth_date", DateValue(date)),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
    )


def main() -> None:
    records = [
        # The right date, extracted by two extractors from four pages.
        claim("1962-07-03", "TXT1", "http://wiki0.example.org/tom"),
        claim("1962-07-03", "DOM1", "http://wiki0.example.org/tom"),
        claim("1962-07-03", "DOM1", "http://news01.example.org/profile"),
        claim("1962-07-03", "TXT1", "http://site0042.example.org/bio"),
        # A month/day swap made by one extractor on two pages.
        claim("1962-03-07", "DOM2", "http://site0100.example.org/tom"),
        claim("1962-03-07", "DOM2", "http://site0101.example.org/tom"),
        # A lone off-by-one-year error.
        claim("1963-07-03", "TXT1", "http://site0200.example.org/facts"),
    ]
    fusion_input = FusionInput(records)

    print("claims: 7 extraction records, 3 candidate dates\n")
    header = f"{'value':14}" + "".join(
        f"{name:>12}" for name in ("VOTE", "ACCU", "POPACCU")
    )
    print(header)
    print("-" * len(header))
    results = [fuser.fuse(fusion_input) for fuser in (vote(), accu(), popaccu())]
    for triple in sorted(results[0].probabilities):
        row = f"{triple.obj.iso:14}"
        for result in results:
            row += f"{result.probabilities[triple]:12.3f}"
        print(row)
    print(
        "\nAll three favour 1962-07-03; the Bayesian fusers additionally"
        "\ndiscount DOM2's repeated swap once its accuracy estimate drops."
    )


if __name__ == "__main__":
    main()
