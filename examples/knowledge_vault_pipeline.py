"""The full knowledge-fusion pipeline at laptop scale.

Recreates the paper's end-to-end flow on a synthetic web:

1. generate a ground-truth world and a Freebase-like snapshot;
2. generate a web corpus (sites, pages, source errors, copying);
3. run all 12 extractors over the rendered content;
4. build the LCWA gold standard;
5. fuse with the five models of the paper (VOTE, ACCU, POPACCU,
   POPACCU+(unsup), POPACCU+) and report calibration and AUC-PR;
6. show a slice of the calibration curve for the best model.

Run:  python examples/knowledge_vault_pipeline.py [--scale tiny|small]
"""

import argparse
import time

from repro.datasets import build_scenario, small_config, tiny_config
from repro.eval.calibration import calibration_curve
from repro.experiments.common import metrics_for, standard_fusion_results
from repro.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", choices=("tiny", "small"), default="tiny")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = (tiny_config if args.scale == "tiny" else small_config)(seed=args.seed)
    started = time.time()
    scenario = build_scenario(config)
    stats = scenario.extraction_stats()
    print(
        f"scenario built in {time.time() - started:.1f}s: "
        f"{stats['extracted_records']} extraction records, "
        f"{stats['unique_triples']} unique triples, "
        f"{stats['data_items']} data items"
    )
    print(
        f"gold standard: {stats['gold_coverage']:.0%} of triples labelled, "
        f"{stats['gold_accuracy']:.0%} of labelled triples true "
        f"(paper: 40% / ~30%)\n"
    )

    results = standard_fusion_results(scenario)
    rows = []
    for name, result in results.items():
        metrics = metrics_for(result.probabilities, scenario.gold)
        rows.append(
            (name, metrics.dev, metrics.wdev, metrics.auc_pr, result.coverage())
        )
    print(
        format_table(
            ("method", "Dev.", "WDev.", "AUC-PR", "predicted"),
            rows,
            title="Fusion quality (cf. paper Figures 9/13/15)",
            float_digits=4,
        )
    )

    best = results["POPACCU+"]
    curve = calibration_curve(best.probabilities, scenario.gold)
    print("\nPOPACCU+ calibration (predicted -> real, non-empty buckets):")
    for bucket in curve.buckets:
        if bucket.count:
            bar = "#" * round(bucket.real * 30)
            print(
                f"  [{bucket.low:4.2f},{bucket.high:4.2f})  "
                f"n={bucket.count:5d}  pred={bucket.predicted:.2f}  "
                f"real={bucket.real:.2f}  {bar}"
            )


if __name__ == "__main__":
    main()
