"""Unit tests for the named fusion presets."""

import pytest

from repro.errors import ConfigError
from repro.fusion import (
    FusionConfig,
    Granularity,
    accu,
    popaccu,
    popaccu_plus,
    popaccu_plus_unsup,
    vote,
)


class TestNames:
    def test_method_names(self):
        assert vote().name == "VOTE"
        assert accu().name == "ACCU"
        assert popaccu().name == "POPACCU"
        assert popaccu_plus_unsup().name == "POPACCU+(unsup)"
        assert popaccu_plus({}).name == "POPACCU+"


class TestPlusConfiguration:
    def test_plus_unsup_turns_on_refinements(self):
        fuser = popaccu_plus_unsup()
        assert fuser.config.filter_by_coverage
        assert fuser.config.min_accuracy == pytest.approx(0.5)
        assert (
            fuser.config.granularity
            is Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN
        )
        assert fuser.gold_labels is None

    def test_plus_keeps_gold(self, tiny_scenario):
        fuser = popaccu_plus(tiny_scenario.gold)
        assert fuser.gold_labels is tiny_scenario.gold

    def test_plus_rejects_non_dict_gold(self):
        with pytest.raises(ConfigError):
            popaccu_plus(gold_labels=[("not", "a dict")])

    def test_custom_theta(self):
        fuser = popaccu_plus_unsup(theta=0.3)
        assert fuser.config.min_accuracy == pytest.approx(0.3)

    def test_base_config_preserved(self):
        base = FusionConfig(max_rounds=9, seed=42)
        fuser = popaccu_plus_unsup(base)
        assert fuser.config.max_rounds == 9
        assert fuser.config.seed == 42


class TestDefaults:
    def test_paper_defaults(self):
        config = vote().config
        assert config.n_false_values == 100
        assert config.default_accuracy == pytest.approx(0.8)
        assert config.max_rounds == 5
        assert config.sample_limit == 1_000_000
