"""The hybrid backend contract: batched kernels inside parallel shards.

What ``backend="hybrid"`` promises, tested on real seeded scenarios:

1. **Tolerance parity**: hybrid fused output matches the serial scalar
   reference (and therefore the bit-identical scalar-parallel backend)
   within 1e-9 absolute — on the ``small`` scenario, at 1, 2 and 4
   workers, under both fork and spawn start methods.  Bitwise equality is
   *not* promised: the in-shard kernels sum in array order.
2. **Payload purity**: hybrid shard payloads are integer ids plus
   contiguous buffers and the picklable kernel — no ``Claim``/``Triple``/
   ``DataItem``/``ExtractionRecord`` objects cross per shard.
3. **Graceful degradation**: kernels without a batched form, and runs
   where reducer-input sampling engages, degrade to the scalar parallel
   shards (``"parallel (hybrid fallback)"``, bitwise) — never to the
   in-process serial reference.
"""

import pickle

import pytest

from repro.datasets import build_scenario, small_config
from repro.extract.records import ExtractionRecord
from repro.fusion import (
    FusionConfig,
    PARITY_TOLERANCE_ABS,
    popaccu,
    popaccu_plus,
    vote,
)
from repro.fusion.observations import Claim
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.fusion.runner import run_bayesian_fusion
from repro.kb.triples import DataItem, Triple
from repro.mapreduce import executors
from repro.mapreduce.codec import scan_payload_types
from repro.mapreduce.executors import ParallelExecutor

pytestmark = pytest.mark.parallel_backend

FORBIDDEN = (Claim, Triple, DataItem, ExtractionRecord)

WORKER_COUNTS = (1, 2, 4)
START_METHODS = ("fork", "spawn")


@pytest.fixture(scope="module")
def small_scenario():
    """The ``small`` scale the acceptance criteria name (module-scoped:
    generation dominates, the fusion runs under test are cheap)."""
    return build_scenario(small_config(seed=0))


@pytest.fixture(scope="module")
def small_serial_reference(small_scenario):
    return popaccu_plus(small_scenario.gold, backend="serial").fuse(
        small_scenario.fusion_input()
    )


def assert_tolerance_parity(serial, other, tol=PARITY_TOLERANCE_ABS):
    assert set(other.probabilities) == set(serial.probabilities)
    for triple, probability in serial.probabilities.items():
        assert other.probabilities[triple] == pytest.approx(probability, abs=tol)
    assert set(other.accuracies) == set(serial.accuracies)
    for prov, accuracy in serial.accuracies.items():
        assert other.accuracies[prov] == pytest.approx(accuracy, abs=tol)
    assert other.unpredicted == serial.unpredicted
    assert other.rounds == serial.rounds
    assert other.converged == serial.converged


class TestHybridParity:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_popaccu_plus_small_within_tolerance(
        self, small_scenario, small_serial_reference, n_workers, start_method
    ):
        """The flagship preset across the full worker/start-method matrix
        on the ``small`` scenario (36.8K records)."""
        with ParallelExecutor(
            max_workers=n_workers, start_method=start_method
        ) as executor:
            hybrid = popaccu_plus(small_scenario.gold, backend="hybrid").fuse(
                small_scenario.fusion_input(), executor=executor
            )
            assert executor.fallbacks_unpicklable == 0
        assert hybrid.diagnostics["backend_used"] == "hybrid"
        assert hybrid.diagnostics["parity"] == "tolerance"
        assert_tolerance_parity(small_serial_reference, hybrid)

    def test_matches_scalar_parallel_within_tolerance(
        self, small_scenario, small_serial_reference
    ):
        """Hybrid vs the bit-identical scalar-parallel backend directly."""
        parallel = popaccu_plus(small_scenario.gold, backend="parallel").fuse(
            small_scenario.fusion_input()
        )
        assert parallel.diagnostics["parity"] == "bitwise"
        assert parallel.probabilities == small_serial_reference.probabilities
        hybrid = popaccu_plus(small_scenario.gold, backend="hybrid").fuse(
            small_scenario.fusion_input()
        )
        assert_tolerance_parity(parallel, hybrid)

    def test_vote_hybrid(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = vote(backend="serial").fuse(fusion_input)
        hybrid = vote(backend="hybrid").fuse(fusion_input)
        assert hybrid.diagnostics["backend_used"] == "hybrid"
        assert hybrid.diagnostics["parity"] == "tolerance"
        assert set(hybrid.probabilities) == set(serial.probabilities)
        for triple, probability in serial.probabilities.items():
            assert hybrid.probabilities[triple] == pytest.approx(
                probability, abs=PARITY_TOLERANCE_ABS
            )

    def test_diagnostics_match_serial(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(backend="serial").fuse(fusion_input)
        hybrid = popaccu(backend="hybrid").fuse(fusion_input)
        for key in ("n_items", "n_provenances", "n_claims", "n_active_final",
                    "gold_initialized"):
            assert hybrid.diagnostics[key] == serial.diagnostics[key], key
        assert serial.diagnostics["parity"] == "bitwise"
        assert hybrid.diagnostics["parity"] == "tolerance"


class TestThetaBoundaryRescue:
    def test_vectorized_small_within_tolerance(
        self, small_scenario, small_serial_reference
    ):
        """Regression for the latent θ-flip divergence: before the
        boundary rescue, batched Stage-II drift flipped ``A(S) >= θ``
        decisions on the ``small`` scenario (POPACCU valleys park many
        accuracies exactly at θ = 0.5) and the vectorized backend drifted
        to O(1) probability differences.  With the rescue, every active
        set matches serial and tolerance parity holds at scale."""
        vectorized = popaccu_plus(small_scenario.gold, backend="vectorized").fuse(
            small_scenario.fusion_input()
        )
        assert vectorized.diagnostics["backend_used"] == "vectorized"
        assert (
            vectorized.diagnostics["n_active_final"]
            == small_serial_reference.diagnostics["n_active_final"]
        )
        assert_tolerance_parity(small_serial_reference, vectorized)


class TestHybridFallbacks:
    def test_closure_kernel_degrades_to_scalar_parallel(self, micro_scenario):
        """No ``batch_round`` → the scalar parallel shards, not serial."""
        fusion_input = micro_scenario.fusion_input()
        result = run_bayesian_fusion(
            fusion_input=fusion_input,
            config=FusionConfig(backend="hybrid", max_rounds=2),
            item_posterior_fn=lambda claims, acc: popaccu_item_posteriors(
                claims, acc
            ),
            method_name="POPACCU-closure",
        )
        assert result.diagnostics["backend_used"] == "parallel (hybrid fallback)"
        assert result.diagnostics["parity"] == "bitwise"
        reference = popaccu(FusionConfig(backend="serial", max_rounds=2)).fuse(
            fusion_input
        )
        assert result.probabilities == reference.probabilities

    def test_sampling_degrades_to_scalar_parallel_bitwise(self, micro_scenario):
        """Batched kernels cannot subset per item, so sampling pressure
        swaps in the scalar shards — which stay bit-identical to serial
        via the canonical-order sampling contract."""
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(FusionConfig(sample_limit=2, backend="serial")).fuse(
            fusion_input
        )
        hybrid = popaccu(FusionConfig(sample_limit=2, backend="hybrid")).fuse(
            fusion_input
        )
        assert hybrid.diagnostics["backend_used"] == "parallel (hybrid fallback)"
        assert hybrid.diagnostics["parity"] == "bitwise"
        assert hybrid.diagnostics["sampling"] == "canonical-order"
        assert hybrid.probabilities == serial.probabilities
        assert hybrid.accuracies == serial.accuracies

    def test_vote_sampling_degrades_to_scalar_parallel(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = vote(FusionConfig(sample_limit=2, backend="serial")).fuse(
            fusion_input
        )
        hybrid = vote(FusionConfig(sample_limit=2, backend="hybrid")).fuse(
            fusion_input
        )
        assert hybrid.diagnostics["backend_used"] == "parallel (hybrid fallback)"
        assert hybrid.probabilities == serial.probabilities


class TestHybridPayloadPurity:
    def _record_submissions(self, monkeypatch):
        recorded = []
        original = executors.ProcessPoolExecutor.submit

        def spy(pool_self, fn, *args, **kwargs):
            recorded.append(args)
            return original(pool_self, fn, *args, **kwargs)

        monkeypatch.setattr(executors.ProcessPoolExecutor, "submit", spy)
        return recorded

    def test_hybrid_shards_carry_no_claim_objects(
        self, micro_scenario, monkeypatch
    ):
        recorded = self._record_submissions(monkeypatch)
        result = popaccu_plus(micro_scenario.gold, backend="hybrid").fuse(
            micro_scenario.fusion_input()
        )
        assert result.diagnostics["backend_used"] == "hybrid"
        assert recorded, "no hybrid shard tasks were dispatched"
        for args in recorded:
            spec_bytes, shard = args
            spec = pickle.loads(spec_bytes)
            for payload in (spec, shard):
                types = scan_payload_types(payload)
                offenders = [
                    t.__name__ for t in types if issubclass(t, FORBIDDEN)
                ]
                assert not offenders, (
                    f"hybrid shard payload carries domain objects: {offenders}"
                )
