"""Out-of-core claim matrix: accumulator parity and the column store.

Two contracts pin the whole `web` tier to the record-path semantics:

1. **Accumulator parity** — ``ClaimAccumulator`` fed any chunking of the
   records builds a ``ColumnarClaims`` equal field-for-field to
   ``ClaimMatrix.build(records, g).columnar()``.  Every downstream
   backend-parity guarantee rides on this.
2. **Mapped == in-memory** — a ``MappedColumnarClaims`` re-opened from
   the published store is numerically identical to the arrays it was
   built from; the mmap layer is a storage format, never a numeric
   change.  Plus the lifecycle half: pickling ships only the handle,
   ``close()`` releases the file descriptors, and a store whose files
   drifted is a loader *miss*, not a wrong answer.
"""

from __future__ import annotations

import os
import pickle
import sys

import numpy as np
import pytest

from repro.artifacts import (
    ColumnHandle,
    open_column_store,
    prune_cache,
    save_column_store,
)
from repro.fusion.matrix import (
    NUMERIC_COLUMNS,
    ClaimAccumulator,
    ColumnarClaimMatrix,
    ColumnarFusionInput,
    MappedColumnarClaims,
    persist_columns,
)
from repro.fusion.observations import ClaimMatrix
from repro.fusion.provenance import Granularity

GRANULARITIES = (
    Granularity.EXTRACTOR_SITE,
    Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN,
)


def _chunks(records, size):
    return [records[i : i + size] for i in range(0, len(records), size)]


def _assert_columns_equal(actual, expected):
    assert actual.granularity == expected.granularity
    assert list(actual.items) == list(expected.items)
    assert list(actual.triples) == list(expected.triples)
    assert list(actual.provenances) == list(expected.provenances)
    for name in NUMERIC_COLUMNS:
        got, want = getattr(actual, name), getattr(expected, name)
        assert got.dtype == want.dtype, name
        assert np.array_equal(got, want), name
    assert np.array_equal(actual.canonical_rank(), expected.canonical_rank())


def _accumulate(records, granularity, chunk_size):
    accumulator = ClaimAccumulator(granularity)
    for chunk in _chunks(records, chunk_size):
        accumulator.add_records(chunk)
    return accumulator


class TestClaimAccumulator:
    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_equals_record_built_columns(self, tiny_scenario, granularity):
        records = tiny_scenario.records
        expected = ClaimMatrix.build(records, granularity).columnar()
        built = _accumulate(records, granularity, 97).build()
        _assert_columns_equal(built, expected)

    def test_chunking_is_invisible(self, tiny_scenario):
        records = tiny_scenario.records
        granularity = Granularity.EXTRACTOR_SITE
        one = _accumulate(records, granularity, len(records)).build()
        many = _accumulate(records, granularity, 13).build()
        _assert_columns_equal(many, one)

    def test_unique_triples_sorted(self, tiny_scenario):
        records = tiny_scenario.records
        accumulator = _accumulate(records, Granularity.EXTRACTOR_SITE, 50)
        assert accumulator.unique_triples() == sorted(
            {record.triple for record in records}
        )
        assert accumulator.n_records == len(records)

    def test_release_drops_state(self, tiny_scenario):
        accumulator = _accumulate(
            tiny_scenario.records, Granularity.EXTRACTOR_SITE, 50
        )
        accumulator.release()
        assert accumulator.n_rows == 0
        assert accumulator.build().n_claims == 0

    def test_empty_chunks_are_noops(self):
        accumulator = ClaimAccumulator(Granularity.EXTRACTOR_SITE)
        accumulator.add_records([])
        cols = accumulator.build()
        assert cols.n_rows == 0 and cols.n_claims == 0


@pytest.fixture
def tiny_columns(tiny_scenario):
    return ClaimMatrix.build(
        tiny_scenario.records, Granularity.EXTRACTOR_SITE
    ).columnar()


class TestMappedColumns:
    def test_persist_roundtrip_is_bitwise(self, tiny_columns, tmp_path):
        mapped = persist_columns(tiny_columns, tmp_path)
        try:
            _assert_columns_equal(mapped, tiny_columns)
            assert mapped.objects_loaded()  # adopted, no re-unpickle
        finally:
            mapped.close()

    def test_reopened_store_loads_objects_lazily(self, tiny_columns, tmp_path):
        handle = persist_columns(tiny_columns, tmp_path).handle
        reopened = MappedColumnarClaims(handle)
        try:
            assert not reopened.objects_loaded()
            # Numeric access must not force objects.pkl...
            assert reopened.n_claims == tiny_columns.n_claims
            assert not reopened.objects_loaded()
            # ...while object access loads them, once, equal.
            assert list(reopened.triples) == list(tiny_columns.triples)
            assert reopened.objects_loaded()
        finally:
            reopened.close()

    def test_pickle_ships_only_the_handle(self, tiny_columns, tmp_path):
        mapped = persist_columns(tiny_columns, tmp_path)
        try:
            blob = pickle.dumps(mapped)
            assert len(blob) < 2048
            clone = pickle.loads(blob)
            try:
                assert not clone.objects_loaded()
                _assert_columns_equal(clone, tiny_columns)
            finally:
                clone.close()
        finally:
            mapped.close()

    @pytest.mark.skipif(
        sys.platform != "linux", reason="/proc/self/fd is Linux-only"
    )
    def test_close_releases_file_descriptors(self, tiny_columns, tmp_path):
        before = len(os.listdir("/proc/self/fd"))
        mapped = MappedColumnarClaims(persist_columns(tiny_columns, tmp_path).handle)
        assert len(os.listdir("/proc/self/fd")) > before
        mapped.close()
        assert mapped.closed
        assert len(os.listdir("/proc/self/fd")) == before
        mapped.close()  # idempotent

    def test_publish_leaves_no_tmp_dirs(self, tiny_columns, tmp_path):
        persist_columns(tiny_columns, tmp_path).close()
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_publish_is_idempotent(self, tiny_columns, tmp_path):
        first = persist_columns(tiny_columns, tmp_path)
        second = persist_columns(tiny_columns, tmp_path)
        try:
            assert first.handle == second.handle
            stores = [p for p in tmp_path.iterdir() if p.name.startswith("columns-")]
            assert len(stores) == 1
        finally:
            first.close()
            second.close()


class TestColumnStoreLoader:
    def _publish(self, tiny_columns, tmp_path) -> ColumnHandle:
        mapped = persist_columns(tiny_columns, tmp_path)
        mapped.close()
        return mapped.handle

    def test_open_hit(self, tiny_columns, tmp_path):
        handle = self._publish(tiny_columns, tmp_path)
        reopened = open_column_store(handle.directory, verify=True)
        assert reopened == handle

    def test_miss_on_size_drift(self, tiny_columns, tmp_path):
        handle = self._publish(tiny_columns, tmp_path)
        path = handle.path_of("row_ptr.npy")
        path.write_bytes(path.read_bytes() + b"\0")
        assert open_column_store(handle.directory) is None

    def test_miss_on_checksum_drift_only_with_verify(self, tiny_columns, tmp_path):
        handle = self._publish(tiny_columns, tmp_path)
        path = handle.path_of("objects.pkl")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # same size, different content
        path.write_bytes(bytes(blob))
        assert open_column_store(handle.directory) is not None
        assert open_column_store(handle.directory, verify=True) is None

    def test_miss_on_unreadable_meta(self, tiny_columns, tmp_path):
        handle = self._publish(tiny_columns, tmp_path)
        handle.path_of("meta.json").write_text("not json")
        assert open_column_store(handle.directory) is None


class TestPruneCache:
    def test_dry_run_reports_and_keeps(self, tiny_columns, tmp_path):
        handle = persist_columns(tiny_columns, tmp_path).handle
        tmp_leftover = tmp_path / "columns-deadbeef.tmp-123"
        tmp_leftover.mkdir()
        broken = tmp_path / "columns-0000000000000000000000ff"
        broken.mkdir()  # no meta.json at all
        stale = prune_cache(tmp_path)
        assert stale == sorted([broken, tmp_leftover])
        assert tmp_leftover.exists() and broken.exists()  # dry run
        assert open_column_store(handle.directory) is not None

    def test_apply_removes_only_stale(self, tiny_columns, tmp_path):
        handle = persist_columns(tiny_columns, tmp_path).handle
        tmp_leftover = tmp_path / "scenario-cafe.tmp-9"
        tmp_leftover.mkdir()
        removed = prune_cache(tmp_path, apply=True)
        assert removed == [tmp_leftover]
        assert not tmp_leftover.exists()
        assert open_column_store(handle.directory) is not None

    def test_stale_code_version(self, tiny_columns, tmp_path, monkeypatch):
        import repro.artifacts as artifacts

        handle = persist_columns(tiny_columns, tmp_path).handle
        monkeypatch.setattr(artifacts, "code_version", lambda: "different")
        assert prune_cache(tmp_path) == [handle.path_of("meta.json").parent]

    def test_missing_dir_is_empty(self, tmp_path):
        assert prune_cache(tmp_path / "nope") == []


class TestColumnarAdapters:
    def test_matrix_adapter_equals_record_built(self, tiny_scenario, tiny_columns):
        reference = ClaimMatrix.build(
            tiny_scenario.records, Granularity.EXTRACTOR_SITE
        )
        adapter = ColumnarClaimMatrix(tiny_columns)
        assert adapter.items == reference.items
        assert adapter.prov_triples == reference.prov_triples
        assert adapter.n_claims() == reference.n_claims()
        assert adapter.provenance_support() == reference.provenance_support()
        assert adapter.all_triples() == reference.all_triples()

    def test_fusion_input_serves_one_granularity(self, tiny_columns):
        fusion_input = ColumnarFusionInput(tiny_columns)
        assert (
            fusion_input.claims(Granularity.EXTRACTOR_SITE).columnar()
            is tiny_columns
        )
        with pytest.raises(ValueError, match="re-extract"):
            fusion_input.claims(Granularity.URL_ONLY)
        assert len(fusion_input) == tiny_columns.n_claims
        assert fusion_input.unique_triples() == sorted(tiny_columns.triples)
