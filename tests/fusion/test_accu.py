"""Unit tests for the ACCU posterior math and the iterative fuser."""

import math

import pytest

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionConfig, FusionInput, accu
from repro.fusion.accu import accu_item_posteriors
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(obj):
    return Triple("/m/1", "t/t/p", StringValue(obj))


def rec(obj, extractor, url):
    return ExtractionRecord(
        triple=t(obj),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
    )


class TestPosteriorMath:
    def test_empty_claims(self):
        assert accu_item_posteriors({}, {}, 100) == {}

    def test_single_default_source_sticks_to_a(self):
        """One source at accuracy A=0.8 with N=100 false values: the
        posterior is exactly A (τ=ln(400); 400/(400+100) = 0.8)."""
        posteriors = accu_item_posteriors({t("a"): {("S",)}}, {("S",): 0.8}, 100)
        assert posteriors[t("a")] == pytest.approx(0.8)

    def test_vote_count_formula(self):
        # τ(S) = ln(N·A/(1−A)); check via a two-source agreement.
        accuracy = {("S1",): 0.8, ("S2",): 0.8}
        posteriors = accu_item_posteriors({t("a"): {("S1",), ("S2",)}}, accuracy, 100)
        tau = math.log(100 * 0.8 / 0.2)
        expected = math.exp(2 * tau) / (math.exp(2 * tau) + 100)
        assert posteriors[t("a")] == pytest.approx(expected)

    def test_higher_accuracy_source_wins_conflict(self):
        accuracy = {("good",): 0.95, ("bad",): 0.55}
        posteriors = accu_item_posteriors(
            {t("a"): {("good",)}, t("b"): {("bad",)}}, accuracy, 100
        )
        assert posteriors[t("a")] > posteriors[t("b")]

    def test_posteriors_never_exceed_one(self):
        accuracy = {(f"S{i}",): 0.99 for i in range(20)}
        claims = {t("a"): set(accuracy)}
        posteriors = accu_item_posteriors(claims, accuracy, 100)
        assert 0.0 <= posteriors[t("a")] <= 1.0

    def test_low_accuracy_source_votes_against(self):
        """A source with accuracy below 1/(N+1) has negative vote count, so
        its value gets less mass than an unobserved one."""
        posteriors = accu_item_posteriors({t("a"): {("S",)}}, {("S",): 0.001}, 100)
        assert posteriors[t("a")] < 1.0 / 101

    def test_extreme_accuracy_clamped(self):
        posteriors = accu_item_posteriors({t("a"): {("S",)}}, {("S",): 1.0}, 100)
        assert 0.0 <= posteriors[t("a")] <= 1.0


class TestAccuFuser:
    def test_agreement_beats_lone_dissent(self):
        records = [rec("a", "E1", "http://s1.org/p"), rec("a", "E2", "http://s2.org/p"),
                   rec("b", "E3", "http://s3.org/p")]
        result = accu().fuse(FusionInput(records))
        probs = {tr.obj.text: p for tr, p in result.probabilities.items()}
        assert probs["a"] > probs["b"]

    def test_respects_max_rounds(self, tiny_scenario):
        config = FusionConfig(max_rounds=2, convergence_tol=0.0)
        result = accu(config).fuse(tiny_scenario.fusion_input())
        assert result.rounds == 2

    def test_unanimous_input_converges_quickly(self):
        """Convergence on real corpora is slow (hence the forced R=5); on a
        conflict-free input the accuracies saturate within a few rounds."""
        records = [rec("a", f"E{i}", f"http://s{i}.org/p") for i in range(4)]
        config = FusionConfig(max_rounds=30, convergence_tol=1e-4)
        result = accu(config).fuse(FusionInput(records))
        assert result.converged
        assert result.rounds < 30

    def test_forced_termination_on_real_corpus(self, tiny_scenario):
        """The paper's motivation for R: the EM loop keeps moving for many
        rounds on real data, so termination must be forced."""
        config = FusionConfig(max_rounds=5, convergence_tol=1e-4)
        result = accu(config).fuse(tiny_scenario.fusion_input())
        assert result.rounds == 5
        assert not result.converged

    def test_all_probabilities_valid(self, tiny_scenario):
        result = accu().fuse(tiny_scenario.fusion_input())
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_accuracies_estimated_per_provenance(self, tiny_scenario):
        result = accu().fuse(tiny_scenario.fusion_input())
        assert result.accuracies
        for accuracy in result.accuracies.values():
            assert 0.0 <= accuracy <= 1.0
