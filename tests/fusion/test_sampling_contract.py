"""The canonical-order reducer-input sampling contract (the paper's L).

Sampling used to be defined positionally over each key's value *arrival
order* — a property of the scalar dataflow no sharded backend could
reproduce, so any ``L`` that engaged silently degraded the parallel
backend to the in-process serial reference.  The contract now: when
sampling engages, a key's values are put in canonical (sorted) order
before the deterministic positional draw (``MapReduceJob.sample_key``;
``sample_positions`` in the executors).  Consequences, each tested here:

1. Sampled subsets are a function of the value *set* — serial output is
   invariant under extraction-record shuffling even when L engages.
2. The columnar shard workers re-draw identical subsets against the
   pool-resident columns, so ``L``-sampled parallel runs are
   **bit-identical** to serial at every worker count and start method —
   and the old ``"serial (parallel fallback)"`` diagnostic never fires.
3. The contract is tagged in ``diagnostics["sampling"]``
   (``"canonical-order"`` whenever L is configured).
"""

import random

import pytest

from repro.fusion import FusionConfig, FusionInput, accu, popaccu, popaccu_plus
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.executors import ParallelExecutor, sample_positions

WORKER_COUNTS = (1, 2, 4)
START_METHODS = ("fork", "spawn")

#: Small enough that both Stage-I items and Stage-II provenances exceed it
#: on the micro scenario, so sampling genuinely engages in both stages.
TINY_L = 2


def assert_bit_identical(serial, other):
    assert other.probabilities == serial.probabilities
    assert other.accuracies == serial.accuracies
    assert other.unpredicted == serial.unpredicted
    assert other.rounds == serial.rounds
    assert other.converged == serial.converged


class TestSamplePositions:
    def test_none_when_not_engaged(self):
        assert sample_positions(5, "k", "job", None, 0) is None
        assert sample_positions(5, "k", "job", 5, 0) is None

    def test_deterministic_and_ascending(self):
        a = sample_positions(100, "k", "job", 10, 7)
        b = sample_positions(100, "k", "job", 10, 7)
        assert a == b
        assert a == sorted(a)
        assert len(a) == len(set(a)) == 10
        assert all(0 <= i < 100 for i in a)

    def test_depends_on_key_name_and_seed(self):
        base = sample_positions(100, "k", "job", 10, 7)
        assert sample_positions(100, "k2", "job", 10, 7) != base
        assert sample_positions(100, "k", "job2", 10, 7) != base
        assert sample_positions(100, "k", "job", 10, 8) != base


class TestEngineCanonicalSampling:
    @staticmethod
    def _pick_job(sample_key):
        return MapReduceJob(
            name="pick",
            mapper=lambda r: [("k", r)],
            reducer=lambda _k, values: [tuple(values)],
            sample_limit=5,
            seed=3,
            sample_key=sample_key,
        )

    def test_sample_key_makes_sample_order_invariant(self):
        engine = MapReduceEngine()
        data = list(range(100))
        shuffled = list(data)
        random.Random(1).shuffle(shuffled)
        job = self._pick_job(sample_key=lambda v: v)
        assert engine.run(data, job) == engine.run(shuffled, job)

    def test_without_sample_key_order_still_matters(self):
        """The legacy value-order draw is preserved for jobs that do not
        opt in (their sampled subsets were never a cross-backend
        contract)."""
        engine = MapReduceEngine()
        data = list(range(100))
        shuffled = list(data)
        random.Random(1).shuffle(shuffled)
        job = self._pick_job(sample_key=None)
        assert engine.run(data, job) != engine.run(shuffled, job)


@pytest.mark.parallel_backend
class TestSampledParallelParity:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_popaccu_plus_sampled_bit_identical_everywhere(
        self, micro_scenario, n_workers, start_method
    ):
        """The flagship preset, L engaged, across the full matrix."""
        fusion_input = micro_scenario.fusion_input()
        config = FusionConfig(sample_limit=TINY_L)
        serial = popaccu_plus(
            micro_scenario.gold, config, backend="serial"
        ).fuse(fusion_input)
        with ParallelExecutor(
            max_workers=n_workers, start_method=start_method
        ) as executor:
            parallel = popaccu_plus(
                micro_scenario.gold, config, backend="parallel"
            ).fuse(fusion_input, executor=executor)
            assert executor.fallbacks_unpicklable == 0
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert parallel.diagnostics["parity"] == "bitwise"
        assert_bit_identical(serial, parallel)

    def test_accu_sampled_bit_identical(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        config = FusionConfig(sample_limit=TINY_L)
        serial = accu(config, backend="serial").fuse(fusion_input)
        parallel = accu(config, backend="parallel").fuse(fusion_input)
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert_bit_identical(serial, parallel)

    def test_fallback_diagnostic_never_fires_under_sampling(
        self, micro_scenario
    ):
        """The acceptance criterion verbatim: no ``"serial (parallel
        fallback)"`` tag on a sampled parallel run."""
        fusion_input = micro_scenario.fusion_input()
        result = popaccu(
            FusionConfig(sample_limit=TINY_L, backend="parallel")
        ).fuse(fusion_input)
        assert "fallback" not in result.diagnostics["backend_used"]
        assert result.diagnostics["backend_used"] == "parallel"
        assert result.diagnostics["sampling"] == "canonical-order"

    def test_sampling_tag_reflects_config(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        unbounded = popaccu(FusionConfig(sample_limit=None)).fuse(fusion_input)
        assert unbounded.diagnostics["sampling"] == "unbounded"
        bounded = popaccu(FusionConfig(sample_limit=TINY_L)).fuse(fusion_input)
        assert bounded.diagnostics["sampling"] == "canonical-order"


@pytest.mark.parallel_backend
class TestSampledShuffleInvariance:
    def test_sampled_serial_is_record_order_invariant(self, micro_scenario):
        """Canonical-order sampling makes even the *serial* sampled run a
        function of the claim set, not the record stream order."""
        config = FusionConfig(sample_limit=TINY_L, backend="serial")
        baseline = popaccu(config).fuse(micro_scenario.fusion_input())
        shuffled = list(micro_scenario.records)
        random.Random(2).shuffle(shuffled)
        reshuffled = popaccu(config).fuse(FusionInput(shuffled))
        assert_bit_identical(baseline, reshuffled)

    def test_sampled_parallel_on_shuffled_records_matches_serial(
        self, micro_scenario
    ):
        serial = popaccu(
            FusionConfig(sample_limit=TINY_L, backend="serial")
        ).fuse(micro_scenario.fusion_input())
        shuffled = list(micro_scenario.records)
        random.Random(3).shuffle(shuffled)
        parallel = popaccu(
            FusionConfig(sample_limit=TINY_L, backend="parallel")
        ).fuse(FusionInput(shuffled))
        assert_bit_identical(serial, parallel)
