"""Unit tests for claim-matrix construction."""

from repro.extract.records import ExtractionRecord
from repro.fusion.observations import ClaimMatrix, FusionInput
from repro.fusion.provenance import Granularity
from repro.kb.triples import DataItem, Triple
from repro.kb.values import StringValue


def rec(obj, extractor, url, pattern=None):
    return ExtractionRecord(
        triple=Triple("/m/1", "t/t/p", StringValue(obj)),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
        pattern=pattern,
    )


class TestClaimMatrix:
    def test_dedup_same_cell(self):
        # Same extractor+url claiming the same triple twice is one claim.
        records = [rec("a", "E1", "http://s.org/p"), rec("a", "E1", "http://s.org/p")]
        matrix = ClaimMatrix.build(records, Granularity.EXTRACTOR_URL)
        assert matrix.n_claims() == 1

    def test_distinct_extractors_distinct_claims(self):
        records = [rec("a", "E1", "http://s.org/p"), rec("a", "E2", "http://s.org/p")]
        matrix = ClaimMatrix.build(records, Granularity.EXTRACTOR_URL)
        assert matrix.n_claims() == 2

    def test_items_grouping(self):
        records = [
            rec("a", "E1", "http://s.org/p"),
            rec("b", "E1", "http://s.org/q"),
        ]
        matrix = ClaimMatrix.build(records, Granularity.EXTRACTOR_URL)
        item = DataItem("/m/1", "t/t/p")
        assert set(matrix.items) == {item}
        assert len(matrix.claims_of_item(item)) == 2

    def test_prov_triples_unique(self):
        records = [
            rec("a", "E1", "http://s.org/p"),
            rec("a", "E1", "http://s.org/p", pattern="x"),
            rec("b", "E1", "http://s.org/p"),
        ]
        matrix = ClaimMatrix.build(records, Granularity.EXTRACTOR_URL)
        support = matrix.provenance_support()
        assert support[("E1", "http://s.org/p")] == 2

    def test_all_triples_sorted_unique(self):
        records = [
            rec("b", "E1", "http://s.org/p"),
            rec("a", "E1", "http://s.org/q"),
            rec("a", "E2", "http://s.org/p"),
        ]
        matrix = ClaimMatrix.build(records, Granularity.EXTRACTOR_URL)
        triples = matrix.all_triples()
        assert len(triples) == 2
        assert triples == sorted(triples)


class TestFusionInput:
    def test_cache_returns_same_matrix(self):
        fusion_input = FusionInput([rec("a", "E1", "http://s.org/p")])
        a = fusion_input.claims(Granularity.EXTRACTOR_URL)
        b = fusion_input.claims(Granularity.EXTRACTOR_URL)
        assert a is b

    def test_different_granularities_cached_separately(self):
        fusion_input = FusionInput([rec("a", "E1", "http://s.org/p")])
        a = fusion_input.claims(Granularity.EXTRACTOR_URL)
        b = fusion_input.claims(Granularity.EXTRACTOR_SITE)
        assert a is not b

    def test_unique_triples(self):
        fusion_input = FusionInput(
            [rec("a", "E1", "http://s.org/p"), rec("a", "E2", "http://s.org/q")]
        )
        assert len(fusion_input.unique_triples()) == 1

    def test_len_counts_records(self):
        fusion_input = FusionInput(
            [rec("a", "E1", "http://s.org/p"), rec("a", "E2", "http://s.org/q")]
        )
        assert len(fusion_input) == 2
