"""Unit tests for VOTE."""

import pytest

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionInput, vote
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def rec(subject, obj, url):
    return ExtractionRecord(
        triple=Triple(subject, "t/t/p", StringValue(obj)),
        extractor="E",
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
    )


class TestVote:
    def test_paper_example_seven_of_ten(self):
        """§4.2's worked example: 7 provenances vs 1+1+1 gives 0.7."""
        records = [rec("/m/1", "a", f"http://s{i}.org/p") for i in range(7)]
        records += [
            rec("/m/1", other, f"http://t{i}.org/p")
            for i, other in enumerate(["b", "c", "d"])
        ]
        result = vote().fuse(FusionInput(records))
        probs = {t.obj.text: p for t, p in result.probabilities.items()}
        assert probs["a"] == pytest.approx(0.7)
        assert probs["b"] == pytest.approx(0.1)

    def test_single_claim_item_gets_probability_one(self):
        result = vote().fuse(FusionInput([rec("/m/1", "a", "http://s.org/p")]))
        assert list(result.probabilities.values()) == [1.0]

    def test_two_way_conflict_gives_half(self):
        records = [
            rec("/m/1", "a", "http://s.org/p"),
            rec("/m/1", "b", "http://t.org/p"),
        ]
        result = vote().fuse(FusionInput(records))
        assert set(result.probabilities.values()) == {0.5}

    def test_item_probabilities_sum_to_one(self, tiny_scenario):
        from collections import defaultdict

        result = vote().fuse(tiny_scenario.fusion_input())
        by_item = defaultdict(float)
        for triple, probability in result.probabilities.items():
            by_item[triple.data_item] += probability
        for item, total in by_item.items():
            assert total == pytest.approx(1.0, abs=1e-9), item

    def test_duplicate_records_do_not_double_count(self):
        records = [rec("/m/1", "a", "http://s.org/p")] * 5 + [
            rec("/m/1", "b", "http://t.org/p")
        ]
        result = vote().fuse(FusionInput(records))
        probs = {t.obj.text: p for t, p in result.probabilities.items()}
        assert probs["a"] == pytest.approx(0.5)

    def test_no_iteration(self, tiny_scenario):
        result = vote().fuse(tiny_scenario.fusion_input())
        assert result.rounds == 0
        assert result.converged
        assert not result.unpredicted
