"""Unit tests for FusionConfig validation and FusionResult semantics."""

import pytest

from repro.errors import ConfigError
from repro.fusion.base import FusionConfig, FusionResult
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(name):
    return Triple("/m/1", "t/t/p", StringValue(name))


class TestFusionConfig:
    def test_defaults_valid(self):
        FusionConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_false_values": 0},
            {"default_accuracy": 0.0},
            {"default_accuracy": 1.0},
            {"max_rounds": 0},
            {"min_accuracy": 1.5},
            {"min_accuracy": -0.1},
            {"gold_sample_rate": 2.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            FusionConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FusionConfig().max_rounds = 99

    def test_min_accuracy_none_allowed(self):
        assert FusionConfig(min_accuracy=None).min_accuracy is None


class TestFusionResult:
    def test_coverage_full(self):
        result = FusionResult(method="X", probabilities={t("a"): 0.5})
        assert result.coverage() == 1.0

    def test_coverage_partial(self):
        result = FusionResult(
            method="X", probabilities={t("a"): 0.5}, unpredicted={t("b")}
        )
        assert result.coverage() == pytest.approx(0.5)

    def test_coverage_empty(self):
        assert FusionResult(method="X", probabilities={}).coverage() == 0.0

    def test_validate_accepts_unit_interval(self):
        FusionResult(method="X", probabilities={t("a"): 0.0, t("b"): 1.0}).validate()

    def test_validate_rejects_out_of_range(self):
        result = FusionResult(method="X", probabilities={t("a"): 1.1})
        with pytest.raises(ConfigError):
            result.validate()
