"""Unit tests for provenance keys and granularities."""

import pytest

from repro.extract.records import ExtractionRecord
from repro.fusion.provenance import Granularity, provenance_key
from repro.kb.triples import Triple
from repro.kb.values import StringValue


@pytest.fixture
def record():
    return ExtractionRecord(
        triple=Triple("/m/1", "people/person/profession", StringValue("actor")),
        extractor="TXT1",
        url="http://en.site.org/page1",
        site="en.site.org",
        content_type="TXT",
        pattern="TXT1:t.people.person.profession.0",
    )


class TestKeys:
    def test_extractor_url(self, record):
        assert provenance_key(record, Granularity.EXTRACTOR_URL) == (
            "TXT1",
            "http://en.site.org/page1",
        )

    def test_extractor_site(self, record):
        assert provenance_key(record, Granularity.EXTRACTOR_SITE) == (
            "TXT1",
            "en.site.org",
        )

    def test_extractor_site_predicate(self, record):
        assert provenance_key(record, Granularity.EXTRACTOR_SITE_PREDICATE) == (
            "TXT1",
            "en.site.org",
            "people/person/profession",
        )

    def test_finest_granularity_includes_pattern(self, record):
        key = provenance_key(
            record, Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN
        )
        assert key == (
            "TXT1",
            "en.site.org",
            "people/person/profession",
            "TXT1:t.people.person.profession.0",
        )

    def test_only_ext(self, record):
        assert provenance_key(record, Granularity.EXTRACTOR_PATTERN_ONLY) == (
            "TXT1:t.people.person.profession.0",
        )

    def test_only_src(self, record):
        assert provenance_key(record, Granularity.URL_ONLY) == (
            "http://en.site.org/page1",
        )

    def test_patternless_record_gets_stable_placeholder(self, record):
        from dataclasses import replace

        bare = replace(record, pattern=None)
        key = provenance_key(bare, Granularity.EXTRACTOR_SITE_PREDICATE_PATTERN)
        assert key[-1] == "TXT1:-"

    def test_granularity_is_coarsening(self, tiny_scenario):
        """Coarser granularities can only merge provenances, never split."""
        fusion_input = tiny_scenario.fusion_input()
        fine = fusion_input.claims(Granularity.EXTRACTOR_URL)
        coarse = fusion_input.claims(Granularity.EXTRACTOR_SITE)
        assert len(coarse.prov_triples) <= len(fine.prov_triples)
