"""The columnar-shuffle contract for fusion's parallel backend.

Three properties, each load-bearing:

1. **Parity**: parallel fused output is *bit-identical* to serial — at
   1, 2 and 4 workers, under both the fork and spawn start methods (the
   scalar kernels sum in canonical order, so worker hash randomization
   cannot leak into the floats).
2. **Shuffle invariance**: permuting the extraction-record stream does
   not change the parallel fused output (the columnar layout is
   canonical, not insertion-ordered).
3. **Payload purity**: no ``Claim``/``Triple``/``DataItem``/
   ``ExtractionRecord`` object — and, since the shared-memory round-state
   channel, *no numpy buffer either* — ever rides in a fusion shard task
   payload: only integer ids, primitives, and the tiny round-state handle
   cross per shard.  The heavyweight columns cross once through the pool
   initializer; the per-round accuracy/posterior/active buffers cross
   once per round through shared memory.
"""

import pickle
import random

import numpy as np
import pytest

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionConfig, popaccu, popaccu_plus, vote
from repro.fusion.observations import Claim, FusionInput
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.fusion.runner import run_bayesian_fusion
from repro.kb.triples import DataItem, Triple
from repro.mapreduce import executors
from repro.mapreduce.codec import scan_payload_types
from repro.mapreduce.executors import ParallelExecutor

pytestmark = pytest.mark.parallel_backend

#: Types that must never appear in a shard task payload.
FORBIDDEN = (Claim, Triple, DataItem, ExtractionRecord)

WORKER_COUNTS = (1, 2, 4)
START_METHODS = ("fork", "spawn")


def assert_bit_identical(serial, parallel):
    assert parallel.probabilities == serial.probabilities
    assert parallel.accuracies == serial.accuracies
    assert parallel.unpredicted == serial.unpredicted
    assert parallel.rounds == serial.rounds
    assert parallel.converged == serial.converged


class TestParity:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_popaccu_plus_bit_identical_everywhere(
        self, micro_scenario, n_workers, start_method
    ):
        """The flagship (filters + gold init) across the full matrix."""
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu_plus(micro_scenario.gold, backend="serial").fuse(
            fusion_input
        )
        with ParallelExecutor(
            max_workers=n_workers, start_method=start_method
        ) as executor:
            parallel = popaccu_plus(micro_scenario.gold, backend="parallel").fuse(
                fusion_input, executor=executor
            )
            assert executor.fallbacks_unpicklable == 0
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_vote_bit_identical(self, micro_scenario, start_method):
        fusion_input = micro_scenario.fusion_input()
        serial = vote(backend="serial").fuse(fusion_input)
        with ParallelExecutor(
            max_workers=2, start_method=start_method
        ) as executor:
            parallel = vote(backend="parallel").fuse(
                fusion_input, executor=executor
            )
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert parallel.probabilities == serial.probabilities

    def test_track_rounds_matches_serial(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()

        def run(backend):
            from repro.fusion.popaccu import PopAccuKernel

            return run_bayesian_fusion(
                fusion_input=fusion_input,
                config=FusionConfig(backend=backend, max_rounds=2),
                item_posterior_fn=PopAccuKernel(),
                method_name="POPACCU",
                track_rounds=True,
            )

        serial, parallel = run("serial"), run("parallel")
        assert (
            serial.diagnostics["round_probabilities"]
            == parallel.diagnostics["round_probabilities"]
        )

    def test_diagnostics_match_serial(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(backend="serial").fuse(fusion_input)
        parallel = popaccu(backend="parallel").fuse(fusion_input)
        for key in ("n_items", "n_provenances", "n_claims", "n_active_final",
                    "gold_initialized"):
            assert parallel.diagnostics[key] == serial.diagnostics[key], key


class TestShuffleInvariance:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_record_order_does_not_change_parallel_output(
        self, micro_scenario, seed
    ):
        serial = popaccu(backend="serial").fuse(micro_scenario.fusion_input())
        shuffled = list(micro_scenario.records)
        random.Random(seed).shuffle(shuffled)
        parallel = popaccu(backend="parallel").fuse(FusionInput(shuffled))
        assert_bit_identical(serial, parallel)


class TestFallbacks:
    def test_closure_posterior_runs_in_process_but_identical(
        self, micro_scenario
    ):
        """An unpicklable kernel cannot ship to workers: the job runs
        in-process over the same columnar shards (the parent registry
        resolves the resident columns), is counted, and stays exact."""
        fusion_input = micro_scenario.fusion_input()
        config = FusionConfig(backend="parallel", max_rounds=2)
        with ParallelExecutor(max_workers=2) as executor:
            result = run_bayesian_fusion(
                fusion_input=fusion_input,
                config=config,
                item_posterior_fn=lambda claims, acc: popaccu_item_posteriors(
                    claims, acc
                ),
                method_name="POPACCU-closure",
                executor=executor,
            )
            assert executor.fallbacks_unpicklable > 0
        assert result.diagnostics["backend_used"] == "parallel"
        assert result.diagnostics["fallbacks_unpicklable"] > 0
        reference = popaccu(FusionConfig(backend="serial", max_rounds=2)).fuse(
            fusion_input
        )
        assert result.probabilities == reference.probabilities

    def test_sampling_no_longer_falls_back_to_serial(self, micro_scenario):
        """Canonical-order sampling: the shard workers re-draw the same
        sampled subsets against the resident columns, so sampling no
        longer degrades the parallel backend to the serial reference."""
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(FusionConfig(sample_limit=2, backend="serial")).fuse(
            fusion_input
        )
        parallel = popaccu(FusionConfig(sample_limit=2, backend="parallel")).fuse(
            fusion_input
        )
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert parallel.diagnostics["sampling"] == "canonical-order"
        assert_bit_identical(serial, parallel)

    def test_vote_sampling_no_longer_falls_back(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = vote(FusionConfig(sample_limit=2, backend="serial")).fuse(
            fusion_input
        )
        parallel = vote(FusionConfig(sample_limit=2, backend="parallel")).fuse(
            fusion_input
        )
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert parallel.diagnostics["sampling"] == "canonical-order"
        assert parallel.probabilities == serial.probabilities


class TestPayloadPurity:
    def _record_submissions(self, monkeypatch):
        """Spy on every shard task submitted to the process pool."""
        recorded = []
        original = executors.ProcessPoolExecutor.submit

        def spy(pool_self, fn, *args, **kwargs):
            recorded.append(args)
            return original(pool_self, fn, *args, **kwargs)

        monkeypatch.setattr(executors.ProcessPoolExecutor, "submit", spy)
        return recorded

    def _assert_payloads_clean(self, recorded, forbid_arrays=False):
        assert recorded, "no shard tasks were dispatched"
        for args in recorded:
            spec_bytes, shard = args
            # The job spec crosses pre-pickled; audit its contents too.
            spec = pickle.loads(spec_bytes)
            for payload in (spec, shard):
                types = scan_payload_types(payload)
                offenders = [
                    t.__name__
                    for t in types
                    if issubclass(t, FORBIDDEN)
                ]
                assert not offenders, (
                    f"shard payload carries domain objects: {offenders}"
                )
                if forbid_arrays:
                    assert not any(
                        issubclass(t, np.ndarray) for t in types
                    ), (
                        "shard payload carries a numpy buffer — per-round "
                        "state must cross on the round-state channel, not "
                        "in the spec"
                    )

    def test_fusion_shards_carry_no_claim_objects(
        self, micro_scenario, monkeypatch
    ):
        recorded = self._record_submissions(monkeypatch)
        result = popaccu_plus(micro_scenario.gold, backend="parallel").fuse(
            micro_scenario.fusion_input()
        )
        assert result.diagnostics["backend_used"] == "parallel"
        self._assert_payloads_clean(recorded, forbid_arrays=True)

    def test_hybrid_shards_carry_no_buffers(self, micro_scenario, monkeypatch):
        recorded = self._record_submissions(monkeypatch)
        result = popaccu(backend="hybrid").fuse(micro_scenario.fusion_input())
        assert result.diagnostics["backend_used"] == "hybrid"
        self._assert_payloads_clean(recorded, forbid_arrays=True)

    def test_vote_shards_carry_no_claim_objects(self, micro_scenario, monkeypatch):
        recorded = self._record_submissions(monkeypatch)
        vote(backend="parallel").fuse(micro_scenario.fusion_input())
        self._assert_payloads_clean(recorded, forbid_arrays=True)

    def test_extraction_shards_carry_no_extractor_objects(
        self, micro_scenario, monkeypatch
    ):
        """The fleet is pool-resident: shard payloads hold pages only."""
        from repro.extract.base import Extractor

        recorded = self._record_submissions(monkeypatch)
        with ParallelExecutor(max_workers=2) as executor:
            micro_scenario.pipeline.run(
                micro_scenario.corpus, backend="parallel", executor=executor
            )
        assert recorded, "no shard tasks were dispatched"
        for args in recorded:
            spec_bytes, _shard = args
            types = scan_payload_types(pickle.loads(spec_bytes))
            offenders = [
                t.__name__ for t in types if issubclass(t, Extractor)
            ]
            assert not offenders, (
                f"extraction spec still ships the fleet: {offenders}"
            )
