"""Tests for the §5 future-direction fusers."""

import pytest

from repro.experiments.common import metrics_for
from repro.extract.records import ExtractionRecord
from repro.fusion import FusionConfig, FusionInput, popaccu
from repro.fusion.extensions import (
    ConfidenceWeightedFuser,
    HierarchicalFuser,
    MultiTruthFuser,
    SplitQualityFuser,
)
from repro.kb.triples import Triple
from repro.kb.values import EntityRef, StringValue


def rec(subject, obj, extractor, url, predicate="t/t/p", confidence=None):
    return ExtractionRecord(
        triple=Triple(subject, predicate, StringValue(obj)),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
        confidence=confidence,
    )


class TestSplitQuality:
    def test_probabilities_valid(self, tiny_scenario):
        result = SplitQualityFuser(FusionConfig()).fuse(tiny_scenario.fusion_input())
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_factors_exposed(self, tiny_scenario):
        result = SplitQualityFuser(FusionConfig()).fuse(tiny_scenario.fusion_input())
        assert result.diagnostics["extractor_quality"]
        assert result.diagnostics["site_accuracy"]

    def test_bad_extractor_gets_low_quality(self, tiny_scenario):
        """DOM2 (the sloppy extractor) must score below TXT4/DOM3."""
        result = SplitQualityFuser(FusionConfig()).fuse(tiny_scenario.fusion_input())
        quality = result.diagnostics["extractor_quality"]
        if "DOM2" in quality and "DOM3" in quality:
            assert quality["DOM2"] < quality["DOM3"]

    def test_correlated_extractor_error_discounted(self):
        """The same wrong value pushed by ONE consistently-bad extractor
        across many sites should lose to a value confirmed by several good
        extractors on fewer sites — the Figure 18 signal that the
        (Extractor, URL) cross-product buries.  Plain ACCU, for contrast,
        follows the site majority and keeps the wrong value."""
        from repro.fusion import accu

        good = ["G1", "G2", "G3", "G4"]
        records = []
        # Extractor BAD claims "wrong" on 6 different sites for item A.
        for i in range(6):
            records.append(rec("/m/a", "wrong", "BAD", f"http://s{i}.org/p"))
        # Four good extractors claim "right" on 4 sites.
        for i, extractor in enumerate(good):
            records.append(rec("/m/a", "right", extractor, f"http://t{i}.org/p"))
        # Ground the extractor qualities: on many other items, BAD
        # contradicts the consensus of the good extractors.
        for j in range(20):
            for i, extractor in enumerate(good):
                records.append(
                    rec(f"/m/x{j}", "consensus", extractor, f"http://u{i}{j}.org/p")
                )
            records.append(rec(f"/m/x{j}", "lone", "BAD", f"http://v{j}.org/p"))
        fusion_input = FusionInput(records)
        split = SplitQualityFuser(FusionConfig(max_rounds=8)).fuse(fusion_input)
        probabilities = {
            (t.subject, t.obj.text): p for t, p in split.probabilities.items()
        }
        assert probabilities[("/m/a", "right")] > probabilities[("/m/a", "wrong")]
        assert (
            split.diagnostics["extractor_quality"]["BAD"]
            < split.diagnostics["extractor_quality"]["G1"]
        )
        plain = accu().fuse(fusion_input)
        plain_probabilities = {
            (t.subject, t.obj.text): p for t, p in plain.probabilities.items()
        }
        assert plain_probabilities[("/m/a", "wrong")] > plain_probabilities[
            ("/m/a", "right")
        ]


class TestMultiTruth:
    def test_probabilities_valid(self, tiny_scenario):
        result = MultiTruthFuser(FusionConfig(max_rounds=3)).fuse(
            tiny_scenario.fusion_input()
        )
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_functionality_learned_per_predicate(self, tiny_scenario):
        fuser = MultiTruthFuser(FusionConfig(max_rounds=2))
        functionality = fuser.learned_functionality(tiny_scenario.fusion_input())
        assert functionality
        for value in functionality.values():
            assert value > 0

    def test_two_truths_can_both_score_high(self):
        """The defining capability: two well-supported values of one item
        both get probability > 0.5 (single-truth methods cap the pair)."""
        records = []
        for i in range(5):
            records.append(rec("/m/a", "truth1", f"E{i}", f"http://s{i}.org/p"))
            records.append(rec("/m/a", "truth2", f"E{i}", f"http://s{i}.org/q"))
        result = MultiTruthFuser(FusionConfig(max_rounds=4)).fuse(
            FusionInput(records)
        )
        values = {t.obj.text: p for t, p in result.probabilities.items()}
        assert values["truth1"] > 0.5
        assert values["truth2"] > 0.5
        single = popaccu().fuse(FusionInput(records))
        single_values = {t.obj.text: p for t, p in single.probabilities.items()}
        assert single_values["truth1"] + single_values["truth2"] <= 1.0 + 1e-9

    def test_improves_recall_of_non_functional_truths(self, tiny_scenario):
        """Against the world's own truth (not LCWA), multi-truth fusion
        should recover more true values of non-functional predicates at
        p > 0.5 than POPACCU."""
        fusion_input = tiny_scenario.fusion_input()
        world = tiny_scenario.world
        base = popaccu().fuse(fusion_input).probabilities
        multi = MultiTruthFuser(FusionConfig(max_rounds=3)).fuse(
            fusion_input
        ).probabilities

        def recovered(probabilities):
            count = 0
            for triple, probability in probabilities.items():
                predicate = world.schema.predicates.get(triple.predicate)
                if predicate is None or predicate.functional:
                    continue
                if probability > 0.5 and world.is_true_exact(triple):
                    count += 1
            return count

        assert recovered(multi) >= recovered(base)


class TestHierarchical:
    def test_probabilities_valid(self, tiny_scenario):
        fuser = HierarchicalFuser(
            tiny_scenario.world.schema,
            tiny_scenario.world.hierarchy,
            FusionConfig(max_rounds=3),
        )
        result = fuser.fuse(tiny_scenario.fusion_input())
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_cities_in_one_state_support_the_state(self, tiny_scenario):
        """§5.4's example: conflicting cities within one state lift the
        state's probability above any single city's."""
        world = tiny_scenario.world
        hierarchy = world.hierarchy
        # Find a region with >= 2 leaf children.
        region = next(
            (
                r
                for r in hierarchy.members()
                if len(hierarchy.children(r)) >= 2
                and all(not hierarchy.children(c) for c in hierarchy.children(r))
            ),
            None,
        )
        if region is None:
            pytest.skip("no suitable region in this world")
        cities = hierarchy.children(region)[:2]
        pid = "people/person/birth_place"
        records = []
        for i, city in enumerate(cities):
            for j in range(2):
                records.append(
                    ExtractionRecord(
                        triple=Triple("/m/subject", pid, EntityRef(city)),
                        extractor=f"E{i}{j}",
                        url=f"http://s{i}{j}.org/p",
                        site=f"s{i}{j}.org",
                        content_type="TXT",
                    )
                )
        records.append(
            ExtractionRecord(
                triple=Triple("/m/subject", pid, EntityRef(region)),
                extractor="ER",
                url="http://r.org/p",
                site="r.org",
                content_type="TXT",
            )
        )
        fuser = HierarchicalFuser(
            world.schema, hierarchy, FusionConfig(max_rounds=2)
        )
        result = fuser.fuse(FusionInput(records))
        by_entity = {
            t.obj.entity_id: p for t, p in result.probabilities.items()
        }
        assert by_entity[region] > max(by_entity[c] for c in cities)


class TestConfidenceWeighted:
    def test_probabilities_valid(self, tiny_scenario):
        result = ConfidenceWeightedFuser(FusionConfig(max_rounds=3)).fuse(
            tiny_scenario.fusion_input()
        )
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_confident_claim_outweighs_diffident_claim(self):
        records = [
            rec("/m/a", "sure", "E1", "http://s1.org/p", confidence=0.95),
            rec("/m/a", "unsure", "E1", "http://s2.org/p", confidence=0.05),
            # Spread E1's confidence distribution so ranks differ.
            rec("/m/z", "pad1", "E1", "http://s3.org/p", confidence=0.5),
            rec("/m/z2", "pad2", "E1", "http://s4.org/p", confidence=0.6),
        ]
        result = ConfidenceWeightedFuser(FusionConfig(max_rounds=1)).fuse(
            FusionInput(records)
        )
        values = {
            (t.subject, t.obj.text): p for t, p in result.probabilities.items()
        }
        assert values[("/m/a", "sure")] > values[("/m/a", "unsure")]

    def test_rank_normalisation_is_per_extractor(self):
        """A 0.6 from a hug-the-middle extractor can outrank a 0.6 from an
        extreme extractor: weights depend on each extractor's own
        distribution, not the raw value."""
        fuser = ConfidenceWeightedFuser(FusionConfig())
        records = [
            # Extractor MID emits confidences in [0.4, 0.6]: 0.6 is its max.
            rec("/m/1", "a", "MID", "http://m1.org/p", confidence=0.6),
            rec("/m/2", "b", "MID", "http://m2.org/p", confidence=0.4),
            rec("/m/3", "c", "MID", "http://m3.org/p", confidence=0.5),
            # Extractor EXT emits extremes: 0.6 is its *lowest*.
            rec("/m/4", "d", "EXT", "http://e1.org/p", confidence=0.6),
            rec("/m/5", "e", "EXT", "http://e2.org/p", confidence=0.95),
            rec("/m/6", "f", "EXT", "http://e3.org/p", confidence=0.99),
        ]
        weights = fuser._normalised_weights(FusionInput(records))
        mid_06 = next(w for (t, _p), w in weights.items() if t.subject == "/m/1")
        ext_06 = next(w for (t, _p), w in weights.items() if t.subject == "/m/4")
        assert mid_06 > ext_06

    def test_better_auc_than_unweighted_accu_on_scenario(self, tiny_scenario):
        """The ablation claim: confidence weighting should not hurt AUC-PR
        (it usually helps — confidences carry real signal)."""
        from repro.fusion import accu

        fusion_input = tiny_scenario.fusion_input()
        weighted = ConfidenceWeightedFuser(FusionConfig()).fuse(fusion_input)
        plain = accu().fuse(fusion_input)
        weighted_metrics = metrics_for(weighted.probabilities, tiny_scenario.gold)
        plain_metrics = metrics_for(plain.probabilities, tiny_scenario.gold)
        assert weighted_metrics.auc_pr > plain_metrics.auc_pr - 0.05
