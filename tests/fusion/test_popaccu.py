"""Unit tests for the POPACCU posterior math and the iterative fuser."""

import pytest

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionConfig, popaccu
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(obj):
    return Triple("/m/1", "t/t/p", StringValue(obj))


def rec(obj, extractor, url):
    return ExtractionRecord(
        triple=t(obj),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
    )


class TestPosteriorMath:
    """The paper's §4.2 'sticking' behaviours are exact predictions."""

    def test_empty_claims(self):
        assert popaccu_item_posteriors({}, {}) == {}

    def test_single_default_provenance_sticks_to_08(self):
        posteriors = popaccu_item_posteriors({t("a"): {("S",)}}, {("S",): 0.8})
        assert posteriors[t("a")] == pytest.approx(0.8)

    def test_two_agreeing_defaults(self):
        accuracy = {("S1",): 0.8, ("S2",): 0.8}
        posteriors = popaccu_item_posteriors({t("a"): {("S1",), ("S2",)}}, accuracy)
        # L(a) = 0.64, L(OTHER) = 0.04 -> 0.9412...
        assert posteriors[t("a")] == pytest.approx(0.64 / 0.68)

    def test_two_conflicting_defaults_near_half(self):
        accuracy = {("S1",): 0.8, ("S2",): 0.8}
        posteriors = popaccu_item_posteriors(
            {t("a"): {("S1",)}, t("b"): {("S2",)}}, accuracy
        )
        assert posteriors[t("a")] == pytest.approx(posteriors[t("b")])
        assert 0.4 < posteriors[t("a")] < 0.5  # the Figure 9 valley at ~0.5

    def test_posterior_mass_leq_one(self):
        accuracy = {(f"S{i}",): 0.7 for i in range(6)}
        claims = {
            t("a"): {("S0",), ("S1",), ("S2",)},
            t("b"): {("S3",), ("S4",)},
            t("c"): {("S5",)},
        }
        posteriors = popaccu_item_posteriors(claims, accuracy)
        assert sum(posteriors.values()) <= 1.0 + 1e-9

    def test_popular_false_value_discounted_vs_accu(self):
        """POPACCU's raison d'etre: a value repeated by many provenances is
        partially explained as a *popular false value*, so its posterior is
        lower than ACCU's for the same observations."""
        from repro.fusion.accu import accu_item_posteriors

        accuracy = {(f"S{i}",): 0.8 for i in range(12)}
        claims = {
            t("copied"): {(f"S{i}",) for i in range(9)},
            t("minority"): {("S9",), ("S10",), ("S11",)},
        }
        pop = popaccu_item_posteriors(claims, accuracy)
        acc = accu_item_posteriors(claims, accuracy, 100)
        assert pop[t("copied")] < acc[t("copied")]

    def test_extreme_accuracy_clamped(self):
        posteriors = popaccu_item_posteriors({t("a"): {("S",)}}, {("S",): 1.0})
        assert 0.0 <= posteriors[t("a")] <= 1.0


class TestPopAccuFuser:
    def test_all_probabilities_valid(self, tiny_scenario):
        result = popaccu().fuse(tiny_scenario.fusion_input())
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0

    def test_item_mass_at_most_one(self, tiny_scenario):
        from collections import defaultdict

        result = popaccu().fuse(tiny_scenario.fusion_input())
        by_item = defaultdict(float)
        for triple, probability in result.probabilities.items():
            by_item[triple.data_item] += probability
        for total in by_item.values():
            assert total <= 1.0 + 1e-6

    def test_round_cap(self, tiny_scenario):
        config = FusionConfig(max_rounds=1)
        result = popaccu(config).fuse(tiny_scenario.fusion_input())
        assert result.rounds == 1

    def test_covers_every_unique_triple(self, tiny_scenario):
        result = popaccu().fuse(tiny_scenario.fusion_input())
        predicted = set(result.probabilities) | result.unpredicted
        assert predicted == set(tiny_scenario.unique_triples())
