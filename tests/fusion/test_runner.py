"""Unit tests for the iterative runner: filters, gold init, fallbacks."""

import pytest

from repro.extract.records import ExtractionRecord
from repro.fusion import FusionConfig, FusionInput
from repro.fusion.popaccu import PopAccu, popaccu_item_posteriors
from repro.fusion.runner import _gold_subsample, run_bayesian_fusion
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(subject, obj):
    return Triple(subject, "t/t/p", StringValue(obj))


def rec(subject, obj, extractor, url):
    return ExtractionRecord(
        triple=t(subject, obj),
        extractor=extractor,
        url=url,
        site=url.split("/")[2],
        content_type="TXT",
    )


def lonely_plus_supported():
    """One item with a twice-claimed triple, one single-claim-singleton item."""
    records = [
        rec("/m/1", "a", "E1", "http://s1.org/p"),
        rec("/m/1", "a", "E2", "http://s2.org/p"),
        rec("/m/2", "x", "E3", "http://s3.org/p"),  # singleton provenance
    ]
    return FusionInput(records)


class TestCoverageFilter:
    def test_singleton_items_unpredicted(self):
        config = FusionConfig(filter_by_coverage=True)
        result = PopAccu(config).fuse(lonely_plus_supported())
        assert t("/m/2", "x") in result.unpredicted
        assert t("/m/1", "a") in result.probabilities

    def test_without_filter_everything_predicted(self):
        result = PopAccu(FusionConfig()).fuse(lonely_plus_supported())
        assert not result.unpredicted
        assert len(result.probabilities) == 2


class TestAccuracyFilter:
    def test_fallback_probability_is_mean_accuracy(self):
        # θ=0.99 filters every provenance; fallback = mean accuracy of the
        # triple's own provenances (all still at default 0.8).
        config = FusionConfig(min_accuracy=0.99, max_rounds=1)
        result = PopAccu(config).fuse(lonely_plus_supported())
        assert result.probabilities[t("/m/2", "x")] == pytest.approx(0.8)
        assert not result.unpredicted

    def test_moderate_theta_keeps_good_provenances(self, tiny_scenario):
        config = FusionConfig(min_accuracy=0.1)
        result = PopAccu(config).fuse(tiny_scenario.fusion_input())
        assert result.probabilities
        for probability in result.probabilities.values():
            assert 0.0 <= probability <= 1.0


class TestGoldInitialization:
    def test_gold_sets_initial_accuracy(self):
        fusion_input = lonely_plus_supported()
        gold = {t("/m/1", "a"): True, t("/m/2", "x"): False}
        config = FusionConfig(max_rounds=1)
        result = PopAccu(config, gold_labels=gold).fuse(fusion_input)
        assert result.diagnostics["gold_initialized"] == 3
        # E3's only triple is gold-false: accuracy starts at 0 -> its lone
        # claim gets a very low probability.
        assert result.probabilities[t("/m/2", "x")] < 0.1

    def test_gold_subsample_deterministic(self):
        gold = {t("/m/1", str(i)): bool(i % 2) for i in range(200)}
        a = _gold_subsample(gold, 0.5, seed=3)
        b = _gold_subsample(gold, 0.5, seed=3)
        assert a == b
        assert 40 <= len(a) <= 160

    def test_gold_subsample_full_rate_is_identity(self):
        gold = {t("/m/1", "a"): True}
        assert _gold_subsample(gold, 1.0, seed=3) is gold

    def test_gold_subsample_rate_scales(self):
        gold = {t("/m/1", str(i)): True for i in range(1000)}
        small = _gold_subsample(gold, 0.1, seed=3)
        large = _gold_subsample(gold, 0.9, seed=3)
        assert len(small) < len(large)


class TestTrackRounds:
    def test_round_probabilities_recorded(self, tiny_scenario):
        config = FusionConfig(max_rounds=3, convergence_tol=0.0)
        result = run_bayesian_fusion(
            fusion_input=tiny_scenario.fusion_input(),
            config=config,
            item_posterior_fn=lambda c, a: popaccu_item_posteriors(c, a),
            method_name="POPACCU",
            track_rounds=True,
        )
        snapshots = result.diagnostics["round_probabilities"]
        assert len(snapshots) == 3
        # Round 1 differs from round 2 (accuracies moved).
        assert snapshots[0] != snapshots[1]


class TestDiagnostics:
    def test_diagnostics_populated(self, tiny_scenario):
        result = PopAccu(FusionConfig()).fuse(tiny_scenario.fusion_input())
        diagnostics = result.diagnostics
        assert diagnostics["n_items"] > 0
        assert diagnostics["n_provenances"] > 0
        assert diagnostics["n_claims"] >= diagnostics["n_items"]
