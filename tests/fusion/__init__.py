"""Test package: fusion (package __init__ so duplicate basenames import distinctly)."""
