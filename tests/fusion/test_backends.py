"""Backend regression tests: serial / parallel / vectorized fusion.

The contract, tested on real seeded scenarios:

- ``parallel`` is **bit-identical** to ``serial`` on every start method
  (the columnar shuffle runs the same scalar kernels, which sum in
  canonical order, so worker hash randomization cannot leak into the
  floats — see tests/fusion/test_columnar_shuffle.py for the full
  worker-count × start-method matrix);
- ``vectorized`` matches ``serial`` to 1e-9 (summation order differs);
- backends that cannot engage (closure posteriors, sampling pressure)
  fall back to the serial reference and still produce correct results.
"""

import pytest

from repro.errors import ConfigError
from repro.fusion import (
    BACKENDS,
    FusionConfig,
    accu,
    popaccu,
    popaccu_plus,
    popaccu_plus_unsup,
    vote,
)
from repro.fusion.popaccu import popaccu_item_posteriors
from repro.fusion.runner import run_bayesian_fusion


def assert_identical(result_a, result_b):
    assert result_a.probabilities == result_b.probabilities
    assert result_a.accuracies == result_b.accuracies
    assert result_a.unpredicted == result_b.unpredicted
    assert result_a.rounds == result_b.rounds
    assert result_a.converged == result_b.converged


def assert_close(result_a, result_b, tol=1e-9):
    assert set(result_a.probabilities) == set(result_b.probabilities)
    for triple, probability in result_a.probabilities.items():
        assert result_b.probabilities[triple] == pytest.approx(
            probability, abs=tol
        )
    assert set(result_a.accuracies) == set(result_b.accuracies)
    for prov, accuracy in result_a.accuracies.items():
        assert result_b.accuracies[prov] == pytest.approx(accuracy, abs=tol)
    assert result_a.unpredicted == result_b.unpredicted
    assert result_a.rounds == result_b.rounds
    assert result_a.converged == result_b.converged


@pytest.mark.parallel_backend
class TestParallelDeterminism:
    def test_popaccu_bit_identical(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(backend="serial").fuse(fusion_input)
        parallel = popaccu(backend="parallel").fuse(fusion_input)
        assert parallel.diagnostics["backend_used"] == "parallel"
        assert_identical(serial, parallel)

    def test_popaccu_plus_bit_identical(self, micro_scenario):
        """Same-seed POPACCU+ (all refinements + gold) across backends."""
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu_plus(micro_scenario.gold, backend="serial").fuse(
            fusion_input
        )
        parallel = popaccu_plus(micro_scenario.gold, backend="parallel").fuse(
            fusion_input
        )
        assert_identical(serial, parallel)

    def test_vote_bit_identical(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        assert_identical(
            vote(backend="serial").fuse(fusion_input),
            vote(backend="parallel").fuse(fusion_input),
        )


class TestVectorizedParity:
    @pytest.mark.parametrize(
        "preset", [vote, accu, popaccu, popaccu_plus_unsup], ids=lambda f: f.__name__
    )
    def test_matches_serial(self, micro_scenario, preset):
        fusion_input = micro_scenario.fusion_input()
        serial = preset(backend="serial").fuse(fusion_input)
        vectorized = preset(backend="vectorized").fuse(fusion_input)
        assert vectorized.diagnostics["backend_used"] == "vectorized"
        assert_close(serial, vectorized)

    def test_popaccu_plus_with_gold_matches_serial(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu_plus(micro_scenario.gold, backend="serial").fuse(
            fusion_input
        )
        vectorized = popaccu_plus(micro_scenario.gold, backend="vectorized").fuse(
            fusion_input
        )
        assert vectorized.diagnostics["gold_initialized"] == serial.diagnostics[
            "gold_initialized"
        ]
        assert_close(serial, vectorized)

    def test_vote_kernel_respects_coverage_filter(self, micro_scenario):
        """Regression: vectorized VOTE must honour require_repeated —
        items without any >=2-provenance triple stay unpredicted, exactly
        as the serial Stage-I reducer leaves them."""
        from repro.fusion.vote import VoteKernel

        fusion_input = micro_scenario.fusion_input()

        def run(backend):
            return run_bayesian_fusion(
                fusion_input=fusion_input,
                config=FusionConfig(filter_by_coverage=True, backend=backend),
                item_posterior_fn=VoteKernel(),
                method_name="VOTE",
            )

        serial, vectorized = run("serial"), run("vectorized")
        assert vectorized.diagnostics["backend_used"] == "vectorized"
        assert serial.unpredicted, "scenario must exercise the filter"
        assert_close(serial, vectorized)

    def test_diagnostics_match_serial(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(backend="serial").fuse(fusion_input)
        vectorized = popaccu(backend="vectorized").fuse(fusion_input)
        for key in ("n_items", "n_provenances", "n_claims", "n_active_final"):
            assert vectorized.diagnostics[key] == serial.diagnostics[key], key


class TestFallbacks:
    def test_closure_posterior_falls_back_to_serial(self, micro_scenario):
        """Extensions pass plain closures; vectorized must degrade safely."""
        fusion_input = micro_scenario.fusion_input()
        config = FusionConfig(backend="vectorized", max_rounds=2)
        result = run_bayesian_fusion(
            fusion_input=fusion_input,
            config=config,
            item_posterior_fn=lambda claims, acc: popaccu_item_posteriors(
                claims, acc
            ),
            method_name="POPACCU-closure",
        )
        assert result.diagnostics["backend_used"] == "serial (vectorized fallback)"
        reference = popaccu(
            FusionConfig(backend="serial", max_rounds=2)
        ).fuse(fusion_input)
        assert result.probabilities == reference.probabilities

    def test_sampling_pressure_falls_back_to_serial(self, micro_scenario):
        """A tiny L forces reducer-input sampling: the scalar dataflow is
        the defined behaviour, so the vectorized backend must defer."""
        fusion_input = micro_scenario.fusion_input()
        serial = popaccu(
            FusionConfig(sample_limit=2, backend="serial")
        ).fuse(fusion_input)
        vectorized = popaccu(
            FusionConfig(sample_limit=2, backend="vectorized")
        ).fuse(fusion_input)
        assert (
            vectorized.diagnostics["backend_used"] == "serial (vectorized fallback)"
        )
        assert_identical(serial, vectorized)

    def test_track_rounds_supported_by_vectorized(self, micro_scenario):
        fusion_input = micro_scenario.fusion_input()
        serial = run_popaccu_tracked("serial", fusion_input)
        vectorized = run_popaccu_tracked("vectorized", fusion_input)
        assert len(serial.diagnostics["round_probabilities"]) == len(
            vectorized.diagnostics["round_probabilities"]
        )
        for snap_s, snap_v in zip(
            serial.diagnostics["round_probabilities"],
            vectorized.diagnostics["round_probabilities"],
        ):
            assert set(snap_s) == set(snap_v)
            for triple, probability in snap_s.items():
                assert snap_v[triple] == pytest.approx(probability, abs=1e-9)


def run_popaccu_tracked(backend, fusion_input):
    from repro.fusion.popaccu import PopAccuKernel

    return run_bayesian_fusion(
        fusion_input=fusion_input,
        config=FusionConfig(backend=backend, max_rounds=2),
        item_posterior_fn=PopAccuKernel(),
        method_name="POPACCU",
        track_rounds=True,
    )


class TestConfigSurface:
    def test_backend_constants(self):
        assert BACKENDS == ("serial", "parallel", "vectorized", "hybrid")
        assert FusionConfig().backend == "serial"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigError):
            FusionConfig(backend="gpu")

    def test_invalid_n_workers_rejected(self):
        with pytest.raises(ConfigError):
            FusionConfig(n_workers=0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_presets_thread_backend(self, backend):
        for preset in (vote, accu, popaccu, popaccu_plus_unsup):
            assert preset(backend=backend).config.backend == backend
        assert popaccu_plus(None, backend=backend).config.backend == backend

    def test_preset_backend_preserves_other_config(self):
        config = FusionConfig(max_rounds=3, n_false_values=50)
        fuser = accu(config, backend="vectorized")
        assert fuser.config.max_rounds == 3
        assert fuser.config.n_false_values == 50
        assert fuser.config.backend == "vectorized"
