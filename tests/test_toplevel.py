"""Tests for the top-level modules: report rendering, CLI, errors, package."""

import pytest

import repro
from repro.cli import main
from repro.errors import (
    ConfigError,
    EvaluationError,
    ExperimentError,
    ExtractionError,
    FusionError,
    ReproError,
    SchemaError,
)
from repro.report import format_kv, format_series, format_table


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [ConfigError, SchemaError, ExtractionError, FusionError,
         EvaluationError, ExperimentError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(("name", "value"), [("a", 1), ("bbbb", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_title(self):
        assert format_table(("x",), [(1,)], title="T").splitlines()[0] == "T"

    def test_format_table_floats(self):
        table = format_table(("x",), [(0.123456,)], float_digits=2)
        assert "0.12" in table

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_format_series(self):
        out = format_series("S", [(1, 2.0)], "x", "y")
        assert "S" in out and "x" in out

    def test_format_kv(self):
        out = format_kv([("k", 0.5), ("n", 3)])
        assert "k: 0.500" in out
        assert "n: 3" in out


class TestPackage:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table3", "--scale", "tiny", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "functional" in out.lower()

    def test_unknown_experiment_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99", "--scale", "tiny"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig9", "--scale", "galactic"])

    def test_extract_serial(self, capsys):
        assert main(["extract", "--scale", "tiny", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "backend:       serial" in out
        assert "records:" in out and "extract time:" in out

    def test_extract_parallel_reports_fallbacks(self, capsys):
        assert (
            main(
                ["extract", "--scale", "tiny", "--seed", "7",
                 "--backend", "parallel", "--workers", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend:       parallel" in out
        assert "fallbacks:" in out and "tiny" in out and "unpicklable" in out

    def test_extract_batched_reports_synthesis_mode(self, capsys):
        assert (
            main(["extract", "--scale", "tiny", "--seed", "7",
                  "--backend", "batched"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend:       batched" in out
        assert "synthesis:     batched" in out
        # Stock fleet: every family ships a kernel, no scalar fallback.
        assert "scalar fallback" not in out

    def test_extract_backends_report_identical_record_counts(self, capsys):
        main(["extract", "--scale", "tiny", "--seed", "7"])
        serial_out = capsys.readouterr().out
        line = next(l for l in serial_out.splitlines() if l.startswith("records:"))
        for extra in (["--backend", "parallel", "--workers", "2"],
                      ["--backend", "batched"]):
            main(["extract", "--scale", "tiny", "--seed", "7", *extra])
            assert line in capsys.readouterr().out


class TestCLIFuse:
    def test_fuse_serial(self, capsys):
        assert main(["fuse", "popaccu", "--scale", "tiny", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "method:        POPACCU" in out
        assert "backend:       serial" in out
        assert "backend used:  serial" in out
        assert "coverage:" in out

    @pytest.mark.parallel_backend
    def test_fuse_parallel_reports_fallback_diagnostics(self, capsys):
        assert (
            main(["fuse", "popaccu+", "--scale", "tiny", "--seed", "7",
                  "--backend", "parallel", "--workers", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend:       parallel" in out
        assert "backend used:  parallel" in out
        assert "fallbacks:" in out and "unpicklable" in out

    @pytest.mark.parallel_backend
    def test_fuse_backend_round_trip_identical_summary(self, capsys):
        """Numbers lines (rounds/triples/coverage/mean) must agree across
        every backend — serial, parallel, vectorized, hybrid (the
        tolerance backends' 1e-9 drift vanishes at 4-decimal display)."""
        summaries = {}
        for backend in ("serial", "parallel", "vectorized", "hybrid"):
            assert (
                main(["fuse", "popaccu", "--scale", "tiny", "--seed", "7",
                      "--backend", backend])
                == 0
            )
            out = capsys.readouterr().out
            summaries[backend] = [
                line for line in out.splitlines()
                if line.startswith(("rounds:", "triples:", "unpredicted:",
                                    "coverage:", "mean p(true):"))
            ]
        assert summaries["serial"] == summaries["parallel"]
        assert summaries["serial"] == summaries["vectorized"]
        assert summaries["serial"] == summaries["hybrid"]

    @pytest.mark.parallel_backend
    def test_fuse_hybrid_reports_tolerance_parity(self, capsys):
        assert (
            main(["fuse", "popaccu+", "--scale", "tiny", "--seed", "7",
                  "--backend", "hybrid", "--workers", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend:       hybrid" in out
        assert "backend used:  hybrid" in out
        assert "parity:        tolerance" in out

    def test_fuse_invalid_workers_exits_2(self, capsys):
        assert main(["fuse", "popaccu", "--workers", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_fuse_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuse", "popaccu", "--backend", "gpu"])


class TestCLIPipeline:
    def test_pipeline_serial(self, capsys):
        assert main(["pipeline", "--scale", "tiny", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "method:        POPACCU+" in out
        assert "backend:       serial" in out
        for stage in ("setup:", "extraction:", "labeling:", "fusion:", "total:"):
            assert stage in out
        assert "auc-pr:" in out and "gold accuracy:" in out

    @pytest.mark.parallel_backend
    def test_pipeline_parallel_reports_workers_and_fallbacks(self, capsys):
        assert (
            main(["pipeline", "vote", "--scale", "tiny", "--seed", "7",
                  "--backend", "parallel", "--workers", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "method:        VOTE" in out
        assert "backend:       parallel" in out
        assert "workers:       2" in out
        assert "fallbacks:" in out and "tiny" in out and "unpicklable" in out

    @pytest.mark.parallel_backend
    def test_pipeline_backend_round_trip_identical_metrics(self, capsys):
        metric_lines = {}
        for backend in ("serial", "batched", "parallel", "hybrid"):
            assert (
                main(["pipeline", "popaccu+", "--scale", "tiny", "--seed", "7",
                      "--backend", backend])
                == 0
            )
            out = capsys.readouterr().out
            metric_lines[backend] = [
                line for line in out.splitlines()
                if line.startswith(("pages:", "rounds:", "triples:", "coverage:",
                                    "deviation:", "auc-pr:", "gold accuracy:"))
            ]
        assert metric_lines["serial"] == metric_lines["batched"]
        assert metric_lines["serial"] == metric_lines["parallel"]
        # Hybrid's 1e-9 tolerance drift is invisible at display precision.
        assert metric_lines["serial"] == metric_lines["hybrid"]

    @pytest.mark.parallel_backend
    def test_pipeline_hybrid_reports_parity(self, capsys):
        assert (
            main(["pipeline", "popaccu+", "--scale", "tiny", "--seed", "7",
                  "--backend", "hybrid", "--workers", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend:       hybrid" in out
        assert "backend used:  hybrid" in out
        assert "parity:        tolerance" in out
        assert "workers:       2" in out

    def test_pipeline_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["pipeline", "--scale", "galactic"])

    def test_pipeline_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["pipeline", "bayes-net"])


class TestCLICache:
    def test_prune_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        assert "nothing stale" in capsys.readouterr().out

    def test_prune_dry_run_lists_but_keeps(self, tmp_path, capsys):
        leftover = tmp_path / "columns-dead.tmp-1"
        leftover.mkdir()
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert f"would prune: {leftover}" in out
        assert "dry run" in out and "--apply" in out
        assert leftover.exists()

    def test_prune_apply_deletes(self, tmp_path, capsys):
        leftover = tmp_path / "scenario-beef.tmp-2"
        leftover.mkdir()
        assert (
            main(["cache", "prune", "--cache-dir", str(tmp_path), "--apply"])
            == 0
        )
        assert f"pruned: {leftover}" in capsys.readouterr().out
        assert not leftover.exists()

    def test_cache_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestCLIStreamingScale:
    def test_web_rejects_serial_backend(self, capsys):
        # Validation fires before any generation work, so this is cheap.
        assert main(["pipeline", "--scale", "web", "--backend", "serial"]) == 2
        err = capsys.readouterr().err
        assert "out-of-core" in err and "SCALING.md" in err

    def test_web_is_pipeline_only(self):
        for subcommand in (["run", "fig9"], ["fuse", "popaccu"], ["extract"]):
            with pytest.raises(SystemExit):
                main([*subcommand, "--scale", "web"])

    def test_chunk_pages_flag_parses(self, capsys):
        # Exercised end to end at tiny through the materialised route
        # (the flag is streaming-only; it must still parse everywhere).
        assert (
            main(["pipeline", "--scale", "tiny", "--seed", "7",
                  "--chunk-pages", "512"])
            == 0
        )
        assert "peak rss:" in capsys.readouterr().out
