"""Test package: eval (package __init__ so duplicate basenames import distinctly)."""
