"""Unit tests for the Kappa measure (Eq. 1)."""

import pytest

from repro.errors import EvaluationError
from repro.eval.kappa import kappa


class TestKappa:
    def test_identical_sets_positive(self):
        universe = set(range(100))
        assert kappa({1, 2, 3}, {1, 2, 3}, universe) > 0

    def test_disjoint_sets_negative(self):
        universe = set(range(100))
        assert kappa(set(range(50)), set(range(50, 100)), universe) < 0

    def test_independent_expected_overlap_near_zero(self):
        # |T1∩T2| == |T1||T2|/|KB| makes the numerator exactly zero.
        universe = set(range(100))
        t1 = set(range(50))  # half
        t2 = set(range(25, 75))  # half, overlapping 25 = 50*50/100
        assert kappa(t1, t2, universe) == pytest.approx(0.0)

    def test_formula_exact(self):
        universe = set(range(10))
        t1 = {0, 1, 2}
        t2 = {2, 3}
        expected = (1 * 10 - 3 * 2) / (100 - 3 * 2)
        assert kappa(t1, t2, universe) == pytest.approx(expected)

    def test_symmetry(self):
        universe = set(range(30))
        t1, t2 = {1, 2, 3, 4}, {3, 4, 5}
        assert kappa(t1, t2, universe) == kappa(t2, t1, universe)

    def test_full_universe_pair(self):
        universe = set(range(5))
        assert kappa(universe, universe, universe) == 1.0

    def test_empty_universe_rejected(self):
        with pytest.raises(EvaluationError):
            kappa(set(), set(), set())

    def test_non_subset_rejected(self):
        with pytest.raises(EvaluationError):
            kappa({99}, set(), {1, 2})

    def test_bounded_above_by_one(self):
        universe = set(range(50))
        assert kappa(set(range(20)), set(range(20)), universe) <= 1.0
