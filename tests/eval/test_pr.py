"""Unit tests for PR curves and AUC-PR."""

import pytest

from repro.errors import EvaluationError
from repro.eval.pr import auc_pr, pr_curve
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(name):
    return Triple("/m/1", "t/t/p", StringValue(name))


class TestCurve:
    def test_perfect_ranking(self):
        probabilities = {t("a"): 0.9, t("b"): 0.8, t("c"): 0.2, t("d"): 0.1}
        gold = {t("a"): True, t("b"): True, t("c"): False, t("d"): False}
        curve = pr_curve(probabilities, gold)
        assert auc_pr(curve) == pytest.approx(1.0)

    def test_inverted_ranking_is_poor(self):
        probabilities = {t("a"): 0.1, t("b"): 0.2, t("c"): 0.8, t("d"): 0.9}
        gold = {t("a"): True, t("b"): True, t("c"): False, t("d"): False}
        assert auc_pr(pr_curve(probabilities, gold)) < 0.6

    def test_recall_reaches_one(self):
        probabilities = {t("a"): 0.9, t("b"): 0.3}
        gold = {t("a"): True, t("b"): True}
        curve = pr_curve(probabilities, gold)
        assert curve.recalls[-1] == pytest.approx(1.0)

    def test_ties_consumed_as_block(self):
        probabilities = {t("a"): 0.5, t("b"): 0.5, t("c"): 0.5}
        gold = {t("a"): True, t("b"): False, t("c"): False}
        curve = pr_curve(probabilities, gold)
        assert len(curve.recalls) == 1
        assert curve.precisions[0] == pytest.approx(1 / 3)

    def test_unlabelled_excluded(self):
        probabilities = {t("a"): 0.9, t("zz"): 0.99}
        gold = {t("a"): True}
        curve = pr_curve(probabilities, gold)
        assert curve.n_labelled == 1

    def test_no_labels_rejected(self):
        with pytest.raises(EvaluationError):
            pr_curve({t("a"): 0.5}, {})

    def test_no_true_triples_rejected(self):
        with pytest.raises(EvaluationError):
            pr_curve({t("a"): 0.5}, {t("a"): False})


class TestAUC:
    def test_random_scores_give_middling_auc(self):
        import numpy as np

        rng = np.random.default_rng(0)
        probabilities = {}
        gold = {}
        for i in range(2000):
            triple = t(f"x{i}")
            probabilities[triple] = float(rng.random())
            gold[triple] = bool(rng.random() < 0.3)
        area = auc_pr(pr_curve(probabilities, gold))
        # Random ranking's AUC-PR ~= base rate.
        assert area == pytest.approx(0.3, abs=0.07)

    def test_auc_matches_curve_method(self):
        probabilities = {t("a"): 0.9, t("b"): 0.1}
        gold = {t("a"): True, t("b"): False}
        curve = pr_curve(probabilities, gold)
        assert curve.auc() == auc_pr(curve)

    def test_better_ranking_higher_auc(self):
        gold = {t(f"x{i}"): i < 10 for i in range(100)}
        good = {t(f"x{i}"): 1.0 - i / 100 for i in range(100)}
        flat = {t(f"x{i}"): 0.5 for i in range(100)}
        assert auc_pr(pr_curve(good, gold)) > auc_pr(pr_curve(flat, gold))
