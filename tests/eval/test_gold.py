"""Unit tests for the GoldStandard wrapper."""

import pytest

from repro.errors import EvaluationError
from repro.eval.gold import GoldStandard
from repro.kb.triples import DataItem, Triple
from repro.kb.values import StringValue


def t(subject, obj, predicate="t/t/p"):
    return Triple(subject, predicate, StringValue(obj))


@pytest.fixture
def gold():
    return GoldStandard(
        labels={
            t("/m/1", "a"): True,
            t("/m/1", "b"): False,
            t("/m/2", "c", "t/t/q"): True,
            t("/m/2", "d", "t/t/q"): True,
            t("/m/3", "e"): False,
        }
    )


class TestBasics:
    def test_len_and_contains(self, gold):
        assert len(gold) == 5
        assert t("/m/1", "a") in gold
        assert t("/m/9", "zz") not in gold

    def test_label(self, gold):
        assert gold.label(t("/m/1", "a")) is True
        assert gold.label(t("/m/9", "zz")) is None


class TestAccuracyAndCoverage:
    def test_accuracy(self, gold):
        assert gold.accuracy([t("/m/1", "a"), t("/m/1", "b")]) == pytest.approx(0.5)

    def test_accuracy_unlabelled_none(self, gold):
        assert gold.accuracy([t("/m/9", "zz")]) is None

    def test_coverage(self, gold):
        assert gold.coverage([t("/m/1", "a"), t("/m/9", "zz")]) == pytest.approx(0.5)

    def test_coverage_empty_rejected(self, gold):
        with pytest.raises(EvaluationError):
            gold.coverage([])


class TestSlices:
    def test_by_predicate(self, gold):
        grouped = gold.by_predicate()
        assert len(grouped["t/t/p"]) == 3
        assert len(grouped["t/t/q"]) == 2

    def test_predicate_accuracy(self, gold):
        accuracy = gold.predicate_accuracy()
        assert accuracy["t/t/q"] == pytest.approx(1.0)
        assert accuracy["t/t/p"] == pytest.approx(1 / 3)

    def test_predicate_accuracy_min_labelled(self, gold):
        accuracy = gold.predicate_accuracy(min_labelled=3)
        assert "t/t/q" not in accuracy
        assert "t/t/p" in accuracy

    def test_truth_counts(self, gold):
        counts = gold.truth_counts()
        assert counts[DataItem("/m/1", "t/t/p")] == 1
        assert counts[DataItem("/m/2", "t/t/q")] == 2
        assert counts[DataItem("/m/3", "t/t/p")] == 0

    def test_items_with_truths(self, gold):
        assert DataItem("/m/2", "t/t/q") in gold.items_with_truths(at_least=2)
        assert DataItem("/m/1", "t/t/p") not in gold.items_with_truths(at_least=2)

    def test_true_false_partition(self, gold):
        assert len(gold.true_triples()) == 3
        assert len(gold.false_triples()) == 2
        assert set(gold.true_triples()) | set(gold.false_triples()) == set(
            gold.labels
        )


class TestOnScenario:
    def test_wraps_scenario_gold(self, tiny_scenario):
        gold = GoldStandard(labels=tiny_scenario.gold)
        stats = tiny_scenario.extraction_stats()
        accuracy = gold.accuracy(tiny_scenario.unique_triples())
        assert accuracy == pytest.approx(stats["gold_accuracy"])
        per_predicate = gold.predicate_accuracy(min_labelled=5)
        assert per_predicate  # several predicates have enough labels
