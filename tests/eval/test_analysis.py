"""Unit tests for the automated error analysis (Figure 17 machinery)."""

import pytest

from repro.errors import EvaluationError
from repro.eval.analysis import analyze_errors
from repro.experiments.common import standard_fusion_results


@pytest.fixture(scope="module")
def breakdown(tiny_scenario):
    result = standard_fusion_results(tiny_scenario)["POPACCU+"]
    return analyze_errors(tiny_scenario, result.probabilities)


class TestThresholds:
    def test_bad_thresholds_rejected(self, tiny_scenario):
        with pytest.raises(EvaluationError):
            analyze_errors(tiny_scenario, {}, fp_threshold=0.2, fn_threshold=0.8)


class TestBreakdownShape:
    def test_errors_found(self, breakdown):
        assert breakdown.n_false_positives > 0
        assert breakdown.n_false_negatives > 0

    def test_fp_categories_cover_counts(self, breakdown):
        assert sum(breakdown.fp_categories.values()) == breakdown.n_false_positives

    def test_fn_categories_cover_counts(self, breakdown):
        assert sum(breakdown.fn_categories.values()) == breakdown.n_false_negatives

    def test_fp_category_names_valid(self, breakdown):
        valid = {
            "common_extraction_error",
            "source_error",
            "closed_world_assumption",
            "more_specific_value",
            "more_general_value",
            "wrong_value_in_freebase",
        }
        assert set(breakdown.fp_categories) <= valid

    def test_fn_category_names_valid(self, breakdown):
        valid = {"multiple_truths", "specific_general", "low_support"}
        assert set(breakdown.fn_categories) <= valid

    def test_shares_sum_to_one(self, breakdown):
        assert sum(breakdown.fp_shares().values()) == pytest.approx(1.0)
        assert sum(breakdown.fn_shares().values()) == pytest.approx(1.0)

    def test_examples_recorded(self, breakdown):
        for category in breakdown.fp_categories:
            assert category in breakdown.fp_examples


class TestGroundTruthConsistency:
    def test_extraction_error_fps_are_false_in_world(self, tiny_scenario, breakdown):
        """Every FP categorised as extraction/source error must actually be
        false in the world (the LCWA-artifact categories are the true ones)."""
        result = standard_fusion_results(tiny_scenario)["POPACCU+"]
        world = tiny_scenario.world
        for triple, probability in result.probabilities.items():
            label = tiny_scenario.gold.get(triple)
            if label is None or label or probability < breakdown.fp_threshold:
                continue
            if world.is_true(triple):
                continue  # LCWA artifact — categorised separately
            # genuinely false: must not be categorised as a CWA artifact
            # (spot-check through the recorded example triples)
        fp_artifacts = (
            breakdown.fp_categories.get("closed_world_assumption", 0)
            + breakdown.fp_categories.get("more_specific_value", 0)
            + breakdown.fp_categories.get("more_general_value", 0)
            + breakdown.fp_categories.get("wrong_value_in_freebase", 0)
        )
        genuinely_false = breakdown.fp_categories.get(
            "common_extraction_error", 0
        ) + breakdown.fp_categories.get("source_error", 0)
        assert fp_artifacts + genuinely_false == breakdown.n_false_positives

    def test_cwa_example_is_true_in_world(self, tiny_scenario, breakdown):
        example = breakdown.fp_examples.get("closed_world_assumption")
        if example is None:
            pytest.skip("no CWA false positives in this run")
        assert tiny_scenario.world.is_true(example)
        assert tiny_scenario.gold[example] is False
