"""Unit tests for calibration curves, deviation, weighted deviation."""

import pytest

from repro.errors import EvaluationError
from repro.eval.calibration import calibration_curve, deviation, weighted_deviation
from repro.kb.triples import Triple
from repro.kb.values import StringValue


def t(name):
    return Triple("/m/1", "t/t/p", StringValue(name))


class TestBucketing:
    def test_probability_one_gets_own_bucket(self):
        curve = calibration_curve({t("a"): 1.0}, {t("a"): True})
        assert curve.buckets[-1].count == 1
        assert curve.buckets[-1].low == 1.0

    def test_probability_below_one_in_regular_bucket(self):
        curve = calibration_curve({t("a"): 0.97}, {t("a"): True})
        assert curve.buckets[19].count == 1
        assert curve.buckets[20].count == 0

    def test_unlabelled_triples_ignored(self):
        curve = calibration_curve({t("a"): 0.5, t("b"): 0.5}, {t("a"): True})
        assert curve.n_labelled == 1

    def test_real_probability_is_true_fraction(self):
        probabilities = {t("a"): 0.42, t("b"): 0.44, t("c"): 0.41, t("d"): 0.43}
        gold = {t("a"): True, t("b"): True, t("c"): False, t("d"): False}
        curve = calibration_curve(probabilities, gold)
        bucket = curve.buckets[8]  # [0.40, 0.45)
        assert bucket.count == 4
        assert bucket.real == pytest.approx(0.5)

    def test_predicted_is_mean_probability(self):
        probabilities = {t("a"): 0.42, t("b"): 0.44}
        gold = {t("a"): True, t("b"): False}
        curve = calibration_curve(probabilities, gold)
        assert curve.buckets[8].predicted == pytest.approx(0.43)

    def test_out_of_range_probability_rejected(self):
        with pytest.raises(EvaluationError):
            calibration_curve({t("a"): 1.5}, {t("a"): True})

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(EvaluationError):
            calibration_curve({t("a"): 0.5}, {t("a"): True}, n_buckets=0)

    def test_points_skip_empty_buckets(self):
        curve = calibration_curve({t("a"): 0.5}, {t("a"): True})
        assert len(curve.points()) == 1


class TestDeviation:
    def test_perfect_calibration_zero_deviation(self):
        # 100 triples at p=0.5, half true: bucket real = 0.5 = predicted.
        probabilities = {}
        gold = {}
        for i in range(100):
            triple = t(f"x{i}")
            probabilities[triple] = 0.5
            gold[triple] = i % 2 == 0
        curve = calibration_curve(probabilities, gold)
        assert deviation(curve) == pytest.approx(0.0)
        assert weighted_deviation(curve) == pytest.approx(0.0)

    def test_total_miscalibration(self):
        probabilities = {t("a"): 1.0}
        gold = {t("a"): False}
        curve = calibration_curve(probabilities, gold)
        assert deviation(curve) == pytest.approx(1.0)
        assert weighted_deviation(curve) == pytest.approx(1.0)

    def test_weighting_matters(self):
        # One bucket with 99 well-calibrated triples, one with 1 bad triple:
        # the unweighted deviation averages buckets; the weighted one is
        # dominated by the big bucket.
        probabilities = {}
        gold = {}
        for i in range(98):
            triple = t(f"good{i}")
            probabilities[triple] = 0.5
            gold[triple] = i % 2 == 0
        probabilities[t("bad")] = 0.99
        gold[t("bad")] = False
        curve = calibration_curve(probabilities, gold)
        assert weighted_deviation(curve) < deviation(curve)

    def test_empty_curve_rejected(self):
        curve = calibration_curve({}, {})
        with pytest.raises(EvaluationError):
            deviation(curve)
        with pytest.raises(EvaluationError):
            weighted_deviation(curve)

    def test_curve_methods_match_functions(self):
        probabilities = {t("a"): 0.7, t("b"): 0.2}
        gold = {t("a"): True, t("b"): False}
        curve = calibration_curve(probabilities, gold)
        assert curve.deviation() == deviation(curve)
        assert curve.weighted_deviation() == weighted_deviation(curve)
